//! Lock-order deadlock detection and hold-time watchdog.
//!
//! Active only under `cfg(debug_assertions)` (release builds compile the
//! same API down to no-ops). Every [`Mutex`](crate::Mutex) /
//! [`RwLock`](crate::RwLock) carries a **site id** — the `file:line` of
//! its `new()` call, captured via `#[track_caller]` — so every lock
//! created at one source location is one node in a global *acquisition
//! order graph*:
//!
//! * A thread-local stack records which sites the current thread holds.
//! * A blocking acquisition of site `B` while holding site `A` records
//!   the edge `A → B` (with the acquiring thread's name, held stack, and
//!   a captured backtrace, the first time the edge appears).
//! * Before the edge is inserted, the graph is searched for a path
//!   `B → … → A`. Finding one means two lock orders exist that can
//!   deadlock under the right interleaving — the detector **panics
//!   immediately**, before the program can actually wedge, printing both
//!   acquisition stacks.
//!
//! Non-blocking acquisitions (`try_lock`) register the held site (later
//! blocking acquisitions on top of it still form edges) but add no edge
//! themselves: a `try_lock` never blocks, so it cannot close a wait
//! cycle, and flagging it would punish legitimate try-and-fallback
//! patterns. Acquisitions of a site while the *same* site is already
//! held are also skipped — sibling locks created at one line (e.g. a pool
//! of per-client mutexes) are ordered by the caller, not by site.
//!
//! The watchdog side stamps every acquisition and records a
//! [`LongHold`] whenever a guard outlives the configured threshold
//! ([`set_hold_threshold`], default 200 ms) — the broker's hot loop
//! should hold its locks for microseconds, so a long hold is a stall in
//! disguise even when no inversion exists.

use std::time::Duration;

#[cfg(debug_assertions)]
use std::cell::RefCell;
#[cfg(debug_assertions)]
use std::collections::HashMap;
#[cfg(debug_assertions)]
use std::panic::Location;
#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(debug_assertions)]
use std::time::Instant;

/// A recorded over-threshold lock hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LongHold {
    /// `file:line` of the lock's construction site.
    pub site: String,
    /// How long the guard lived.
    pub held: Duration,
    /// Name of the holding thread (`?` if unnamed).
    pub thread: String,
}

/// Whether the detector is compiled in (true in debug builds).
pub const fn is_active() -> bool {
    cfg!(debug_assertions)
}

// ---------------------------------------------------------------------
// Debug-build implementation.
// ---------------------------------------------------------------------

#[cfg(debug_assertions)]
mod imp {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Stable identity of a lock construction site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub(crate) struct SiteKey {
        file: &'static str,
        line: u32,
        column: u32,
    }

    impl SiteKey {
        pub(crate) fn of(site: &'static Location<'static>) -> SiteKey {
            SiteKey {
                file: site.file(),
                line: site.line(),
                column: site.column(),
            }
        }

        fn render(&self) -> String {
            format!("{}:{}", self.file, self.line)
        }
    }

    /// Context captured the first time an acquisition edge is seen.
    struct EdgeInfo {
        thread: String,
        held: Vec<SiteKey>,
        backtrace: String,
    }

    #[derive(Default)]
    struct Graph {
        edges: HashMap<SiteKey, HashMap<SiteKey, EdgeInfo>>,
        edge_count: usize,
    }

    fn graph() -> &'static StdMutex<Graph> {
        static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
    }

    fn long_holds_store() -> &'static StdMutex<Vec<LongHold>> {
        static HOLDS: OnceLock<StdMutex<Vec<LongHold>>> = OnceLock::new();
        HOLDS.get_or_init(|| StdMutex::new(Vec::new()))
    }

    /// Nanoseconds; 0 means "use default".
    static HOLD_THRESHOLD_NS: AtomicU64 = AtomicU64::new(0);
    const DEFAULT_HOLD_THRESHOLD: Duration = Duration::from_millis(200);
    /// Cap so a pathological run cannot grow the record without bound.
    const MAX_LONG_HOLDS: usize = 1024;

    thread_local! {
        /// Sites currently held by this thread, in acquisition order.
        static HELD: RefCell<Vec<SiteKey>> = const { RefCell::new(Vec::new()) };
    }

    fn lock_ignore_poison<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn threshold() -> Duration {
        let ns = HOLD_THRESHOLD_NS.load(Ordering::Relaxed);
        if ns == 0 {
            DEFAULT_HOLD_THRESHOLD
        } else {
            Duration::from_nanos(ns)
        }
    }

    pub(crate) fn set_threshold(d: Duration) {
        HOLD_THRESHOLD_NS.store(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Registers a blocking acquisition: records order edges from every
    /// currently held site and panics if any edge closes a cycle.
    pub(crate) fn on_blocking_acquire(site: &'static Location<'static>) {
        let new = SiteKey::of(site);
        let held: Vec<SiteKey> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut g = lock_ignore_poison(graph());
            for &from in &held {
                if from == new {
                    continue; // sibling locks from one construction site
                }
                record_edge(&mut g, from, new, &held);
            }
        }
        HELD.with(|h| h.borrow_mut().push(new));
    }

    /// Registers a successful non-blocking acquisition (no order edges).
    pub(crate) fn on_try_acquire(site: &'static Location<'static>) {
        HELD.with(|h| h.borrow_mut().push(SiteKey::of(site)));
    }

    /// Registers a release and feeds the hold-time watchdog.
    pub(crate) fn on_release(site: &'static Location<'static>, acquired: Instant) {
        let key = SiteKey::of(site);
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|s| *s == key) {
                held.remove(pos);
            }
        });
        let elapsed = acquired.elapsed();
        if elapsed > threshold() {
            let mut holds = lock_ignore_poison(long_holds_store());
            if holds.len() < MAX_LONG_HOLDS {
                let record = LongHold {
                    site: key.render(),
                    held: elapsed,
                    thread: thread_name(),
                };
                eprintln!(
                    "parking_lot watchdog: lock {} held {:?} (> {:?}) on thread {}",
                    record.site,
                    record.held,
                    threshold(),
                    record.thread
                );
                holds.push(record);
            }
        }
    }

    fn record_edge(g: &mut Graph, from: SiteKey, to: SiteKey, held: &[SiteKey]) {
        if g.edges
            .get(&from)
            .is_some_and(|succ| succ.contains_key(&to))
        {
            return; // known-safe order, nothing to do
        }
        // Inserting from -> to creates a cycle iff `from` is already
        // reachable from `to`.
        if let Some(path) = path_between(g, to, from) {
            panic_with_cycle(g, from, to, held, &path);
        }
        g.edges.entry(from).or_default().insert(
            to,
            EdgeInfo {
                thread: thread_name(),
                held: held.to_vec(),
                backtrace: format!("{}", std::backtrace::Backtrace::force_capture()),
            },
        );
        g.edge_count += 1;
    }

    /// DFS from `start` to `goal`; returns the site path including both
    /// endpoints.
    fn path_between(g: &Graph, start: SiteKey, goal: SiteKey) -> Option<Vec<SiteKey>> {
        let mut stack = vec![vec![start]];
        let mut seen = vec![start];
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("paths are never empty");
            if last == goal {
                return Some(path);
            }
            if let Some(succ) = g.edges.get(&last) {
                for &next in succ.keys() {
                    if !seen.contains(&next) {
                        seen.push(next);
                        let mut longer = path.clone();
                        longer.push(next);
                        stack.push(longer);
                    }
                }
            }
        }
        None
    }

    fn panic_with_cycle(
        g: &Graph,
        from: SiteKey,
        to: SiteKey,
        held: &[SiteKey],
        reverse_path: &[SiteKey],
    ) -> ! {
        let mut msg = String::new();
        msg.push_str("lock-order inversion detected (potential deadlock)\n");
        msg.push_str(&format!(
            "  this thread ({}) is acquiring {} while holding [{}]\n",
            thread_name(),
            to.render(),
            held.iter().map(SiteKey::render).collect::<Vec<_>>().join(", "),
        ));
        msg.push_str(&format!(
            "  but the opposite order {} -> {} was recorded earlier:\n",
            to.render(),
            from.render()
        ));
        for pair in reverse_path.windows(2) {
            if let Some(info) = g.edges.get(&pair[0]).and_then(|s| s.get(&pair[1])) {
                msg.push_str(&format!(
                    "    edge {} -> {} on thread {} (held [{}]) at:\n",
                    pair[0].render(),
                    pair[1].render(),
                    info.thread,
                    info.held
                        .iter()
                        .map(SiteKey::render)
                        .collect::<Vec<_>>()
                        .join(", "),
                ));
                for line in info.backtrace.lines().take(20) {
                    msg.push_str("      ");
                    msg.push_str(line.trim_end());
                    msg.push('\n');
                }
            }
        }
        msg.push_str("  current acquisition at:\n");
        for line in format!("{}", std::backtrace::Backtrace::force_capture())
            .lines()
            .take(20)
        {
            msg.push_str("      ");
            msg.push_str(line.trim_end());
            msg.push('\n');
        }
        panic!("{msg}");
    }

    fn thread_name() -> String {
        std::thread::current()
            .name()
            .unwrap_or("?")
            .to_owned()
    }

    pub(crate) fn edge_count() -> usize {
        lock_ignore_poison(graph()).edge_count
    }

    pub(crate) fn edges() -> Vec<(String, String)> {
        let g = lock_ignore_poison(graph());
        let mut out: Vec<(String, String)> = g
            .edges
            .iter()
            .flat_map(|(from, succ)| {
                succ.keys().map(|to| (from.render(), to.render()))
            })
            .collect();
        out.sort();
        out
    }

    pub(crate) fn long_holds() -> Vec<LongHold> {
        lock_ignore_poison(long_holds_store()).clone()
    }

    pub(crate) fn reset() {
        let mut g = lock_ignore_poison(graph());
        g.edges.clear();
        g.edge_count = 0;
        drop(g);
        lock_ignore_poison(long_holds_store()).clear();
    }
}

#[cfg(debug_assertions)]
pub(crate) use imp::{on_blocking_acquire, on_release, on_try_acquire};

// ---------------------------------------------------------------------
// Public API (no-ops in release builds).
// ---------------------------------------------------------------------

/// Number of distinct acquisition-order edges recorded so far. Zero in
/// release builds. A stress test asserting `edge_count() > 0` proves the
/// detector actually observed nested acquisitions.
pub fn edge_count() -> usize {
    #[cfg(debug_assertions)]
    {
        imp::edge_count()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// The recorded acquisition-order edges as sorted `(from, to)` pairs of
/// `file:line` construction sites. Empty in release builds. The static
/// lock-order pass cross-checks this against its own graph: every edge
/// the runtime detector observes must also exist in the static
/// over-approximation.
pub fn edges() -> Vec<(String, String)> {
    #[cfg(debug_assertions)]
    {
        imp::edges()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// All over-threshold holds recorded so far (empty in release builds).
pub fn long_holds() -> Vec<LongHold> {
    #[cfg(debug_assertions)]
    {
        imp::long_holds()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Sets the hold-time watchdog threshold (default 200 ms). No-op in
/// release builds.
pub fn set_hold_threshold(threshold: Duration) {
    #[cfg(debug_assertions)]
    imp::set_threshold(threshold);
    #[cfg(not(debug_assertions))]
    let _ = threshold;
}

/// Clears the order graph and the long-hold record. For tests that need
/// a pristine detector; production code never calls this.
pub fn reset() {
    #[cfg(debug_assertions)]
    imp::reset();
}

/// The guard-side bookkeeping token: stamps the acquisition and reports
/// the release. Zero-sized in release builds.
#[derive(Debug)]
pub(crate) struct Tracked {
    #[cfg(debug_assertions)]
    site: &'static Location<'static>,
    #[cfg(debug_assertions)]
    acquired: Instant,
}

impl Tracked {
    #[cfg(debug_assertions)]
    pub(crate) fn new(site: &'static Location<'static>) -> Tracked {
        Tracked {
            site,
            acquired: Instant::now(),
        }
    }

    #[cfg(not(debug_assertions))]
    pub(crate) fn new() -> Tracked {
        Tracked {}
    }
}

#[cfg(debug_assertions)]
impl Drop for Tracked {
    fn drop(&mut self) {
        on_release(self.site, self.acquired);
    }
}
