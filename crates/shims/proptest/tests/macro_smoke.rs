//! End-to-end exercise of the `proptest!` macro surface the workspace
//! tests rely on: typed params, `pat in strategy` params (including
//! `mut` bindings and tuple patterns), config overrides, assumptions,
//! and failure reporting.

use proptest::prelude::*;

proptest! {
    /// Typed shorthand params draw from `any::<T>()`.
    #[test]
    fn typed_params(start: u16, flag: bool) {
        let _ = (start, flag);
        prop_assert!(u32::from(start) <= u32::from(u16::MAX));
    }

    /// Mixed typed and `in` params, with a `mut` binding.
    #[test]
    fn mixed_params(
        start: u16,
        mut offsets in prop::collection::vec(0u16..500, 1..100),
    ) {
        offsets.sort_unstable();
        prop_assert!(!offsets.is_empty());
        prop_assert!(offsets.len() < 100);
        let _ = start;
    }

    /// Tuple patterns destructure generated tuples.
    #[test]
    fn tuple_pattern((a, b) in (0u8..10, 0u8..10)) {
        prop_assert!(a < 10 && b < 10);
    }

    /// `prop_assume!` discards cases without failing the test.
    #[test]
    fn assume_discards(n in 0u32..100) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(7))]

    /// Config attribute controls the case count.
    #[test]
    fn config_applies(x in 0u8..2) {
        prop_assert!(x < 2);
    }
}

#[test]
fn failures_panic_with_message() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #[test]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    let err = result.expect_err("property must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("always_fails"), "unexpected panic: {msg}");
}

#[test]
fn oneof_and_strategies_compose() {
    fn op() -> impl Strategy<Value = (u8, usize)> {
        prop_oneof![
            1 => Just((0u8, 0usize)),
            3 => (1u8..4, 0usize..5).prop_map(|(a, b)| (a, b)),
        ]
    }
    let mut rng = TestRng::for_case("compose", 0);
    for _ in 0..50 {
        let (a, b) = op().generate(&mut rng);
        assert!(a < 4 && b < 5);
    }
}
