//! The [`Strategy`] trait and the core combinators: ranges, tuples,
//! [`Just`], `prop_map`, unions, and string patterns.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value-tree/shrinking machinery:
/// `generate` produces a finished value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Discards values failing `predicate` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            predicate,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.reason);
    }
}

/// Weighted choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_below(total.max(1) as u128) as u64;
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        self.arms[0].1.generate(rng)
    }
}

/// Boxes one `prop_oneof!` arm (helper used by the macro expansion).
pub fn union_arm<S>(weight: u32, strategy: S) -> (u32, BoxedStrategy<S::Value>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

/// `&'static str` literals act as character-class patterns generating
/// `String`s (e.g. `"[a-z0-9]{1,16}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.gen_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.gen_below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategies!(A);
tuple_strategies!(A B);
tuple_strategies!(A B C);
tuple_strategies!(A B C D);
tuple_strategies!(A B C D E);
tuple_strategies!(A B C D E F);
tuple_strategies!(A B C D E F G);
tuple_strategies!(A B C D E F G H);
tuple_strategies!(A B C D E F G H I);
tuple_strategies!(A B C D E F G H I J);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let strategy = (0u8..10, 0u8..10).prop_map(|(a, b)| a as u16 + b as u16);
        for _ in 0..50 {
            assert!(strategy.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut rng = TestRng::for_case("union", 0);
        let u = Union::new(vec![union_arm(1, Just(1u8)), union_arm(3, Just(2u8))]);
        let mut saw = [false; 3];
        for _ in 0..100 {
            saw[u.generate(&mut rng) as usize] = true;
        }
        assert!(!saw[0] && saw[1] && saw[2]);
    }
}
