//! Deterministic RNG, configuration, and case-level error types.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — try another.
    Reject(String),
    /// The property does not hold for this case.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic xorshift64* generator. Every case derives its seed from
/// the test name and case index, so failures reproduce exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng { state: h | 1 };
        // Discard the first outputs so similar seeds diverge.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.state = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`0` when the bound is zero).
    pub fn gen_below(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return 0;
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// Uniform index into a collection of `len` items (`len > 0`).
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "gen_index on empty collection");
        self.gen_below(len as u128) as usize
    }

    /// Fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniform randomness.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64())
        );
    }

    #[test]
    fn bounds_respected() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            assert!(rng.gen_below(7) < 7);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.gen_below(0), 0);
    }
}
