//! `any::<T>()` — the canonical full-range strategy for a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything" generator.
pub trait Arbitrary {
    /// Produces an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text friendly to codecs.
        char::from_u32(0x20 + rng.gen_below(0x5F) as u32).unwrap_or(' ')
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (`any::<u32>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = TestRng::for_case("any", 0);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
