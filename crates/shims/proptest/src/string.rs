//! Character-class string patterns (`"[a-z0-9._-]{1,16}"`).
//!
//! Supports the regex subset this workspace's tests use: character
//! classes with ranges, class intersection/subtraction via `&&[...]` /
//! `&&[^...]`, literal characters, and repetition via `{n}`, `{m,n}`,
//! `*`, `+`, `?`. Not a general regex engine.

use std::iter::Peekable;
use std::str::Chars;

use crate::test_runner::TestRng;

/// One pattern element: a set of candidate chars and repetition bounds.
struct Atom {
    set: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = atom.max - atom.min + 1;
        let len = atom.min + rng.gen_below(span as u128) as usize;
        for _ in 0..len {
            out.push(atom.set[rng.gen_index(atom.set.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let set = match c {
            '[' => parse_class(&mut it, pattern),
            '\\' => vec![escaped(it.next(), pattern)],
            literal => vec![literal],
        };
        assert!(!set.is_empty(), "pattern {pattern:?} has an empty character class");
        let (min, max) = parse_repeat(&mut it, pattern);
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// Everything a negated class may draw from: printable ASCII plus the
/// whitespace controls tests feed to text codecs.
fn universe() -> impl Iterator<Item = char> {
    (0x20u8..=0x7E).map(char::from).chain(['\r', '\n', '\t'])
}

/// Parses a class body after `[`, applying `&&[...]` clauses.
fn parse_class(it: &mut Peekable<Chars<'_>>, pattern: &str) -> Vec<char> {
    let (negated, items, clauses) = parse_class_raw(it, pattern);
    let mut set: Vec<char> = if negated {
        universe().filter(|c| !items.contains(c)).collect()
    } else {
        items
    };
    for (clause_negated, clause) in clauses {
        if clause_negated {
            set.retain(|c| !clause.contains(c));
        } else {
            set.retain(|c| clause.contains(c));
        }
    }
    set.sort_unstable();
    set.dedup();
    set
}

type RawClass = (bool, Vec<char>, Vec<(bool, Vec<char>)>);

fn parse_class_raw(it: &mut Peekable<Chars<'_>>, pattern: &str) -> RawClass {
    let mut negated = false;
    if it.peek() == Some(&'^') {
        negated = true;
        it.next();
    }
    let mut items = Vec::new();
    let mut clauses = Vec::new();
    loop {
        let c = it
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '&' if it.peek() == Some(&'&') => {
                it.next();
                match it.next() {
                    Some('[') => {
                        let (neg, inner_items, inner_clauses) = parse_class_raw(it, pattern);
                        assert!(
                            inner_clauses.is_empty(),
                            "nested && classes unsupported in pattern {pattern:?}"
                        );
                        clauses.push((neg, inner_items));
                    }
                    _ => panic!("expected [ after && in pattern {pattern:?}"),
                }
            }
            '\\' => items.push(escaped(it.next(), pattern)),
            c => {
                if it.peek() == Some(&'-') {
                    it.next();
                    match it.peek() {
                        // Trailing '-' before ']' is a literal dash.
                        Some(&']') | None => {
                            items.push(c);
                            items.push('-');
                        }
                        Some(&end) => {
                            it.next();
                            assert!(c <= end, "inverted range in pattern {pattern:?}");
                            items.extend(c..=end);
                        }
                    }
                } else {
                    items.push(c);
                }
            }
        }
    }
    (negated, items, clauses)
}

fn escaped(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('r') => '\r',
        Some('n') => '\n',
        Some('t') => '\t',
        Some(other) => other,
        None => panic!("dangling escape in pattern {pattern:?}"),
    }
}

fn parse_repeat(it: &mut Peekable<Chars<'_>>, pattern: &str) -> (usize, usize) {
    match it.peek() {
        Some(&'{') => {
            it.next();
            let min = parse_number(it, pattern);
            match it.next() {
                Some('}') => (min, min),
                Some(',') => {
                    let max = parse_number(it, pattern);
                    assert_eq!(it.next(), Some('}'), "unterminated repeat in {pattern:?}");
                    assert!(min <= max, "inverted repeat bounds in {pattern:?}");
                    (min, max)
                }
                _ => panic!("malformed repeat in pattern {pattern:?}"),
            }
        }
        Some(&'*') => {
            it.next();
            (0, 8)
        }
        Some(&'+') => {
            it.next();
            (1, 8)
        }
        Some(&'?') => {
            it.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_number(it: &mut Peekable<Chars<'_>>, pattern: &str) -> usize {
    let mut n: Option<usize> = None;
    while let Some(d) = it.peek().and_then(|c| c.to_digit(10)) {
        it.next();
        n = Some(n.unwrap_or(0) * 10 + d as usize);
    }
    n.unwrap_or_else(|| panic!("expected number in repeat of pattern {pattern:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, case: u32) -> String {
        let mut rng = TestRng::for_case("string", case);
        generate(pattern, &mut rng)
    }

    #[test]
    fn class_with_ranges_and_repeat() {
        for case in 0..50 {
            let s = sample("[a-zA-Z0-9._-]{1,16}", case);
            assert!((1..=16).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)));
        }
    }

    #[test]
    fn printable_ascii_range() {
        for case in 0..50 {
            let s = sample("[ -~]{0,24}", case);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn subtraction_excludes_chars() {
        for case in 0..100 {
            let s = sample("[ -~&&[^\r\n]]{0,32}", case);
            assert!(!s.contains('\r') && !s.contains('\n'));
            let t = sample("[ -~&&[^<>&\"']]{0,23}", case);
            assert!(t.chars().all(|c| !"<>&\"'".contains(c)));
        }
    }

    #[test]
    fn escapes_inside_class() {
        let mut saw_cr = false;
        for case in 0..200 {
            let s = sample("[ -~\r\n]{0,128}", case);
            saw_cr |= s.contains('\r') || s.contains('\n');
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\r' || c == '\n'));
        }
        assert!(saw_cr, "CR/LF never generated from an including class");
    }

    #[test]
    fn exact_and_literal_repeats() {
        assert_eq!(sample("abc", 0), "abc");
        assert_eq!(sample("[x]{4}", 1), "xxxx");
        let s = sample("a?b+", 2);
        assert!(s.ends_with('b') && s.len() >= 1);
    }
}
