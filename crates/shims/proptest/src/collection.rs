//! Collection strategies: `prop::collection::{vec, btree_set}`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection. Built from a
/// `usize` (exact), `Range<usize>` (half-open), or `RangeInclusive`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.gen_below((self.max - self.min + 1) as u128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of values from `element`, length within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size in `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set, so allow generous retries; a
        // saturated element domain ends the loop early with fewer items.
        let attempts = target.saturating_mul(64) + 1024;
        for _ in 0..attempts {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Set of distinct values from `element`, size within `size` when the
/// element domain is large enough.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_bounds() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        assert_eq!(vec(0u8..10, 7).generate(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_hits_target_when_domain_allows() {
        let mut rng = TestRng::for_case("set", 0);
        for _ in 0..50 {
            let s = btree_set(0u16..500, 1..100).generate(&mut rng);
            assert!((1..100).contains(&s.len()));
        }
    }
}
