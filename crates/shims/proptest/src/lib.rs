//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors a minimal property-testing harness with proptest's surface
//! syntax: the [`proptest!`] macro (both `pat in strategy` and
//! `name: Type` parameters), `prop_assert!`/`prop_assert_eq!`/
//! [`prop_assume!`], [`prop_oneof!`], `Just`, `any::<T>()`, integer and
//! float ranges, tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::option::of`, `prop::sample::select`, and character-class
//! string patterns (`"[a-z0-9]{1,16}"`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and values but is
//!   not minimized.
//! * **Deterministic seeding.** Cases derive from a fixed seed mixed
//!   with the test name and case index, so runs are reproducible;
//!   `PROPTEST_CASES` overrides the case count.
//! * **Pattern strategies** support character classes with ranges,
//!   `&&[^...]` subtraction and `{m,n}` repetition — the subset this
//!   workspace's tests use — not full regex.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each parameter is either `pattern in strategy`
/// or `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_munch! {
                    config = ($config);
                    name = $name;
                    binds = [];
                    body = $body;
                    params = [$($params)*]
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_munch {
    // `name: Type` shorthand, more params follow.
    (config = $c:tt; name = $n:ident; binds = [$($binds:tt)*]; body = $b:tt;
     params = [$name:ident : $ty:ty, $($rest:tt)+]) => {
        $crate::__proptest_munch! {
            config = $c; name = $n;
            binds = [$($binds)* (($name) ($crate::arbitrary::any::<$ty>()))];
            body = $b;
            params = [$($rest)+]
        }
    };
    // `name: Type` shorthand, final param (optionally trailing comma).
    (config = $c:tt; name = $n:ident; binds = [$($binds:tt)*]; body = $b:tt;
     params = [$name:ident : $ty:ty $(,)?]) => {
        $crate::__proptest_munch! {
            config = $c; name = $n;
            binds = [$($binds)* (($name) ($crate::arbitrary::any::<$ty>()))];
            body = $b;
            params = []
        }
    };
    // `pattern in strategy`, more params follow.
    (config = $c:tt; name = $n:ident; binds = [$($binds:tt)*]; body = $b:tt;
     params = [$pat:pat in $strat:expr, $($rest:tt)+]) => {
        $crate::__proptest_munch! {
            config = $c; name = $n;
            binds = [$($binds)* (($pat) ($strat))];
            body = $b;
            params = [$($rest)+]
        }
    };
    // `pattern in strategy`, final param (optionally trailing comma).
    (config = $c:tt; name = $n:ident; binds = [$($binds:tt)*]; body = $b:tt;
     params = [$pat:pat in $strat:expr $(,)?]) => {
        $crate::__proptest_munch! {
            config = $c; name = $n;
            binds = [$($binds)* (($pat) ($strat))];
            body = $b;
            params = []
        }
    };
    // All params consumed: emit the runner loop.
    (config = ($config:expr); name = $n:ident; binds = [$((($pat:pat) ($strat:expr)))*];
     body = $body:block; params = []) => {{
        let __config: $crate::test_runner::ProptestConfig = $config;
        let __cases = __config.effective_cases();
        let mut __rejected: u32 = 0;
        let mut __case: u32 = 0;
        while __case < __cases {
            let mut __rng =
                $crate::test_runner::TestRng::for_case(stringify!($n), __case + __rejected);
            let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|__rng: &mut $crate::test_runner::TestRng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::core::result::Result::Ok(())
                })(&mut __rng);
            match __result {
                ::core::result::Result::Ok(()) => {
                    __case += 1;
                }
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                    __rejected += 1;
                    if __rejected > __cases.saturating_mul(16).max(1024) {
                        panic!(
                            "proptest '{}': too many rejected cases ({})",
                            stringify!($n),
                            __rejected
                        );
                    }
                }
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    panic!(
                        "proptest '{}' failed at case {}: {}",
                        stringify!($n),
                        __case,
                        __msg
                    );
                }
            }
        }
    }};
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the harness can report generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` != `{:?}`", __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
                );
            }
        }
    };
}

/// Asserts two values are not equal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{:?}` == `{:?}`", __l, __r
                );
            }
        }
    };
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks among several strategies, optionally weighted
/// (`prop_oneof![2 => a, 1 => b]` or `prop_oneof![a, b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm(1u32, $strat)),+
        ])
    };
}
