//! `prop::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some(inner)` half the time, `None` otherwise.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Option<T>` values from an inner `T` strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::for_case("option", 0);
        let strategy = of(0u8..10);
        let (mut some, mut none) = (false, false);
        for _ in 0..64 {
            match strategy.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some = true;
                }
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
