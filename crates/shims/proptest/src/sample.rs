//! `prop::sample::select` — uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy cloning a uniformly chosen element of a list.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_index(self.options.len())].clone()
    }
}

/// Uniform choice among `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_only_listed_values() {
        let mut rng = TestRng::for_case("select", 0);
        let strategy = select(vec!["a", "b"]);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!(v == "a" || v == "b");
        }
    }
}
