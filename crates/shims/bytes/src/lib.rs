//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal implementation of the subset it uses: [`Bytes`] (cheaply
//! cloneable, shared, immutable), [`BytesMut`] (append-only builder) and
//! the big-endian `put_*` writers from [`BufMut`]. Clones of a `Bytes`
//! share one allocation — fan-out to hundreds of subscribers never
//! copies a payload — matching the real crate's contract. [`Bytes::slice`]
//! and [`Bytes::from_owner`] provide the zero-copy sub-view and
//! custom-ownership primitives (mirroring `bytes` ≥ 1.9) that the wire
//! format and buffer pool build on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// A window (`offset..offset + len`) into storage kept alive by a
    /// shared owner. The owner is any `AsRef<[u8]>` so callers can attach
    /// custom drop behaviour (e.g. returning a pooled buffer).
    Shared {
        owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
        offset: usize,
        len: usize,
    },
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice (no allocation).
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Wraps arbitrary owned storage without copying. The owner is kept
    /// alive (and eventually dropped) by the last surviving clone, so a
    /// custom `Drop` on `owner` runs exactly once — the hook the buffer
    /// pool uses to reclaim frames whose bytes escaped as `Bytes`.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Bytes {
            repr: Repr::Shared {
                owner: Arc::new(owner),
                offset: 0,
                len,
            },
        }
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { owner, offset, len } => {
                &owner.as_ref().as_ref()[*offset..offset + len]
            }
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Static(s) => s.len(),
            Repr::Shared { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of `self` for the given range, sharing the same
    /// storage — no bytes are copied and the backing allocation lives
    /// until the last view drops.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len(), "slice end {end} > len {}", self.len());
        match &self.repr {
            Repr::Static(s) => Bytes {
                repr: Repr::Static(&s[start..end]),
            },
            Repr::Shared { owner, offset, .. } => Bytes {
                repr: Repr::Shared {
                    owner: Arc::clone(owner),
                    offset: offset + start,
                    len: end - start,
                },
            },
        }
    }

    /// Shortens the buffer to its first `len` bytes (no-op if already
    /// shorter). Only the view shrinks; shared storage is untouched.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        match &mut self.repr {
            Repr::Static(s) => *s = &s[..len],
            Repr::Shared { len: view_len, .. } => *view_len = len,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the vec's allocation (no copy); clones of the
    /// resulting `Bytes` all share it.
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_owner(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the accumulated bytes into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian write access to a growable buffer (subset of the real
/// `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i16.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val` (the real `BufMut::put_bytes`),
    /// written in stack-sized chunks so padding a frame never allocates
    /// a scratch vector.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        let chunk = [val; 64];
        let mut remaining = cnt;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            self.put_slice(&chunk[..n]);
            remaining -= n;
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        assert_eq!(&c[..], &[1, 2, 3]);
    }

    #[test]
    fn builder_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0x80);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        assert_eq!(&frozen[..], &[0x80, 1, 2, 3, 4, 5, 6, b'x', b'y']);
    }

    #[test]
    fn static_bytes_do_not_allocate() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b, Bytes::copy_from_slice(b"hello"));
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // Same backing allocation, just offset.
        assert_eq!(unsafe { b.as_ptr().add(2) }, mid.as_ptr());
        // Slicing a slice composes offsets.
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4, 5]);
        let full = b.slice(..);
        assert_eq!(full, b);
    }

    #[test]
    fn slice_of_static_stays_static() {
        let b = Bytes::from_static(b"hello world");
        let word = b.slice(6..);
        assert_eq!(&word[..], b"world");
    }

    #[test]
    #[should_panic(expected = "slice end")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..9);
    }

    #[test]
    fn truncate_shrinks_view_without_copying() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let mut c = b.clone();
        c.truncate(2);
        assert_eq!(&c[..], &[1, 2]);
        // Still the shared allocation (the view shrank, not the storage).
        assert_eq!(b.as_ptr(), c.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn from_owner_runs_custom_drop_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Owner(Vec<u8>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Owner {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let b = Bytes::from_owner(Owner(vec![7u8; 16]));
        let view = b.slice(4..8);
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "view keeps owner alive");
        assert_eq!(&view[..], &[7, 7, 7, 7]);
        drop(view);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
