//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendors a small
//! wall-clock harness with criterion's surface API: benchmark groups,
//! throughput annotation, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros. It runs a warm-up, then a
//! fixed number of timed samples, and prints per-iteration mean/min/max
//! plus derived throughput. No statistics beyond that — the point is
//! comparable numbers from `cargo bench` without the real dependency.

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark's summary, recorded for [`write_json_if_requested`].
struct BenchRecord {
    group: String,
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters: u64,
}

/// Every benchmark reported so far in this process, in run order.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Minimal JSON string escaping for bench group/id names.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders every benchmark recorded so far in this process as a JSON
/// array of `{group, id, mean_ns, min_ns, max_ns, samples, iters}`
/// objects — key order fixed, floats printed with one decimal — so the
/// output is schema-stable for CI diffing and golden tests.
pub fn render_json() -> String {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut json = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "  {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters\": {}}}",
            escape_json(&r.group),
            escape_json(&r.id),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters,
        ));
    }
    json.push_str("\n]\n");
    json
}

/// If the `MMCS_BENCH_JSON` environment variable names a file, writes
/// [`render_json`]'s output to it. Called automatically by the
/// `criterion_main!` expansion after all groups have run; a no-op when
/// the variable is unset.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("MMCS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let json = render_json();
    let count = RESULTS.lock().unwrap_or_else(|e| e.into_inner()).len();
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("criterion shim: cannot write {path}: {err}");
    } else {
        println!("criterion shim: wrote {count} result(s) to {path}");
    }
}

/// How `iter_batched` amortizes setup between measured runs. The shim
/// always re-runs setup per batch, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-done for every single iteration.
    PerIteration,
}

/// Units processed per iteration, used to derive throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver (criterion's entry type).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work performed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group (accepted for API
    /// compatibility; the shim applies it directly).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_sample: Duration::from_millis(1),
        };
        // Warm-up: run until the warm-up budget elapses, tuning how many
        // iterations one sample should cover.
        let warm_deadline = Instant::now() + self.criterion.warm_up_time;
        while Instant::now() < warm_deadline {
            f(&mut bencher);
            bencher.samples.clear();
        }
        // Timed samples.
        let per_sample = self
            .criterion
            .measurement_time
            .checked_div(self.criterion.sample_size as u32)
            .unwrap_or(Duration::from_millis(10));
        bencher.target_sample = per_sample.max(Duration::from_micros(100));
        let deadline = Instant::now() + self.criterion.measurement_time;
        while bencher.samples.len() < self.criterion.sample_size && Instant::now() < deadline {
            f(&mut bencher);
        }
        self.report(&id, &bencher.samples);
    }

    fn report(&self, id: &str, samples: &[(Duration, u64)]) {
        let total_iters: u64 = samples.iter().map(|(_, n)| n).sum();
        let total_time: Duration = samples.iter().map(|(t, _)| *t).sum();
        if total_iters == 0 {
            println!("{}/{}: no samples collected", self.name, id);
            return;
        }
        let mean_ns = total_time.as_nanos() as f64 / total_iters as f64;
        let per_iter = |(t, n): &(Duration, u64)| t.as_nanos() as f64 / (*n).max(1) as f64;
        let min_ns = samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
        let max_ns = samples.iter().map(per_iter).fold(0.0, f64::max);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 * 1e9 / mean_ns / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:>10.1} ns/iter (min {:.1}, max {:.1}, {} samples, {} iters){}",
            self.name,
            id,
            mean_ns,
            min_ns,
            max_ns,
            samples.len(),
            total_iters,
            rate
        );
        RESULTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(BenchRecord {
                group: self.name.clone(),
                id: id.to_owned(),
                mean_ns,
                min_ns,
                max_ns,
                samples: samples.len(),
                iters: total_iters,
            });
    }

    /// Ends the group (printing happens per bench; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the measured routine.
pub struct Bencher {
    /// (elapsed, iterations) per collected sample.
    samples: Vec<(Duration, u64)>,
    target_sample: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill one sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Estimate iterations per sample from a single probe run.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target_sample.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push((start.elapsed(), iters));
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        black_box(routine(input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target_sample.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs.drain(..) {
            black_box(routine(input));
        }
        self.samples.push((start.elapsed(), iters));
    }
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("incr", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("batched");
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
