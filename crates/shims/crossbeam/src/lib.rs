//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this vendors the
//! tiny subset the workspace uses: `crossbeam::channel::{unbounded,
//! Sender, Receiver, RecvTimeoutError}` implemented over
//! [`std::sync::mpsc`]. Semantics match for the single-consumer use in
//! the threaded broker driver (std's `Sender` is `Sync` since 1.72).

/// Multi-producer channels (std-backed).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if the receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
