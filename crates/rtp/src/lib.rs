//! RTP/RTCP (RFC 3550) and media source models.
//!
//! Global-MMCS carries all audio/video as RTP: endpoints publish RTP
//! packets to NaradaBrokering topics through RTP proxies, the JMF-style
//! reflector baseline forwards raw RTP, and the streaming service ingests
//! RTP into the Real producer. This crate provides:
//!
//! * [`packet`] — the RTP fixed header and packet, encoded/decoded in the
//!   real RFC 3550 wire format.
//! * [`rtcp`] — sender/receiver reports, SDES (CNAME) and BYE, including
//!   compound-packet encoding.
//! * [`seq`] — sequence-number tracking with wrap-around, cycle counting
//!   and the RFC 3550 Appendix A loss estimate.
//! * [`jitter`] — the RFC 3550 §6.4.1 interarrival jitter estimator used
//!   to reproduce Figure 3(b).
//! * [`source`] — deterministic media source models: PCMU/GSM audio and a
//!   bursty I/P-frame video source with a target bitrate (the paper's
//!   600 Kbps stream).
//! * [`recv`] — per-source receiver statistics combining all the above.
//!
//! # Examples
//!
//! ```
//! use mmcs_rtp::packet::{RtpHeader, RtpPacket};
//! use bytes::Bytes;
//!
//! let packet = RtpPacket::new(
//!     RtpHeader::new(96, 7, 1234, 0xdecafbad),
//!     Bytes::from_static(b"frame-data"),
//! );
//! let wire = packet.encode();
//! let back = RtpPacket::decode(&wire)?;
//! assert_eq!(back, packet);
//! # Ok::<(), mmcs_rtp::packet::DecodeRtpError>(())
//! ```

pub mod jitter;
pub mod packet;
pub mod recv;
pub mod rtcp;
pub mod seq;
pub mod source;

pub use jitter::JitterEstimator;
pub use packet::{RtpHeader, RtpPacket};
pub use recv::ReceiverStats;
pub use seq::SequenceTracker;
pub use source::{AudioCodec, AudioSource, VideoSource, VideoSourceConfig};
