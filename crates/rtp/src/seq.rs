//! Sequence-number tracking (RFC 3550 Appendix A.1).
//!
//! Tracks the highest sequence number seen across 16-bit wrap-around,
//! counts received packets and estimates cumulative loss the way RTCP
//! receiver reports do.

/// Maximum forward jump treated as in-order delivery (RFC 3550 value).
const MAX_DROPOUT: u16 = 3000;
/// Backward distance treated as reordering rather than a restart.
const MAX_MISORDER: u16 = 100;

/// Tracks one RTP source's sequence numbers.
///
/// # Examples
///
/// ```
/// use mmcs_rtp::seq::SequenceTracker;
///
/// let mut t = SequenceTracker::new(65534);
/// t.record(65535);
/// t.record(0); // wraps
/// t.record(2); // one packet (seq 1) lost
/// assert_eq!(t.cycles(), 1);
/// assert_eq!(t.expected(), 5);
/// assert_eq!(t.lost(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceTracker {
    base_seq: u16,
    max_seq: u16,
    cycles: u32,
    received: u64,
    restarts: u64,
}

impl SequenceTracker {
    /// Creates a tracker initialized from the first observed sequence
    /// number (which counts as received).
    pub fn new(first_seq: u16) -> Self {
        Self {
            base_seq: first_seq,
            max_seq: first_seq,
            cycles: 0,
            received: 1,
            restarts: 0,
        }
    }

    /// Records an observed sequence number.
    ///
    /// Returns `true` if the packet advanced or filled the window, `false`
    /// if it looked like a source restart (large backward jump), which
    /// resets the tracker.
    pub fn record(&mut self, seq: u16) -> bool {
        let delta = seq.wrapping_sub(self.max_seq);
        if delta < MAX_DROPOUT {
            // Forward progress, possibly wrapping.
            if seq < self.max_seq {
                self.cycles += 1;
            }
            self.max_seq = seq;
            self.received += 1;
            true
        } else if delta <= u16::MAX - MAX_MISORDER {
            // Very large jump: treat as restart, following RFC 3550 A.1.
            self.base_seq = seq;
            self.max_seq = seq;
            self.cycles = 0;
            self.received = 1;
            self.restarts += 1;
            false
        } else {
            // Small backward step: a reordered duplicate of older data.
            self.received += 1;
            true
        }
    }

    /// The extended highest sequence number (cycles × 2^16 + max_seq).
    pub fn extended_max(&self) -> u64 {
        (self.cycles as u64) << 16 | self.max_seq as u64
    }

    /// Number of 16-bit wrap-arounds observed.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Packets expected so far, per RFC 3550 A.3.
    pub fn expected(&self) -> u64 {
        self.extended_max() - self.base_seq as u64 + 1
    }

    /// Packets actually received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Estimated cumulative loss (saturating at zero when duplicates make
    /// received exceed expected).
    pub fn lost(&self) -> u64 {
        self.expected().saturating_sub(self.received)
    }

    /// Loss fraction in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        let expected = self.expected();
        if expected == 0 {
            0.0
        } else {
            self.lost() as f64 / expected as f64
        }
    }

    /// How many times the source appeared to restart.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_has_no_loss() {
        let mut t = SequenceTracker::new(100);
        for seq in 101..200u16 {
            assert!(t.record(seq));
        }
        assert_eq!(t.expected(), 100);
        assert_eq!(t.received(), 100);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.loss_fraction(), 0.0);
    }

    #[test]
    fn gaps_count_as_loss() {
        let mut t = SequenceTracker::new(0);
        t.record(1);
        t.record(5); // 2,3,4 missing
        assert_eq!(t.expected(), 6);
        assert_eq!(t.received(), 3);
        assert_eq!(t.lost(), 3);
        assert!((t.loss_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wraparound_counts_cycles() {
        let mut t = SequenceTracker::new(65000);
        for seq in 65001..=65535u16 {
            t.record(seq);
        }
        t.record(0);
        t.record(1);
        assert_eq!(t.cycles(), 1);
        assert_eq!(t.extended_max(), (1 << 16) + 1);
        assert_eq!(t.lost(), 0);
    }

    #[test]
    fn small_reorder_is_not_a_restart() {
        let mut t = SequenceTracker::new(10);
        t.record(11);
        t.record(12);
        assert!(t.record(11)); // duplicate/reordered
        assert_eq!(t.restarts(), 0);
        assert_eq!(t.received(), 4);
    }

    #[test]
    fn huge_backward_jump_resets() {
        let mut t = SequenceTracker::new(50_000);
        assert!(!t.record(10)); // looks like a new source instance
        assert_eq!(t.restarts(), 1);
        assert_eq!(t.expected(), 1);
        assert_eq!(t.received(), 1);
    }

    #[test]
    fn duplicates_never_yield_negative_loss() {
        let mut t = SequenceTracker::new(5);
        t.record(5);
        t.record(5);
        assert_eq!(t.lost(), 0);
    }
}
