//! Per-source receiver statistics.
//!
//! [`ReceiverStats`] is what each measured client in the Figure 3
//! experiment keeps: per-packet one-way delay (send→arrival in virtual
//! time, the quantity the paper plots, measurable because the 12 measured
//! clients share the sender's clock), RFC 3550 smoothed jitter, and the
//! loss estimate — and it can emit the matching RTCP report block.

use mmcs_util::stats::{OnlineStats, SampleSeries};
use mmcs_util::time::SimTime;

use crate::jitter::JitterEstimator;
use crate::packet::{payload_type, RtpHeader};
use crate::rtcp::ReportBlock;
use crate::seq::SequenceTracker;

/// Statistics for one received RTP source.
#[derive(Debug, Clone)]
pub struct ReceiverStats {
    ssrc: u32,
    tracker: Option<SequenceTracker>,
    jitter: JitterEstimator,
    delay_ms: OnlineStats,
    delay_series: Option<SampleSeries>,
    jitter_series: Option<SampleSeries>,
}

impl ReceiverStats {
    /// Creates statistics for a source with the given SSRC and payload
    /// type (which determines the RTP clock rate).
    pub fn new(ssrc: u32, pt: u8) -> Self {
        Self {
            ssrc,
            tracker: None,
            jitter: JitterEstimator::new(payload_type::clock_rate(pt)),
            delay_ms: OnlineStats::new(),
            delay_series: None,
            jitter_series: None,
        }
    }

    /// Enables per-packet series capture (needed to plot Figure 3's
    /// per-packet curves; off by default to keep 400-client runs lean).
    pub fn with_series_capture(mut self) -> Self {
        self.delay_series = Some(SampleSeries::new());
        self.jitter_series = Some(SampleSeries::new());
        self
    }

    /// Records a received packet.
    ///
    /// `sent_at` is when the sender emitted it (known in simulation; on
    /// the paper's testbed, known for the co-located clients).
    pub fn record(&mut self, header: &RtpHeader, sent_at: SimTime, arrival: SimTime) {
        match &mut self.tracker {
            Some(tracker) => {
                tracker.record(header.sequence_number);
            }
            None => self.tracker = Some(SequenceTracker::new(header.sequence_number)),
        }
        let delay = arrival.saturating_duration_since(sent_at).as_millis_f64();
        self.delay_ms.record(delay);
        self.jitter.record(arrival, header.timestamp);
        if let Some(series) = &mut self.delay_series {
            series.record(delay);
        }
        if let Some(series) = &mut self.jitter_series {
            series.record(self.jitter.jitter_ms());
        }
    }

    /// The source's SSRC.
    pub fn ssrc(&self) -> u32 {
        self.ssrc
    }

    /// Packets received so far.
    pub fn received(&self) -> u64 {
        self.tracker.as_ref().map_or(0, SequenceTracker::received)
    }

    /// Estimated packets lost so far.
    pub fn lost(&self) -> u64 {
        self.tracker.as_ref().map_or(0, SequenceTracker::lost)
    }

    /// Loss fraction in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        self.tracker
            .as_ref()
            .map_or(0.0, SequenceTracker::loss_fraction)
    }

    /// One-way delay statistics in milliseconds.
    pub fn delay_ms(&self) -> &OnlineStats {
        &self.delay_ms
    }

    /// Current smoothed jitter in milliseconds.
    pub fn jitter_ms(&self) -> f64 {
        self.jitter.jitter_ms()
    }

    /// Per-packet delay series, if capture was enabled.
    pub fn delay_series(&self) -> Option<&SampleSeries> {
        self.delay_series.as_ref()
    }

    /// Per-packet smoothed-jitter series, if capture was enabled.
    pub fn jitter_series(&self) -> Option<&SampleSeries> {
        self.jitter_series.as_ref()
    }

    /// Builds the RTCP report block for this source.
    pub fn report_block(&self) -> ReportBlock {
        let (highest, lost) = match &self.tracker {
            Some(t) => (t.extended_max() as u32, t.lost()),
            None => (0, 0),
        };
        ReportBlock {
            ssrc: self.ssrc,
            fraction_lost: (self.loss_fraction() * 256.0).min(255.0) as u8,
            cumulative_lost: lost.min(u32::MAX as u64) as u32,
            highest_seq: highest,
            jitter: self.jitter.jitter_rtp_units(),
            last_sr: 0,
            delay_since_last_sr: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RtpHeader;
    use mmcs_util::time::SimDuration;

    fn header(seq: u16, ts: u32) -> RtpHeader {
        RtpHeader::new(payload_type::H263, seq, ts, 77)
    }

    #[test]
    fn records_delay_and_counts() {
        let mut stats = ReceiverStats::new(77, payload_type::H263);
        let mut sent = SimTime::ZERO;
        for i in 0..10u16 {
            let arrival = sent + SimDuration::from_millis(5);
            stats.record(&header(i, i as u32 * 3600), sent, arrival);
            sent += SimDuration::from_millis(40);
        }
        assert_eq!(stats.received(), 10);
        assert_eq!(stats.lost(), 0);
        assert!((stats.delay_ms().mean() - 5.0).abs() < 1e-9);
        assert!(stats.jitter_ms() < 1e-9);
    }

    #[test]
    fn detects_loss() {
        let mut stats = ReceiverStats::new(77, payload_type::H263);
        stats.record(&header(0, 0), SimTime::ZERO, SimTime::from_millis(1));
        stats.record(&header(4, 100), SimTime::ZERO, SimTime::from_millis(2));
        assert_eq!(stats.lost(), 3);
        assert!(stats.loss_fraction() > 0.5);
    }

    #[test]
    fn series_capture_is_optional() {
        let plain = ReceiverStats::new(1, payload_type::PCMU);
        assert!(plain.delay_series().is_none());
        let mut capturing = ReceiverStats::new(1, payload_type::PCMU).with_series_capture();
        capturing.record(&header(0, 0), SimTime::ZERO, SimTime::from_millis(3));
        assert_eq!(capturing.delay_series().unwrap().len(), 1);
        assert_eq!(capturing.delay_series().unwrap().samples()[0], 3.0);
        assert_eq!(capturing.jitter_series().unwrap().len(), 1);
    }

    #[test]
    fn report_block_reflects_state() {
        let mut stats = ReceiverStats::new(9, payload_type::PCMU);
        stats.record(&header(0, 0), SimTime::ZERO, SimTime::from_millis(1));
        stats.record(&header(3, 480), SimTime::ZERO, SimTime::from_millis(25));
        let block = stats.report_block();
        assert_eq!(block.ssrc, 9);
        assert_eq!(block.cumulative_lost, 2);
        assert_eq!(block.highest_seq, 3);
        assert!(block.fraction_lost > 0);
    }

    #[test]
    fn empty_stats_report_zeroes() {
        let stats = ReceiverStats::new(5, payload_type::PCMU);
        let block = stats.report_block();
        assert_eq!(block.cumulative_lost, 0);
        assert_eq!(block.highest_seq, 0);
        assert_eq!(stats.received(), 0);
    }
}
