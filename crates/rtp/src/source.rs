//! Deterministic media source models.
//!
//! These stand in for the paper's real capture hardware (see `DESIGN.md`
//! §2). [`AudioSource`] produces constant-bitrate telephony audio;
//! [`VideoSource`] produces the bursty frame pattern of a 2003-era H.263
//! encoder: periodic large I-frames and smaller P-frames, each frame split
//! into MTU-sized RTP packets released back to back. The burstiness is
//! what drives the sawtooth delay series in Figure 3.

use bytes::Bytes;
use mmcs_util::rng::DetRng;
use mmcs_util::time::SimDuration;

use crate::packet::{payload_type, RtpHeader, RtpPacket};

/// Telephony audio codecs the audio source can model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioCodec {
    /// G.711 µ-law: 160-byte payload every 20 ms (64 kbps).
    Pcmu,
    /// GSM full rate: 33-byte payload every 20 ms (13.2 kbps).
    Gsm,
}

impl AudioCodec {
    /// RTP payload type code.
    pub fn payload_type(self) -> u8 {
        match self {
            AudioCodec::Pcmu => payload_type::PCMU,
            AudioCodec::Gsm => payload_type::GSM,
        }
    }

    /// Payload bytes per 20 ms frame.
    pub fn frame_bytes(self) -> usize {
        match self {
            AudioCodec::Pcmu => 160,
            AudioCodec::Gsm => 33,
        }
    }

    /// RTP timestamp increment per frame (8 kHz clock, 20 ms).
    pub fn timestamp_step(self) -> u32 {
        160
    }
}

/// A constant-rate audio packet source.
///
/// # Examples
///
/// ```
/// use mmcs_rtp::source::{AudioCodec, AudioSource};
///
/// let mut src = AudioSource::new(AudioCodec::Pcmu, 0x1234);
/// let a = src.next_packet();
/// let b = src.next_packet();
/// assert_eq!(b.header.sequence_number, a.header.sequence_number + 1);
/// assert_eq!(b.header.timestamp - a.header.timestamp, 160);
/// assert_eq!(src.frame_interval().as_millis(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct AudioSource {
    codec: AudioCodec,
    ssrc: u32,
    seq: u16,
    timestamp: u32,
    first: bool,
}

impl AudioSource {
    /// Creates a source for the given codec and SSRC.
    pub fn new(codec: AudioCodec, ssrc: u32) -> Self {
        Self {
            codec,
            ssrc,
            seq: 0,
            timestamp: 0,
            first: true,
        }
    }

    /// The pacing interval between packets (20 ms).
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_millis(20)
    }

    /// Produces the next packet. The first packet carries the marker bit
    /// (start of a talk spurt).
    pub fn next_packet(&mut self) -> RtpPacket {
        let mut header = RtpHeader::new(self.codec.payload_type(), self.seq, self.timestamp, self.ssrc);
        header.marker = self.first;
        self.first = false;
        self.seq = self.seq.wrapping_add(1);
        self.timestamp = self.timestamp.wrapping_add(self.codec.timestamp_step());
        RtpPacket::new(header, Bytes::from(vec![0u8; self.codec.frame_bytes()]))
    }

    /// The codec this source produces.
    pub fn codec(&self) -> AudioCodec {
        self.codec
    }

    /// Average wire bitrate in bits per second, including RTP headers.
    pub fn wire_bitrate_bps(&self) -> u64 {
        let per_packet = (self.codec.frame_bytes() + 12) as u64 * 8;
        per_packet * 50 // 50 packets per second
    }
}

/// Configuration for the bursty video source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSourceConfig {
    /// Target average bitrate in bits per second (payload level).
    pub bitrate_bps: u64,
    /// Frames per second.
    pub frame_rate: u32,
    /// Every `iframe_interval`-th frame is an I-frame.
    pub iframe_interval: u32,
    /// I-frame size relative to a P-frame.
    pub iframe_ratio: f64,
    /// Maximum RTP payload bytes per packet.
    pub mtu_payload: usize,
    /// Uniform ± size variation applied per frame (0.2 = ±20 %).
    pub size_jitter: f64,
}

impl Default for VideoSourceConfig {
    /// The paper's stream: 600 Kbps, 25 fps, an I-frame every 10 frames
    /// at 4× the P-frame size, 1000-byte packets.
    fn default() -> Self {
        Self {
            bitrate_bps: 600_000,
            frame_rate: 25,
            iframe_interval: 10,
            iframe_ratio: 4.0,
            mtu_payload: 1000,
            size_jitter: 0.2,
        }
    }
}

/// A bursty I/P-frame video source.
///
/// Each call to [`VideoSource::next_frame`] produces all RTP packets of
/// one video frame (same timestamp, marker on the last packet), sized so
/// the long-run average payload rate matches the configured bitrate.
#[derive(Debug, Clone)]
pub struct VideoSource {
    config: VideoSourceConfig,
    ssrc: u32,
    seq: u16,
    timestamp: u32,
    frame_index: u64,
    rng: DetRng,
    p_frame_bytes: f64,
}

impl VideoSource {
    /// Creates a video source.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero frame rate, zero
    /// MTU, zero bitrate, or `iframe_interval == 0`).
    pub fn new(config: VideoSourceConfig, ssrc: u32, rng: DetRng) -> Self {
        assert!(config.frame_rate > 0, "frame rate must be positive");
        assert!(config.mtu_payload > 0, "MTU must be positive");
        assert!(config.bitrate_bps > 0, "bitrate must be positive");
        assert!(config.iframe_interval > 0, "iframe interval must be positive");
        // Solve sizes so that (N-1) P-frames + 1 I-frame average to the
        // per-frame byte budget.
        let per_frame = config.bitrate_bps as f64 / 8.0 / config.frame_rate as f64;
        let n = config.iframe_interval as f64;
        let p = per_frame * n / (n - 1.0 + config.iframe_ratio);
        Self {
            config,
            ssrc,
            seq: 0,
            timestamp: 0,
            frame_index: 0,
            rng,
            p_frame_bytes: p,
        }
    }

    /// The pacing interval between frames.
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.config.frame_rate as u64)
    }

    /// The configuration in use.
    pub fn config(&self) -> &VideoSourceConfig {
        &self.config
    }

    /// Whether the next frame produced will be an I-frame.
    pub fn next_is_iframe(&self) -> bool {
        self.frame_index.is_multiple_of(self.config.iframe_interval as u64)
    }

    /// Produces all packets of the next frame.
    pub fn next_frame(&mut self) -> Vec<RtpPacket> {
        let is_iframe = self.next_is_iframe();
        let base = if is_iframe {
            self.p_frame_bytes * self.config.iframe_ratio
        } else {
            self.p_frame_bytes
        };
        let jitter = self.config.size_jitter;
        let scale = if jitter > 0.0 {
            self.rng.range_f64(1.0 - jitter, 1.0 + jitter)
        } else {
            1.0
        };
        let frame_bytes = (base * scale).max(1.0) as usize;

        let mtu = self.config.mtu_payload;
        let packet_count = frame_bytes.div_ceil(mtu);
        let mut packets = Vec::with_capacity(packet_count);
        let mut remaining = frame_bytes;
        for i in 0..packet_count {
            let chunk = remaining.min(mtu);
            remaining -= chunk;
            let mut header =
                RtpHeader::new(payload_type::H263, self.seq, self.timestamp, self.ssrc);
            header.marker = i == packet_count - 1;
            self.seq = self.seq.wrapping_add(1);
            packets.push(RtpPacket::new(header, Bytes::from(vec![0u8; chunk])));
        }
        self.timestamp = self
            .timestamp
            .wrapping_add(90_000 / self.config.frame_rate);
        self.frame_index += 1;
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_source_packets_are_paced_and_sequential() {
        let mut src = AudioSource::new(AudioCodec::Pcmu, 1);
        let a = src.next_packet();
        let b = src.next_packet();
        assert!(a.header.marker);
        assert!(!b.header.marker);
        assert_eq!(a.payload.len(), 160);
        assert_eq!(b.header.sequence_number, 1);
        assert_eq!(b.header.timestamp, 160);
        assert_eq!(src.frame_interval(), SimDuration::from_millis(20));
    }

    #[test]
    fn gsm_is_smaller_than_pcmu() {
        let mut gsm = AudioSource::new(AudioCodec::Gsm, 1);
        assert_eq!(gsm.next_packet().payload.len(), 33);
        assert!(gsm.wire_bitrate_bps() < AudioSource::new(AudioCodec::Pcmu, 1).wire_bitrate_bps());
    }

    #[test]
    fn pcmu_wire_bitrate_is_about_64kbps_plus_headers() {
        let src = AudioSource::new(AudioCodec::Pcmu, 1);
        assert_eq!(src.wire_bitrate_bps(), (160 + 12) * 8 * 50);
    }

    #[test]
    fn video_average_rate_matches_target() {
        let config = VideoSourceConfig::default();
        let mut src = VideoSource::new(config, 1, DetRng::new(5));
        let frames = 2_500; // 100 seconds at 25 fps
        let total_payload: usize = (0..frames)
            .flat_map(|_| src.next_frame())
            .map(|p| p.payload.len())
            .sum();
        let secs = frames as f64 / config.frame_rate as f64;
        let rate = total_payload as f64 * 8.0 / secs;
        let target = config.bitrate_bps as f64;
        assert!(
            (rate - target).abs() / target < 0.05,
            "rate {rate} vs target {target}"
        );
    }

    #[test]
    fn iframes_are_larger_and_periodic() {
        let config = VideoSourceConfig {
            size_jitter: 0.0,
            ..VideoSourceConfig::default()
        };
        let mut src = VideoSource::new(config, 1, DetRng::new(5));
        let sizes: Vec<usize> = (0..20)
            .map(|_| src.next_frame().iter().map(|p| p.payload.len()).sum())
            .collect();
        // Frames 0 and 10 are I-frames.
        assert!(sizes[0] > 3 * sizes[1]);
        assert!(sizes[10] > 3 * sizes[11]);
        assert_eq!(sizes[1], sizes[2]);
    }

    #[test]
    fn frame_packets_share_timestamp_and_mark_last() {
        let mut src = VideoSource::new(VideoSourceConfig::default(), 1, DetRng::new(5));
        let frame = src.next_frame(); // I-frame: several packets
        assert!(frame.len() > 1);
        let ts = frame[0].header.timestamp;
        for (i, p) in frame.iter().enumerate() {
            assert_eq!(p.header.timestamp, ts);
            assert_eq!(p.header.marker, i == frame.len() - 1);
            assert!(p.payload.len() <= 1000);
        }
        // Next frame advances the timestamp by one frame interval.
        let next = src.next_frame();
        assert_eq!(next[0].header.timestamp, ts + 90_000 / 25);
    }

    #[test]
    fn sequence_numbers_are_continuous_across_frames() {
        let mut src = VideoSource::new(VideoSourceConfig::default(), 1, DetRng::new(9));
        let mut expected_seq = 0u16;
        for _ in 0..50 {
            for p in src.next_frame() {
                assert_eq!(p.header.sequence_number, expected_seq);
                expected_seq = expected_seq.wrapping_add(1);
            }
        }
    }

    #[test]
    fn frame_interval_matches_rate() {
        let src = VideoSource::new(VideoSourceConfig::default(), 1, DetRng::new(1));
        assert_eq!(src.frame_interval().as_millis(), 40);
    }

    #[test]
    #[should_panic(expected = "frame rate")]
    fn zero_frame_rate_panics() {
        let config = VideoSourceConfig {
            frame_rate: 0,
            ..VideoSourceConfig::default()
        };
        let _ = VideoSource::new(config, 1, DetRng::new(1));
    }
}
