//! The RTP fixed header and packet (RFC 3550 §5.1), real wire format.
//!
//! Two read paths exist: [`RtpPacket::decode`] materialises an owned
//! packet (copying the payload), while [`WireRtp`] is a borrow-parsed
//! view over the wire bytes — header fields read at fixed offsets,
//! payload returned as a slice into the frame, nothing copied. The two
//! are validated against the same malformed-input matrix; prefer the
//! view (or [`RtpPacket::decode_shared`], which keeps the payload as a
//! zero-copy [`Bytes`] slice) on hot paths.

use bytes::{BufMut, Bytes};
use core::fmt;
use mmcs_util::pool;

/// The RTP protocol version implemented (the only one deployed).
pub const RTP_VERSION: u8 = 2;

/// Size in bytes of the fixed header without CSRC entries.
pub const FIXED_HEADER_LEN: usize = 12;

/// The RTP fixed header.
///
/// # Examples
///
/// ```
/// use mmcs_rtp::packet::RtpHeader;
///
/// let h = RtpHeader::new(0, 100, 160 * 100, 0xcafe);
/// assert_eq!(h.payload_type, 0); // PCMU
/// assert_eq!(h.wire_len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RtpHeader {
    /// Padding flag.
    pub padding: bool,
    /// Extension flag (extensions are not parsed; packets carrying one
    /// fail to decode).
    pub extension: bool,
    /// Marker bit: for video, set on the last packet of a frame; for
    /// audio, set on the first packet after silence.
    pub marker: bool,
    /// Payload type (7 bits), e.g. 0 = PCMU, 3 = GSM, 34 = H.263.
    pub payload_type: u8,
    /// Sequence number, increments by one per packet, wraps at 2^16.
    pub sequence_number: u16,
    /// Media timestamp in clock-rate units (8 kHz audio, 90 kHz video).
    pub timestamp: u32,
    /// Synchronization source identifier.
    pub ssrc: u32,
    /// Contributing sources (used by mixers; at most 15).
    pub csrc: Vec<u32>,
}

impl RtpHeader {
    /// Creates a header with the given payload type, sequence number,
    /// timestamp and SSRC; flags clear, no CSRC list.
    ///
    /// # Panics
    ///
    /// Panics if `payload_type` does not fit in 7 bits.
    pub fn new(payload_type: u8, sequence_number: u16, timestamp: u32, ssrc: u32) -> Self {
        assert!(payload_type < 128, "payload type must fit in 7 bits");
        Self {
            padding: false,
            extension: false,
            marker: false,
            payload_type,
            sequence_number,
            timestamp,
            ssrc,
            csrc: Vec::new(),
        }
    }

    /// Header length on the wire, including CSRC entries.
    pub fn wire_len(&self) -> usize {
        FIXED_HEADER_LEN + 4 * self.csrc.len()
    }

    /// Writes the header in wire format to any [`BufMut`] — a
    /// [`BytesMut`], a plain `Vec<u8>` or a pooled buffer.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        let b0 = (RTP_VERSION << 6)
            | ((self.padding as u8) << 5)
            | ((self.extension as u8) << 4)
            | (self.csrc.len() as u8);
        let b1 = ((self.marker as u8) << 7) | self.payload_type;
        buf.put_u8(b0);
        buf.put_u8(b1);
        buf.put_u16(self.sequence_number);
        buf.put_u32(self.timestamp);
        buf.put_u32(self.ssrc);
        for csrc in &self.csrc {
            buf.put_u32(*csrc);
        }
    }
}

/// An RTP packet: header plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// The fixed header.
    pub header: RtpHeader,
    /// The media payload.
    pub payload: Bytes,
}

impl RtpPacket {
    /// Creates a packet from a header and payload.
    ///
    /// # Panics
    ///
    /// Panics if the header carries more than 15 CSRC entries (the field
    /// is 4 bits on the wire).
    pub fn new(header: RtpHeader, payload: Bytes) -> Self {
        assert!(header.csrc.len() <= 15, "at most 15 CSRC entries");
        Self { header, payload }
    }

    /// Total size on the wire.
    pub fn wire_len(&self) -> usize {
        self.header.wire_len() + self.payload.len()
    }

    /// Encodes the packet into RFC 3550 wire format. The scratch buffer
    /// comes from the thread-local [`pool`]; the returned [`Bytes`] hands
    /// it back when the last clone drops.
    pub fn encode(&self) -> Bytes {
        let mut buf = pool::acquire(self.wire_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Writes the packet in wire format to any [`BufMut`].
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        self.header.encode_into(buf);
        buf.put_slice(&self.payload);
    }

    /// Decodes a packet from wire format, copying the payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeRtpError`] when the buffer is truncated, the
    /// version is not 2, or the packet carries a header extension (not
    /// supported by the 2003-era A/V tools this models, nor by us).
    pub fn decode(wire: &[u8]) -> Result<RtpPacket, DecodeRtpError> {
        let view = WireRtp::parse(wire)?;
        Ok(RtpPacket {
            header: view.header_owned(),
            payload: Bytes::copy_from_slice(view.payload()),
        })
    }

    /// Decodes a packet whose wire bytes live in a shared [`Bytes`],
    /// keeping the payload as a zero-copy slice of the frame.
    ///
    /// # Errors
    ///
    /// Same failure matrix as [`RtpPacket::decode`].
    pub fn decode_shared(frame: &Bytes) -> Result<RtpPacket, DecodeRtpError> {
        let view = WireRtp::parse(frame)?;
        let start = view.header_len();
        let end = start + view.payload().len();
        Ok(RtpPacket {
            header: view.header_owned(),
            payload: frame.slice(start..end),
        })
    }
}

/// A zero-copy view over an RTP packet's wire bytes.
///
/// [`WireRtp::parse`] runs the full validation matrix (truncation —
/// including inside the CSRC area — version, extension, padding
/// consistency) once; every accessor afterwards is an infallible
/// fixed-offset read into the borrowed frame. Nothing is copied: the
/// payload comes back as a sub-slice with padding already stripped.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use mmcs_rtp::packet::{RtpHeader, RtpPacket, WireRtp};
///
/// let wire = RtpPacket::new(RtpHeader::new(0, 7, 1120, 0xabcd), Bytes::from_static(b"pcm"))
///     .encode();
/// let view = WireRtp::parse(&wire).unwrap();
/// assert_eq!(view.sequence_number(), 7);
/// assert_eq!(view.payload(), b"pcm");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WireRtp<'a> {
    buf: &'a [u8],
    header_len: usize,
    /// End of the logical payload (wire length minus any padding).
    payload_end: usize,
}

impl<'a> WireRtp<'a> {
    /// Validates `wire` and returns the borrow-parsed view.
    ///
    /// # Errors
    ///
    /// The same matrix as [`RtpPacket::decode`]: truncation (fixed
    /// header or CSRC area), bad version, header extension, inconsistent
    /// padding.
    pub fn parse(wire: &'a [u8]) -> Result<WireRtp<'a>, DecodeRtpError> {
        if wire.len() < FIXED_HEADER_LEN {
            return Err(DecodeRtpError::Truncated {
                needed: FIXED_HEADER_LEN,
                got: wire.len(),
            });
        }
        let version = wire[0] >> 6;
        if version != RTP_VERSION {
            return Err(DecodeRtpError::BadVersion(version));
        }
        if wire[0] & 0b0001_0000 != 0 {
            return Err(DecodeRtpError::ExtensionUnsupported);
        }
        let csrc_count = (wire[0] & 0b0000_1111) as usize;
        let header_len = FIXED_HEADER_LEN + 4 * csrc_count;
        if wire.len() < header_len {
            return Err(DecodeRtpError::Truncated {
                needed: header_len,
                got: wire.len(),
            });
        }
        let mut payload_end = wire.len();
        if wire[0] & 0b0010_0000 != 0 {
            let payload = &wire[header_len..];
            let Some(&pad_len) = payload.last() else {
                return Err(DecodeRtpError::BadPadding);
            };
            let pad_len = pad_len as usize;
            if pad_len == 0 || pad_len > payload.len() {
                return Err(DecodeRtpError::BadPadding);
            }
            payload_end -= pad_len;
        }
        Ok(WireRtp {
            buf: wire,
            header_len,
            payload_end,
        })
    }

    /// Whether the wire packet carried padding (already stripped from
    /// [`WireRtp::payload`]).
    pub fn padding(&self) -> bool {
        self.buf[0] & 0b0010_0000 != 0
    }

    /// Marker bit.
    pub fn marker(&self) -> bool {
        self.buf[1] & 0b1000_0000 != 0
    }

    /// Payload type (7 bits).
    pub fn payload_type(&self) -> u8 {
        self.buf[1] & 0b0111_1111
    }

    /// Sequence number.
    pub fn sequence_number(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Media timestamp.
    pub fn timestamp(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Synchronization source.
    pub fn ssrc(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// Number of CSRC entries.
    pub fn csrc_count(&self) -> usize {
        (self.buf[0] & 0b0000_1111) as usize
    }

    /// Iterates the CSRC entries without building a `Vec`.
    pub fn csrc(&self) -> impl Iterator<Item = u32> + 'a {
        self.buf[FIXED_HEADER_LEN..self.header_len]
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Header length on the wire (fixed header plus CSRC entries).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// The logical payload: a slice into the frame, padding stripped.
    pub fn payload(&self) -> &'a [u8] {
        // `parse` validated `header_len <= payload_end <= buf.len()`; the
        // fallback keeps the hot decode path free of panicking indexing.
        self.buf.get(self.header_len..self.payload_end).unwrap_or(&[])
    }

    /// Materialises an owned [`RtpHeader`] (allocates the CSRC list).
    /// Padding was consumed by [`WireRtp::parse`], so the owned header
    /// reports the logical packet: `padding: false`.
    pub fn header_owned(&self) -> RtpHeader {
        RtpHeader {
            padding: false,
            extension: false,
            marker: self.marker(),
            payload_type: self.payload_type(),
            sequence_number: self.sequence_number(),
            timestamp: self.timestamp(),
            ssrc: self.ssrc(),
            csrc: self.csrc().collect(),
        }
    }
}

/// Error decoding an RTP packet from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeRtpError {
    /// Buffer shorter than the header demands.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Version field was not 2.
    BadVersion(u8),
    /// Header extensions are not supported.
    ExtensionUnsupported,
    /// Padding flag set but the padding length is inconsistent.
    BadPadding,
}

impl fmt::Display for DecodeRtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeRtpError::Truncated { needed, got } => {
                write!(f, "truncated rtp packet: need {needed} bytes, got {got}")
            }
            DecodeRtpError::BadVersion(v) => write!(f, "unsupported rtp version {v}"),
            DecodeRtpError::ExtensionUnsupported => write!(f, "rtp header extension unsupported"),
            DecodeRtpError::BadPadding => write!(f, "inconsistent rtp padding"),
        }
    }
}

impl std::error::Error for DecodeRtpError {}

/// Well-known payload types used across the workspace.
pub mod payload_type {
    /// PCMU (G.711 µ-law) audio, 8 kHz.
    pub const PCMU: u8 = 0;
    /// GSM full-rate audio, 8 kHz.
    pub const GSM: u8 = 3;
    /// H.261 video, 90 kHz.
    pub const H261: u8 = 31;
    /// H.263 video, 90 kHz.
    pub const H263: u8 = 34;

    /// The RTP clock rate for a payload type.
    pub fn clock_rate(pt: u8) -> u32 {
        match pt {
            PCMU | GSM => 8_000,
            H261 | H263 => 90_000,
            // Dynamic types in this workspace are video.
            _ => 90_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> RtpPacket {
        let mut header = RtpHeader::new(34, 4660, 0x0102_0304, 0xdead_beef);
        header.marker = true;
        header.csrc = vec![1, 2, 3];
        RtpPacket::new(header, Bytes::from_static(b"hello media"))
    }

    #[test]
    fn encode_decode_round_trip() {
        let packet = sample();
        let wire = packet.encode();
        assert_eq!(wire.len(), packet.wire_len());
        assert_eq!(RtpPacket::decode(&wire).unwrap(), packet);
    }

    #[test]
    fn wire_layout_matches_rfc3550() {
        let packet = RtpPacket::new(RtpHeader::new(0, 0x1234, 0xAABBCCDD, 0x11223344), Bytes::new());
        let wire = packet.encode();
        assert_eq!(wire[0], 0x80); // V=2, P=0, X=0, CC=0
        assert_eq!(wire[1], 0x00); // M=0, PT=0
        assert_eq!(&wire[2..4], &[0x12, 0x34]);
        assert_eq!(&wire[4..8], &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(&wire[8..12], &[0x11, 0x22, 0x33, 0x44]);
    }

    #[test]
    fn marker_and_payload_type_share_a_byte() {
        let mut header = RtpHeader::new(96, 1, 1, 1);
        header.marker = true;
        let wire = RtpPacket::new(header, Bytes::new()).encode();
        assert_eq!(wire[1], 0x80 | 96);
    }

    #[test]
    fn truncated_input_errors() {
        let packet = sample();
        let wire = packet.encode();
        assert!(matches!(
            RtpPacket::decode(&wire[..8]),
            Err(DecodeRtpError::Truncated { .. })
        ));
        // Truncated inside the CSRC list.
        assert!(matches!(
            RtpPacket::decode(&wire[..14]),
            Err(DecodeRtpError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_version_errors() {
        let mut wire = sample().encode().to_vec();
        wire[0] = (1 << 6) | (wire[0] & 0x3F);
        assert_eq!(RtpPacket::decode(&wire), Err(DecodeRtpError::BadVersion(1)));
    }

    #[test]
    fn extension_flag_rejected() {
        let mut wire = sample().encode().to_vec();
        wire[0] |= 0b0001_0000;
        assert_eq!(
            RtpPacket::decode(&wire),
            Err(DecodeRtpError::ExtensionUnsupported)
        );
    }

    #[test]
    fn padding_is_stripped() {
        let header = RtpHeader::new(0, 1, 1, 1);
        let mut wire = BytesMut::new();
        let mut h = header.clone();
        h.padding = true;
        h.encode_into(&mut wire);
        wire.put_slice(b"abcd");
        wire.put_slice(&[0, 0, 3]); // 3 bytes of padding incl. the count
        let decoded = RtpPacket::decode(&wire).unwrap();
        assert_eq!(&decoded.payload[..], b"abcd");
        assert!(!decoded.header.padding);
    }

    #[test]
    fn bad_padding_errors() {
        let mut h = RtpHeader::new(0, 1, 1, 1);
        h.padding = true;
        let mut wire = BytesMut::new();
        h.encode_into(&mut wire);
        wire.put_slice(&[9]); // claims 9 bytes of padding, only 1 present
        assert_eq!(RtpPacket::decode(&wire), Err(DecodeRtpError::BadPadding));
    }

    #[test]
    #[should_panic(expected = "7 bits")]
    fn oversized_payload_type_panics() {
        let _ = RtpHeader::new(128, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "15 CSRC")]
    fn too_many_csrc_panics() {
        let mut header = RtpHeader::new(0, 0, 0, 0);
        header.csrc = vec![0; 16];
        let _ = RtpPacket::new(header, Bytes::new());
    }

    #[test]
    fn clock_rates() {
        assert_eq!(payload_type::clock_rate(payload_type::PCMU), 8_000);
        assert_eq!(payload_type::clock_rate(payload_type::GSM), 8_000);
        assert_eq!(payload_type::clock_rate(payload_type::H263), 90_000);
        assert_eq!(payload_type::clock_rate(97), 90_000);
    }
}
