//! Interarrival jitter (RFC 3550 §6.4.1).
//!
//! The estimator behind Figure 3(b): for consecutive packets `i-1`, `i`,
//! with arrival times `R` and media timestamps `S` (both in seconds),
//! `D = (R_i - R_{i-1}) - (S_i - S_{i-1})` and the running jitter is
//! smoothed as `J += (|D| - J) / 16`.

use mmcs_util::time::SimTime;

/// Running RFC 3550 jitter estimator for one source.
///
/// # Examples
///
/// ```
/// use mmcs_rtp::jitter::JitterEstimator;
/// use mmcs_util::time::SimTime;
///
/// let mut j = JitterEstimator::new(8_000); // PCMU clock
/// // Perfectly paced stream: zero jitter.
/// j.record(SimTime::from_millis(0), 0);
/// j.record(SimTime::from_millis(20), 160);
/// j.record(SimTime::from_millis(40), 320);
/// assert!(j.jitter_ms() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JitterEstimator {
    clock_rate: u32,
    last_arrival: Option<(SimTime, u32)>,
    /// Smoothed jitter in seconds.
    jitter_secs: f64,
    samples: u64,
}

impl JitterEstimator {
    /// Creates an estimator for a source with the given RTP clock rate.
    ///
    /// # Panics
    ///
    /// Panics if `clock_rate` is zero.
    pub fn new(clock_rate: u32) -> Self {
        assert!(clock_rate > 0, "clock rate must be positive");
        Self {
            clock_rate,
            last_arrival: None,
            jitter_secs: 0.0,
            samples: 0,
        }
    }

    /// Records a packet arrival, returning the instantaneous |D| in
    /// milliseconds (0 for the first packet).
    pub fn record(&mut self, arrival: SimTime, rtp_timestamp: u32) -> f64 {
        let Some((prev_arrival, prev_ts)) = self.last_arrival else {
            self.last_arrival = Some((arrival, rtp_timestamp));
            return 0.0;
        };
        let arrival_delta = arrival.as_secs_f64() - prev_arrival.as_secs_f64();
        // Timestamp delta with wrap-around, as a signed 32-bit difference.
        let ts_delta = rtp_timestamp.wrapping_sub(prev_ts) as i32 as f64 / self.clock_rate as f64;
        let d = (arrival_delta - ts_delta).abs();
        self.jitter_secs += (d - self.jitter_secs) / 16.0;
        self.samples += 1;
        self.last_arrival = Some((arrival, rtp_timestamp));
        d * 1e3
    }

    /// The current smoothed jitter in milliseconds.
    pub fn jitter_ms(&self) -> f64 {
        self.jitter_secs * 1e3
    }

    /// The current smoothed jitter in RTP timestamp units, the form RTCP
    /// receiver reports carry.
    pub fn jitter_rtp_units(&self) -> u32 {
        (self.jitter_secs * self.clock_rate as f64) as u32
    }

    /// How many interarrival samples have been folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_util::time::SimDuration;

    #[test]
    fn perfectly_paced_stream_has_zero_jitter() {
        let mut j = JitterEstimator::new(90_000);
        let mut t = SimTime::ZERO;
        let mut ts = 0u32;
        for _ in 0..100 {
            j.record(t, ts);
            t += SimDuration::from_millis(40);
            ts = ts.wrapping_add(3600); // 40 ms at 90 kHz
        }
        assert!(j.jitter_ms() < 1e-9, "J = {}", j.jitter_ms());
        assert_eq!(j.samples(), 99);
    }

    #[test]
    fn constant_displacement_converges_toward_displacement() {
        // Every other packet arrives 8 ms late: |D| alternates 8, 8 (each
        // step changes arrival spacing by ±8 ms while timestamps advance
        // uniformly), so J converges toward 8 ms.
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..500u64 {
            let base = SimTime::from_millis(i * 20);
            let arrival = if i % 2 == 1 {
                base + SimDuration::from_millis(8)
            } else {
                base
            };
            j.record(arrival, ts);
            ts += 160;
        }
        assert!((j.jitter_ms() - 8.0).abs() < 0.5, "J = {}", j.jitter_ms());
    }

    #[test]
    fn timestamp_wraparound_is_handled() {
        let mut j = JitterEstimator::new(90_000);
        j.record(SimTime::from_millis(0), u32::MAX - 1000);
        // 40 ms later, timestamp wraps past zero.
        let d = j.record(SimTime::from_millis(40), u32::MAX.wrapping_add(2600));
        assert!(d < 1.0, "wraparound treated as huge delta: {d}");
    }

    #[test]
    fn first_packet_contributes_nothing() {
        let mut j = JitterEstimator::new(8_000);
        assert_eq!(j.record(SimTime::from_millis(5), 40), 0.0);
        assert_eq!(j.samples(), 0);
        assert_eq!(j.jitter_ms(), 0.0);
    }

    #[test]
    fn rtp_units_conversion() {
        let mut j = JitterEstimator::new(8_000);
        j.record(SimTime::from_millis(0), 0);
        // 20 ms of media, 36 ms of wall time -> |D| = 16 ms.
        j.record(SimTime::from_millis(36), 160);
        // J = 16/16 = 1 ms ~= 8 timestamp units at 8 kHz.
        assert!((7..=8).contains(&j.jitter_rtp_units()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rate_panics() {
        let _ = JitterEstimator::new(0);
    }
}
