//! RTCP control packets (RFC 3550 §6): SR, RR, SDES, BYE.
//!
//! Receivers in Global-MMCS periodically send receiver reports carrying
//! the loss fraction and jitter computed by [`crate::seq`] and
//! [`crate::jitter`]; the session services use them for quality monitoring
//! (and the capacity experiment uses them to find the quality knee).

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

/// RTCP packet type codes.
mod pt {
    pub const SR: u8 = 200;
    pub const RR: u8 = 201;
    pub const SDES: u8 = 202;
    pub const BYE: u8 = 203;
}

/// One reception report block, as carried in SR/RR packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportBlock {
    /// The source this block reports on.
    pub ssrc: u32,
    /// Loss fraction since the previous report, as a fixed-point /256.
    pub fraction_lost: u8,
    /// Cumulative packets lost (24 bits on the wire; saturated).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in timestamp units.
    pub jitter: u32,
    /// Last SR timestamp (middle 32 bits of NTP), 0 if none.
    pub last_sr: u32,
    /// Delay since last SR in 1/65536 seconds, 0 if none.
    pub delay_since_last_sr: u32,
}

impl ReportBlock {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.ssrc);
        let lost24 = self.cumulative_lost.min(0x00FF_FFFF);
        buf.put_u32(((self.fraction_lost as u32) << 24) | lost24);
        buf.put_u32(self.highest_seq);
        buf.put_u32(self.jitter);
        buf.put_u32(self.last_sr);
        buf.put_u32(self.delay_since_last_sr);
    }

    fn decode(wire: &[u8]) -> Result<ReportBlock, DecodeRtcpError> {
        if wire.len() < 24 {
            return Err(DecodeRtcpError::Truncated);
        }
        let word = |i: usize| u32::from_be_bytes([wire[i], wire[i + 1], wire[i + 2], wire[i + 3]]);
        Ok(ReportBlock {
            ssrc: word(0),
            fraction_lost: wire[4],
            cumulative_lost: word(4) & 0x00FF_FFFF,
            highest_seq: word(8),
            jitter: word(12),
            last_sr: word(16),
            delay_since_last_sr: word(20),
        })
    }
}

/// One RTCP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtcpPacket {
    /// Sender report: sender info plus reception blocks.
    SenderReport {
        /// Reporting sender's SSRC.
        ssrc: u32,
        /// NTP timestamp (we store virtual nanoseconds).
        ntp_timestamp: u64,
        /// RTP timestamp corresponding to the NTP timestamp.
        rtp_timestamp: u32,
        /// Packets sent so far.
        packet_count: u32,
        /// Payload bytes sent so far.
        octet_count: u32,
        /// Reception blocks for sources this sender also receives.
        reports: Vec<ReportBlock>,
    },
    /// Receiver report.
    ReceiverReport {
        /// Reporting receiver's SSRC.
        ssrc: u32,
        /// Reception blocks.
        reports: Vec<ReportBlock>,
    },
    /// Source description; we carry only the mandatory CNAME item.
    Sdes {
        /// (SSRC, CNAME) chunks.
        chunks: Vec<(u32, String)>,
    },
    /// Goodbye.
    Bye {
        /// Sources leaving the session.
        ssrcs: Vec<u32>,
    },
}

impl RtcpPacket {
    /// Encodes this packet in wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            RtcpPacket::SenderReport {
                ssrc,
                ntp_timestamp,
                rtp_timestamp,
                packet_count,
                octet_count,
                reports,
            } => {
                put_header(&mut buf, reports.len() as u8, pt::SR, 24 + reports.len() * 24);
                buf.put_u32(*ssrc);
                buf.put_u64(*ntp_timestamp);
                buf.put_u32(*rtp_timestamp);
                buf.put_u32(*packet_count);
                buf.put_u32(*octet_count);
                for r in reports {
                    r.encode_into(&mut buf);
                }
            }
            RtcpPacket::ReceiverReport { ssrc, reports } => {
                put_header(&mut buf, reports.len() as u8, pt::RR, 4 + reports.len() * 24);
                buf.put_u32(*ssrc);
                for r in reports {
                    r.encode_into(&mut buf);
                }
            }
            RtcpPacket::Sdes { chunks } => {
                // Each chunk: SSRC + item(type=1 CNAME, len, text) + end,
                // padded to a word boundary.
                let mut body = BytesMut::new();
                for (ssrc, cname) in chunks {
                    body.put_u32(*ssrc);
                    body.put_u8(1);
                    let text = cname.as_bytes();
                    assert!(text.len() <= 255, "CNAME too long");
                    body.put_u8(text.len() as u8);
                    body.put_slice(text);
                    body.put_u8(0); // end of items
                    while !body.len().is_multiple_of(4) {
                        body.put_u8(0);
                    }
                }
                put_header(&mut buf, chunks.len() as u8, pt::SDES, body.len());
                buf.put_slice(&body);
            }
            RtcpPacket::Bye { ssrcs } => {
                put_header(&mut buf, ssrcs.len() as u8, pt::BYE, ssrcs.len() * 4);
                for ssrc in ssrcs {
                    buf.put_u32(*ssrc);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a single RTCP packet, returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeRtcpError`] on truncation, a bad version, or an
    /// unknown packet type.
    pub fn decode(wire: &[u8]) -> Result<(RtcpPacket, usize), DecodeRtcpError> {
        if wire.len() < 4 {
            return Err(DecodeRtcpError::Truncated);
        }
        let version = wire[0] >> 6;
        if version != 2 {
            return Err(DecodeRtcpError::BadVersion(version));
        }
        let count = (wire[0] & 0x1F) as usize;
        let packet_type = wire[1];
        let length_words = u16::from_be_bytes([wire[2], wire[3]]) as usize;
        let total_len = (length_words + 1) * 4;
        if wire.len() < total_len {
            return Err(DecodeRtcpError::Truncated);
        }
        let body = &wire[4..total_len];
        let word = |b: &[u8], i: usize| u32::from_be_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let packet = match packet_type {
            pt::SR => {
                if body.len() < 24 + count * 24 {
                    return Err(DecodeRtcpError::Truncated);
                }
                let mut reports = Vec::with_capacity(count);
                for i in 0..count {
                    reports.push(ReportBlock::decode(&body[24 + i * 24..])?);
                }
                RtcpPacket::SenderReport {
                    ssrc: word(body, 0),
                    ntp_timestamp: u64::from_be_bytes([
                        body[4], body[5], body[6], body[7], body[8], body[9], body[10], body[11],
                    ]),
                    rtp_timestamp: word(body, 12),
                    packet_count: word(body, 16),
                    octet_count: word(body, 20),
                    reports,
                }
            }
            pt::RR => {
                if body.len() < 4 + count * 24 {
                    return Err(DecodeRtcpError::Truncated);
                }
                let mut reports = Vec::with_capacity(count);
                for i in 0..count {
                    reports.push(ReportBlock::decode(&body[4 + i * 24..])?);
                }
                RtcpPacket::ReceiverReport {
                    ssrc: word(body, 0),
                    reports,
                }
            }
            pt::SDES => {
                let mut chunks = Vec::with_capacity(count);
                let mut off = 0usize;
                for _ in 0..count {
                    if body.len() < off + 6 {
                        return Err(DecodeRtcpError::Truncated);
                    }
                    let ssrc = word(body, off);
                    off += 4;
                    if body[off] != 1 {
                        return Err(DecodeRtcpError::Malformed("expected CNAME item"));
                    }
                    let len = body[off + 1] as usize;
                    if body.len() < off + 2 + len {
                        return Err(DecodeRtcpError::Truncated);
                    }
                    let cname = String::from_utf8_lossy(&body[off + 2..off + 2 + len]).into_owned();
                    off += 2 + len;
                    // Skip the end-of-items marker and word padding.
                    off += 1;
                    off = (off + 3) & !3;
                    chunks.push((ssrc, cname));
                }
                RtcpPacket::Sdes { chunks }
            }
            pt::BYE => {
                if body.len() < count * 4 {
                    return Err(DecodeRtcpError::Truncated);
                }
                let ssrcs = (0..count).map(|i| word(body, i * 4)).collect();
                RtcpPacket::Bye { ssrcs }
            }
            other => return Err(DecodeRtcpError::UnknownType(other)),
        };
        Ok((packet, total_len))
    }

    /// Encodes a compound packet (several RTCP packets back to back).
    pub fn encode_compound(packets: &[RtcpPacket]) -> Bytes {
        let mut buf = BytesMut::new();
        for packet in packets {
            buf.put_slice(&packet.encode());
        }
        buf.freeze()
    }

    /// Decodes a compound packet into its constituent packets.
    ///
    /// # Errors
    ///
    /// Returns the first decode error encountered.
    pub fn decode_compound(mut wire: &[u8]) -> Result<Vec<RtcpPacket>, DecodeRtcpError> {
        let mut packets = Vec::new();
        while !wire.is_empty() {
            let (packet, used) = RtcpPacket::decode(wire)?;
            packets.push(packet);
            wire = &wire[used..];
        }
        Ok(packets)
    }
}

fn put_header(buf: &mut BytesMut, count: u8, packet_type: u8, body_len: usize) {
    assert!(count < 32, "RTCP count field is 5 bits");
    assert!(body_len.is_multiple_of(4), "RTCP body must be word-aligned");
    buf.put_u8(0x80 | count);
    buf.put_u8(packet_type);
    buf.put_u16((body_len / 4) as u16);
}

/// Error decoding an RTCP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeRtcpError {
    /// Buffer shorter than the header demands.
    Truncated,
    /// Version field was not 2.
    BadVersion(u8),
    /// Packet type not one of SR/RR/SDES/BYE.
    UnknownType(u8),
    /// Structurally invalid content.
    Malformed(&'static str),
}

impl fmt::Display for DecodeRtcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeRtcpError::Truncated => write!(f, "truncated rtcp packet"),
            DecodeRtcpError::BadVersion(v) => write!(f, "unsupported rtcp version {v}"),
            DecodeRtcpError::UnknownType(t) => write!(f, "unknown rtcp packet type {t}"),
            DecodeRtcpError::Malformed(what) => write!(f, "malformed rtcp packet: {what}"),
        }
    }
}

impl std::error::Error for DecodeRtcpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ssrc: u32) -> ReportBlock {
        ReportBlock {
            ssrc,
            fraction_lost: 12,
            cumulative_lost: 345,
            highest_seq: 0x0001_0002,
            jitter: 88,
            last_sr: 0xAAAA_BBBB,
            delay_since_last_sr: 65536,
        }
    }

    #[test]
    fn sender_report_round_trip() {
        let sr = RtcpPacket::SenderReport {
            ssrc: 7,
            ntp_timestamp: 0x0102030405060708,
            rtp_timestamp: 90_000,
            packet_count: 1000,
            octet_count: 1_000_000,
            reports: vec![block(1), block(2)],
        };
        let wire = sr.encode();
        let (decoded, used) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(decoded, sr);
    }

    #[test]
    fn receiver_report_round_trip() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 9,
            reports: vec![block(3)],
        };
        let wire = rr.encode();
        assert_eq!(RtcpPacket::decode(&wire).unwrap().0, rr);
    }

    #[test]
    fn empty_receiver_report_round_trip() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 9,
            reports: vec![],
        };
        assert_eq!(RtcpPacket::decode(&rr.encode()).unwrap().0, rr);
    }

    #[test]
    fn sdes_round_trip_with_padding() {
        for cname in ["a", "ab", "abc", "abcd", "user@host.example"] {
            let sdes = RtcpPacket::Sdes {
                chunks: vec![(42, cname.to_owned()), (43, "x".to_owned())],
            };
            let wire = sdes.encode();
            assert_eq!(wire.len() % 4, 0);
            assert_eq!(RtcpPacket::decode(&wire).unwrap().0, sdes);
        }
    }

    #[test]
    fn bye_round_trip() {
        let bye = RtcpPacket::Bye {
            ssrcs: vec![1, 2, 3],
        };
        assert_eq!(RtcpPacket::decode(&bye.encode()).unwrap().0, bye);
    }

    #[test]
    fn compound_round_trip() {
        let packets = vec![
            RtcpPacket::SenderReport {
                ssrc: 1,
                ntp_timestamp: 99,
                rtp_timestamp: 1,
                packet_count: 2,
                octet_count: 3,
                reports: vec![],
            },
            RtcpPacket::Sdes {
                chunks: vec![(1, "cname@example".to_owned())],
            },
            RtcpPacket::Bye { ssrcs: vec![1] },
        ];
        let wire = RtcpPacket::encode_compound(&packets);
        assert_eq!(RtcpPacket::decode_compound(&wire).unwrap(), packets);
    }

    #[test]
    fn cumulative_lost_saturates_at_24_bits() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![ReportBlock {
                cumulative_lost: u32::MAX,
                ..ReportBlock::default()
            }],
        };
        let (decoded, _) = RtcpPacket::decode(&rr.encode()).unwrap();
        let RtcpPacket::ReceiverReport { reports, .. } = decoded else {
            panic!("wrong type");
        };
        assert_eq!(reports[0].cumulative_lost, 0x00FF_FFFF);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(RtcpPacket::decode(&[0x80]), Err(DecodeRtcpError::Truncated));
        assert_eq!(
            RtcpPacket::decode(&[0x40, 200, 0, 0]),
            Err(DecodeRtcpError::BadVersion(1))
        );
        assert_eq!(
            RtcpPacket::decode(&[0x80, 99, 0, 0]),
            Err(DecodeRtcpError::UnknownType(99))
        );
        // Header promises more words than provided.
        assert_eq!(
            RtcpPacket::decode(&[0x80, 201, 0, 9, 0, 0, 0, 0]),
            Err(DecodeRtcpError::Truncated)
        );
    }
}
