//! The Admire web-services facade.
//!
//! [`AdmireService`] implements the WSDL-CI
//! [`CollaborationServer`] contract around the native
//! [`AdmireServer`] type, and exposes the
//! `rendezvous` control operation the paper describes: Global-MMCS
//! proposes a rendezvous address, Admire answers with its own, and both
//! sides stand up [`RtpAgent`] pairs there. A
//! [`AdmireService::soap_server`] binding publishes the same operations
//! over SOAP for the XGSP web server.

use std::collections::HashMap;

use mmcs_soap::envelope::SoapFault;
use mmcs_soap::service::SoapServer;
use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::wsdl_ci::{CiError, CollaborationServer, OperationDescriptor, ServiceDescriptor};

use crate::agent::RtpAgent;
use crate::conference::AdmireServer;

/// The Admire community service. See the [module docs](self).
#[derive(Debug)]
pub struct AdmireService {
    community: String,
    endpoint: String,
    server: AdmireServer,
    /// XGSP session -> Admire conference name.
    sessions: HashMap<SessionId, String>,
    /// XGSP session -> the agent Admire stood up for it.
    agents: HashMap<SessionId, RtpAgent>,
    /// Base address Admire allocates rendezvous ports from.
    rendezvous_host: String,
    next_port: u16,
}

impl AdmireService {
    /// Creates the service for a community (e.g. `admire.cn`).
    pub fn new(community: impl Into<String>, rendezvous_host: impl Into<String>) -> Self {
        let community = community.into();
        Self {
            endpoint: format!("http://{community}/soap"),
            community,
            server: AdmireServer::new(),
            sessions: HashMap::new(),
            agents: HashMap::new(),
            rendezvous_host: rendezvous_host.into(),
            next_port: 9000,
        }
    }

    /// The native Admire server (for site-level assertions in tests).
    pub fn server(&self) -> &AdmireServer {
        &self.server
    }

    /// Mutable access to the native server (site-side joins).
    pub fn server_mut(&mut self) -> &mut AdmireServer {
        &mut self.server
    }

    /// The RTP agent for a mirrored session, once rendezvous completed.
    pub fn agent(&self, session: SessionId) -> Option<&RtpAgent> {
        self.agents.get(&session)
    }

    /// Mutable agent access (tests relay through it).
    pub fn agent_mut(&mut self, session: SessionId) -> Option<&mut RtpAgent> {
        self.agents.get_mut(&session)
    }

    fn conference_name(session: SessionId) -> String {
        format!("xgsp-session-{}", session.value())
    }

    /// Builds a SOAP server exposing this service's operations. The
    /// service value is consumed and owned by the handlers (mirroring
    /// how Axis instantiated one service object per deployment).
    pub fn soap_server(self) -> SoapServer {
        let service = std::rc::Rc::new(std::cell::RefCell::new(self));
        let mut soap = SoapServer::new();

        let part = |parts: &[(String, String)], name: &str| -> Result<String, SoapFault> {
            parts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| SoapFault {
                    code: "Client".into(),
                    reason: format!("missing part {name:?}"),
                })
        };
        let session_part = move |parts: &[(String, String)]| -> Result<SessionId, SoapFault> {
            let raw = part(parts, "sessionId")?;
            raw.parse::<u64>()
                .map(SessionId::from_raw)
                .map_err(|_| SoapFault {
                    code: "Client".into(),
                    reason: format!("bad sessionId {raw:?}"),
                })
        };
        let ci_fault = |err: CiError| SoapFault {
            code: "Server".into(),
            reason: err.to_string(),
        };

        {
            let service = service.clone();
            soap.register("establishSession", move |parts| {
                let session = session_part(parts)?;
                let name = part(parts, "name")?;
                service
                    .borrow_mut()
                    .establish_session(session, &name)
                    .map_err(ci_fault)?;
                Ok(vec![("status".into(), "ok".into())])
            });
        }
        {
            let service = service.clone();
            soap.register("addMember", move |parts| {
                let session = session_part(parts)?;
                let user = part(parts, "user")?;
                let terminal: u64 = part(parts, "terminal")?.parse().unwrap_or(0);
                service
                    .borrow_mut()
                    .add_member(session, &user, TerminalId::from_raw(terminal))
                    .map_err(ci_fault)?;
                Ok(vec![("status".into(), "ok".into())])
            });
        }
        {
            let service = service.clone();
            soap.register("removeMember", move |parts| {
                let session = session_part(parts)?;
                let user = part(parts, "user")?;
                service
                    .borrow_mut()
                    .remove_member(session, &user)
                    .map_err(ci_fault)?;
                Ok(vec![("status".into(), "ok".into())])
            });
        }
        {
            let service = service.clone();
            soap.register("control", move |parts| {
                let session = session_part(parts)?;
                let operation = part(parts, "operation")?;
                let args: Vec<(String, String)> = parts
                    .iter()
                    .filter(|(n, _)| n != "sessionId" && n != "operation")
                    .cloned()
                    .collect();
                service
                    .borrow_mut()
                    .control(session, &operation, &args)
                    .map_err(ci_fault)
            });
        }
        {
            let service = service.clone();
            soap.register("teardownSession", move |parts| {
                let session = session_part(parts)?;
                service
                    .borrow_mut()
                    .teardown_session(session)
                    .map_err(ci_fault)?;
                Ok(vec![("status".into(), "ok".into())])
            });
        }
        soap
    }
}

impl CollaborationServer for AdmireService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor {
            service: "AdmireConferenceService".into(),
            community: self.community.clone(),
            endpoint: self.endpoint.clone(),
            operations: vec![OperationDescriptor {
                name: "rendezvous".into(),
                inputs: vec!["sessionId".into(), "proposedAddress".into()],
                outputs: vec!["admireAddress".into()],
            }],
        }
    }

    fn establish_session(&mut self, session: SessionId, name: &str) -> Result<(), CiError> {
        let conference = Self::conference_name(session);
        self.server.create_conference(&conference, name);
        self.sessions.insert(session, conference);
        Ok(())
    }

    fn add_member(
        &mut self,
        session: SessionId,
        user: &str,
        _terminal: TerminalId,
    ) -> Result<(), CiError> {
        let conference = self
            .sessions
            .get(&session)
            .ok_or(CiError::UnknownSession(session))?;
        self.server
            .join(conference, "globalmmcs", user)
            .map_err(|e| CiError::Refused(e.to_string()))
    }

    fn remove_member(&mut self, session: SessionId, user: &str) -> Result<(), CiError> {
        let conference = self
            .sessions
            .get(&session)
            .ok_or(CiError::UnknownSession(session))?;
        self.server
            .leave(conference, user)
            .map_err(|_| CiError::UnknownMember(user.to_owned()))
    }

    fn control(
        &mut self,
        session: SessionId,
        operation: &str,
        args: &[(String, String)],
    ) -> Result<Vec<(String, String)>, CiError> {
        if !self.sessions.contains_key(&session) {
            return Err(CiError::UnknownSession(session));
        }
        match operation {
            // The paper's integration flow: propose a rendezvous, get
            // Admire's back, both sides create RTP agents there.
            "rendezvous" => {
                let _proposed = args
                    .iter()
                    .find(|(n, _)| n == "proposedAddress")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                let address = format!("{}:{}", self.rendezvous_host, self.next_port);
                self.next_port += 2; // RTP + RTCP port pair
                let mut agent = RtpAgent::new(address.clone());
                agent.start();
                self.agents.insert(session, agent);
                Ok(vec![("admireAddress".into(), address)])
            }
            "archive" => {
                let on = args
                    .iter()
                    .any(|(n, v)| n == "enabled" && v == "true");
                let conference = &self.sessions[&session];
                self.server
                    .set_archiving(conference, on)
                    .map_err(|e| CiError::Refused(e.to_string()))?;
                Ok(vec![("status".into(), "ok".into())])
            }
            other => Err(CiError::UnsupportedOperation(other.to_owned())),
        }
    }

    fn teardown_session(&mut self, session: SessionId) -> Result<(), CiError> {
        let conference = self
            .sessions
            .remove(&session)
            .ok_or(CiError::UnknownSession(session))?;
        self.server.end_conference(&conference);
        if let Some(mut agent) = self.agents.remove(&session) {
            agent.stop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_soap::service::SoapClient;

    fn session() -> SessionId {
        SessionId::from_raw(7)
    }

    #[test]
    fn wsdl_ci_lifecycle_with_rendezvous() {
        let mut service = AdmireService::new("admire.cn", "rdv.admire.cn");
        service.establish_session(session(), "joint seminar").unwrap();
        service
            .add_member(session(), "alice", TerminalId::from_raw(1))
            .unwrap();
        assert_eq!(
            service
                .server()
                .conference("xgsp-session-7")
                .unwrap()
                .member_count(),
            1
        );

        let result = service
            .control(
                session(),
                "rendezvous",
                &[("proposedAddress".into(), "rdv.mmcs:8000".into())],
            )
            .unwrap();
        assert_eq!(result[0].0, "admireAddress");
        assert!(result[0].1.starts_with("rdv.admire.cn:"));
        let agent = service.agent(session()).unwrap();
        assert!(agent.is_started());
        assert_eq!(agent.rendezvous(), result[0].1);

        service.remove_member(session(), "alice").unwrap();
        service.teardown_session(session()).unwrap();
        assert!(service.agent(session()).is_none());
        assert_eq!(service.server().conference_count(), 0);
    }

    #[test]
    fn consecutive_rendezvous_allocate_distinct_ports() {
        let mut service = AdmireService::new("admire.cn", "rdv");
        service.establish_session(SessionId::from_raw(1), "a").unwrap();
        service.establish_session(SessionId::from_raw(2), "b").unwrap();
        let a = service
            .control(SessionId::from_raw(1), "rendezvous", &[])
            .unwrap()[0]
            .1
            .clone();
        let b = service
            .control(SessionId::from_raw(2), "rendezvous", &[])
            .unwrap()[0]
            .1
            .clone();
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_sessions_and_operations_error() {
        let mut service = AdmireService::new("admire.cn", "rdv");
        assert_eq!(
            service.add_member(session(), "x", TerminalId::from_raw(1)),
            Err(CiError::UnknownSession(session()))
        );
        assert_eq!(
            service.teardown_session(session()),
            Err(CiError::UnknownSession(session()))
        );
        service.establish_session(session(), "s").unwrap();
        assert_eq!(
            service.control(session(), "levitate", &[]),
            Err(CiError::UnsupportedOperation("levitate".into()))
        );
    }

    #[test]
    fn archive_control_toggles_native_flag() {
        let mut service = AdmireService::new("admire.cn", "rdv");
        service.establish_session(session(), "s").unwrap();
        service
            .control(session(), "archive", &[("enabled".into(), "true".into())])
            .unwrap();
        assert!(service.server().conference("xgsp-session-7").unwrap().archiving);
    }

    #[test]
    fn descriptor_includes_rendezvous_operation() {
        let service = AdmireService::new("admire.cn", "rdv");
        let descriptor = service.descriptor();
        assert_eq!(descriptor.service, "AdmireConferenceService");
        assert!(descriptor.operations.iter().any(|o| o.name == "rendezvous"));
        let wsdl = descriptor.to_wsdl();
        assert!(wsdl.to_xml().contains("rendezvous"));
    }

    #[test]
    fn soap_binding_round_trip() {
        let service = AdmireService::new("admire.cn", "rdv.admire.cn");
        let mut soap = service.soap_server();
        // establishSession over SOAP.
        let request = SoapClient::request(
            "establishSession",
            &[("sessionId", "7"), ("name", "joint seminar")],
        );
        let response = soap.handle(&request);
        let parts = SoapClient::decode_response("establishSession", &response).unwrap();
        assert_eq!(parts[0], ("status".into(), "ok".into()));
        // rendezvous over SOAP (the paper's exact exchange).
        let request = SoapClient::request(
            "control",
            &[
                ("sessionId", "7"),
                ("operation", "rendezvous"),
                ("proposedAddress", "rdv.mmcs:8000"),
            ],
        );
        let response = soap.handle(&request);
        let parts = SoapClient::decode_response("control", &response).unwrap();
        assert_eq!(parts[0].0, "admireAddress");
        assert!(parts[0].1.starts_with("rdv.admire.cn:"));
        // Errors fault.
        let request = SoapClient::request("addMember", &[("sessionId", "99"), ("user", "x"), ("terminal", "1")]);
        let response = soap.handle(&request);
        assert!(SoapClient::decode_response("addMember", &response).is_err());
    }
}
