//! Admire's native conference management.
//!
//! Modeled after a site-based system: each participant joins from a
//! *site* (an NSFCNET campus), conferences track per-site membership,
//! and the archive flag mirrors Admire's "conference archiving service".

use core::fmt;
use std::collections::BTreeMap;

/// One Admire conference.
#[derive(Debug, Clone, Default)]
pub struct AdmireConference {
    /// Conference title.
    pub title: String,
    /// site -> members at that site.
    members: BTreeMap<String, Vec<String>>,
    /// Whether the conference is being archived.
    pub archiving: bool,
}

impl AdmireConference {
    /// Members at one site.
    pub fn site_members(&self, site: &str) -> &[String] {
        self.members.get(site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All sites with members, sorted.
    pub fn sites(&self) -> Vec<&str> {
        self.members.keys().map(String::as_str).collect()
    }

    /// Total member count.
    pub fn member_count(&self) -> usize {
        self.members.values().map(Vec::len).sum()
    }
}

/// Errors from Admire conference operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmireError {
    /// No such conference.
    UnknownConference(String),
    /// The member is already present.
    AlreadyJoined(String),
    /// No such member.
    UnknownMember(String),
}

impl fmt::Display for AdmireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmireError::UnknownConference(c) => write!(f, "unknown conference {c:?}"),
            AdmireError::AlreadyJoined(m) => write!(f, "member {m:?} already joined"),
            AdmireError::UnknownMember(m) => write!(f, "unknown member {m:?}"),
        }
    }
}

impl std::error::Error for AdmireError {}

/// The Admire conference server.
#[derive(Debug, Default)]
pub struct AdmireServer {
    conferences: BTreeMap<String, AdmireConference>,
}

impl AdmireServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or returns) a conference by name.
    pub fn create_conference(&mut self, name: impl Into<String>, title: impl Into<String>) {
        self.conferences
            .entry(name.into())
            .or_insert_with(|| AdmireConference {
                title: title.into(),
                ..AdmireConference::default()
            });
    }

    /// Ends a conference; returns whether it existed.
    pub fn end_conference(&mut self, name: &str) -> bool {
        self.conferences.remove(name).is_some()
    }

    /// Borrows a conference.
    pub fn conference(&self, name: &str) -> Option<&AdmireConference> {
        self.conferences.get(name)
    }

    /// Joins a member from a site.
    ///
    /// # Errors
    ///
    /// [`AdmireError::UnknownConference`] / [`AdmireError::AlreadyJoined`].
    pub fn join(
        &mut self,
        conference: &str,
        site: impl Into<String>,
        member: impl Into<String>,
    ) -> Result<(), AdmireError> {
        let conf = self
            .conferences
            .get_mut(conference)
            .ok_or_else(|| AdmireError::UnknownConference(conference.to_owned()))?;
        let member = member.into();
        if conf
            .members
            .values()
            .any(|members| members.contains(&member))
        {
            return Err(AdmireError::AlreadyJoined(member));
        }
        conf.members.entry(site.into()).or_default().push(member);
        Ok(())
    }

    /// Removes a member.
    ///
    /// # Errors
    ///
    /// [`AdmireError::UnknownConference`] / [`AdmireError::UnknownMember`].
    pub fn leave(&mut self, conference: &str, member: &str) -> Result<(), AdmireError> {
        let conf = self
            .conferences
            .get_mut(conference)
            .ok_or_else(|| AdmireError::UnknownConference(conference.to_owned()))?;
        let mut found = false;
        for members in conf.members.values_mut() {
            let before = members.len();
            members.retain(|m| m != member);
            found |= members.len() != before;
        }
        conf.members.retain(|_, members| !members.is_empty());
        if found {
            Ok(())
        } else {
            Err(AdmireError::UnknownMember(member.to_owned()))
        }
    }

    /// Toggles archiving.
    ///
    /// # Errors
    ///
    /// [`AdmireError::UnknownConference`].
    pub fn set_archiving(&mut self, conference: &str, on: bool) -> Result<(), AdmireError> {
        let conf = self
            .conferences
            .get_mut(conference)
            .ok_or_else(|| AdmireError::UnknownConference(conference.to_owned()))?;
        conf.archiving = on;
        Ok(())
    }

    /// Number of live conferences.
    pub fn conference_count(&self) -> usize {
        self.conferences.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_join_leave_lifecycle() {
        let mut server = AdmireServer::new();
        server.create_conference("seminar", "distributed systems seminar");
        server.join("seminar", "beihang", "prof-li").unwrap();
        server.join("seminar", "beihang", "student-wang").unwrap();
        server.join("seminar", "tsinghua", "prof-chen").unwrap();
        let conf = server.conference("seminar").unwrap();
        assert_eq!(conf.member_count(), 3);
        assert_eq!(conf.sites(), vec!["beihang", "tsinghua"]);
        assert_eq!(conf.site_members("beihang").len(), 2);

        server.leave("seminar", "student-wang").unwrap();
        assert_eq!(server.conference("seminar").unwrap().member_count(), 2);
        // Emptied sites disappear.
        server.leave("seminar", "prof-chen").unwrap();
        assert_eq!(server.conference("seminar").unwrap().sites(), vec!["beihang"]);
    }

    #[test]
    fn errors() {
        let mut server = AdmireServer::new();
        assert!(matches!(
            server.join("ghost", "s", "m"),
            Err(AdmireError::UnknownConference(_))
        ));
        server.create_conference("c", "t");
        server.join("c", "s", "m").unwrap();
        assert_eq!(
            server.join("c", "other-site", "m"),
            Err(AdmireError::AlreadyJoined("m".into()))
        );
        assert_eq!(
            server.leave("c", "nobody"),
            Err(AdmireError::UnknownMember("nobody".into()))
        );
    }

    #[test]
    fn archiving_flag() {
        let mut server = AdmireServer::new();
        server.create_conference("c", "t");
        server.set_archiving("c", true).unwrap();
        assert!(server.conference("c").unwrap().archiving);
        assert!(matches!(
            server.set_archiving("ghost", true),
            Err(AdmireError::UnknownConference(_))
        ));
    }

    #[test]
    fn end_conference() {
        let mut server = AdmireServer::new();
        server.create_conference("c", "t");
        assert!(server.end_conference("c"));
        assert!(!server.end_conference("c"));
        assert_eq!(server.conference_count(), 0);
    }

    #[test]
    fn create_is_idempotent() {
        let mut server = AdmireServer::new();
        server.create_conference("c", "first title");
        server.join("c", "s", "m").unwrap();
        server.create_conference("c", "second title");
        assert_eq!(server.conference("c").unwrap().member_count(), 1);
        assert_eq!(server.conference("c").unwrap().title, "first title");
    }
}
