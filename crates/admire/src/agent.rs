//! RTP agents at the rendezvous point.
//!
//! After the SOAP rendezvous exchange, "both sides will create RTP
//! agents on this rendezvous": Global-MMCS stands one up that
//! republishes Admire's media into the broker topic, Admire stands one
//! up that feeds its sites from the topic. The agent here is the shared
//! relay logic: a pair of endpoints splicing two transports, counting
//! and size-limiting what passes.

use core::fmt;

/// Direction of a relayed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From the community into Global-MMCS (toward the broker topic).
    Inbound,
    /// From Global-MMCS out to the community.
    Outbound,
}

/// A relayed packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relayed {
    /// Which way it went.
    pub direction: Direction,
    /// Wire bytes.
    pub bytes: usize,
}

/// Errors from the agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// The agent was not started.
    NotStarted,
    /// Packet exceeds the negotiated MTU.
    TooBig {
        /// Offered size.
        size: usize,
        /// Permitted maximum.
        mtu: usize,
    },
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::NotStarted => write!(f, "rtp agent not started"),
            AgentError::TooBig { size, mtu } => {
                write!(f, "packet of {size} bytes exceeds mtu {mtu}")
            }
        }
    }
}

impl std::error::Error for AgentError {}

/// An RTP agent bound to a rendezvous address.
#[derive(Debug)]
pub struct RtpAgent {
    rendezvous: String,
    mtu: usize,
    started: bool,
    relayed_in: u64,
    relayed_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl RtpAgent {
    /// Creates an agent for a rendezvous address with a 1500-byte MTU.
    pub fn new(rendezvous: impl Into<String>) -> Self {
        Self {
            rendezvous: rendezvous.into(),
            mtu: 1500,
            started: false,
            relayed_in: 0,
            relayed_out: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// The rendezvous address.
    pub fn rendezvous(&self) -> &str {
        &self.rendezvous
    }

    /// Starts relaying.
    pub fn start(&mut self) {
        self.started = true;
    }

    /// Stops relaying.
    pub fn stop(&mut self) {
        self.started = false;
    }

    /// Whether the agent is relaying.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Relays one packet, returning its record.
    ///
    /// # Errors
    ///
    /// [`AgentError::NotStarted`] / [`AgentError::TooBig`].
    pub fn relay(&mut self, direction: Direction, bytes: usize) -> Result<Relayed, AgentError> {
        if !self.started {
            return Err(AgentError::NotStarted);
        }
        if bytes > self.mtu {
            return Err(AgentError::TooBig {
                size: bytes,
                mtu: self.mtu,
            });
        }
        match direction {
            Direction::Inbound => {
                self.relayed_in += 1;
                self.bytes_in += bytes as u64;
            }
            Direction::Outbound => {
                self.relayed_out += 1;
                self.bytes_out += bytes as u64;
            }
        }
        Ok(Relayed { direction, bytes })
    }

    /// (packets, bytes) relayed inbound.
    pub fn inbound_stats(&self) -> (u64, u64) {
        (self.relayed_in, self.bytes_in)
    }

    /// (packets, bytes) relayed outbound.
    pub fn outbound_stats(&self) -> (u64, u64) {
        (self.relayed_out, self.bytes_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_requires_start_and_respects_mtu() {
        let mut agent = RtpAgent::new("rdv.mmcs:9000");
        assert_eq!(agent.rendezvous(), "rdv.mmcs:9000");
        assert_eq!(
            agent.relay(Direction::Inbound, 100),
            Err(AgentError::NotStarted)
        );
        agent.start();
        assert!(agent.is_started());
        agent.relay(Direction::Inbound, 1000).unwrap();
        agent.relay(Direction::Inbound, 200).unwrap();
        agent.relay(Direction::Outbound, 500).unwrap();
        assert_eq!(
            agent.relay(Direction::Outbound, 2000),
            Err(AgentError::TooBig {
                size: 2000,
                mtu: 1500
            })
        );
        assert_eq!(agent.inbound_stats(), (2, 1200));
        assert_eq!(agent.outbound_stats(), (1, 500));
        agent.stop();
        assert_eq!(
            agent.relay(Direction::Inbound, 1),
            Err(AgentError::NotStarted)
        );
    }
}
