//! A simulated Admire community.
//!
//! Admire is the Chinese partner system the paper integrates: a
//! videoconferencing environment from Beihang's NSDE lab, "deployed in
//! over 20 sites in NSFCNET, CERNET China", with its own conference
//! management — and, for Global-MMCS, a web-services facade. The paper
//! specifies the integration contract precisely (§3.2): "XGSP Web
//! Server invokes the web-services of Admire to notify the address of
//! the rendezvous point. And Admire responds with its rendezvous point
//! in SOAP reply. After that, both sides will create RTP agents on this
//! rendezvous."
//!
//! The real Admire is closed source; per `DESIGN.md` §2 this crate
//! builds an independent conference server with the same observable
//! surface:
//!
//! * [`conference`] — Admire's own conference management (sites,
//!   conferences, member state) in its native message style.
//! * [`agent`] — RTP agents: the relay pair both sides stand up at the
//!   rendezvous to splice their media planes together.
//! * [`service`] — the SOAP/WSDL-CI facade: implements
//!   [`mmcs_xgsp::wsdl_ci::CollaborationServer`] and handles the
//!   `rendezvous` control operation.

pub mod agent;
pub mod conference;
pub mod service;

pub use service::AdmireService;
