//! End-to-end acceptance tests for the chaos harness itself: clean
//! seeds pass, replays are bit-identical, and a deliberately seeded bug
//! is caught and shrunk to a minimal schedule.

use mmcs_chaos::scenario::{self, ScenarioConfig, BROKERS, CHURN_CLIENTS, EDGES};
use mmcs_chaos::{check, generate, shrink};

/// Shorter horizon than the CLI default keeps the test suite fast while
/// still exercising every fault kind across the seed range.
fn quick_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        horizon_ms: 6000,
        settle_ms: 8000,
        events_per_pair: 60,
        ..ScenarioConfig::for_seed(seed)
    }
}

#[test]
fn clean_seeds_hold_all_invariants() {
    for seed in 0..8 {
        let config = quick_config(seed);
        let schedule = generate(seed, config.horizon_ms, EDGES, BROKERS, CHURN_CLIENTS);
        let report = scenario::run(&config, &schedule);
        let violations = check(&report);
        assert!(
            violations.is_empty(),
            "seed {seed} violated: {violations:?}"
        );
        for pair in &report.pairs {
            assert_eq!(pair.offered, 60);
            assert_eq!(pair.delivered.len(), 60);
        }
    }
}

#[test]
fn replay_is_bit_identical() {
    let config = quick_config(42);
    let schedule = generate(42, config.horizon_ms, EDGES, BROKERS, CHURN_CLIENTS);
    let a = scenario::run(&config, &schedule);
    let b = scenario::run(&config, &schedule);
    assert_eq!(a.fingerprint, b.fingerprint, "fingerprints diverged");
    assert_eq!(a.counters, b.counters, "counters diverged");
    for (pa, pb) in a.pairs.iter().zip(b.pairs.iter()) {
        assert_eq!(pa.delivered, pb.delivered, "delivery traces diverged");
        assert_eq!(pa.retransmissions, pb.retransmissions);
    }
    for (ba, bb) in a.brokers.iter().zip(b.brokers.iter()) {
        assert_eq!(ba.history, bb.history, "peer histories diverged");
    }
    assert_eq!(a.xgsp_digest, b.xgsp_digest);
}

#[test]
fn seeded_bug_is_caught_and_shrunk() {
    // Disabling retransmission is the canonical seeded bug: any lossy
    // or partitioned interval strands in-flight frames forever, which
    // must surface as reliable-stream and quiescence violations.
    let mut caught = None;
    for seed in 0..10 {
        let config = ScenarioConfig {
            disable_retransmit: true,
            ..quick_config(seed)
        };
        let schedule = generate(seed, config.horizon_ms, EDGES, BROKERS, CHURN_CLIENTS);
        let violations = check(&scenario::run(&config, &schedule));
        if !violations.is_empty() {
            caught = Some((config, schedule, violations));
            break;
        }
    }
    let (config, schedule, violations) =
        caught.expect("a disabled-retransmit bug must be caught within 10 seeds");
    assert!(violations
        .iter()
        .any(|v| v.to_string().contains("reliable stream") || v.to_string().contains("quiescent")));

    let shrunk = shrink::minimize(&config, &schedule);
    assert!(
        !shrunk.violations.is_empty(),
        "minimal schedule must still fail"
    );
    assert!(
        shrunk.faults.len() <= schedule.len(),
        "shrinking must never grow the schedule"
    );
    // 1-minimality: removing any single fault from the minimal schedule
    // makes the failure disappear.
    if shrunk.faults.len() > 1 {
        for i in 0..shrunk.faults.len() {
            let mut probe = shrunk.faults.clone();
            probe.remove(i);
            let still_fails = !check(&scenario::run(&config, &probe)).is_empty();
            assert!(!still_fails, "fault {i} is removable; schedule not minimal");
        }
    }
    let rendered = shrink::render_test(&config, &shrunk);
    assert!(rendered.contains(&format!("chaos_seed_{}_minimal", config.seed)));
    assert!(rendered.contains("disable_retransmit: true"));
}
