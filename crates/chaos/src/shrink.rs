//! Schedule shrinking: ddmin over the fault list.
//!
//! When a seed fails, the full generated schedule usually contains many
//! faults that are irrelevant to the violation. Because every fault is a
//! self-contained interval (see [`crate::schedule`]), *any* subset of
//! the schedule is a well-formed schedule, so delta debugging applies
//! directly: partition the fault list, try dropping complements, and
//! keep the smallest subset that still violates an invariant.

use crate::invariants;
use crate::scenario::{self, ScenarioConfig};
use crate::schedule::Fault;

/// Outcome of a shrinking pass.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal fault subset that still fails.
    pub faults: Vec<Fault>,
    /// Violations the minimal schedule produces.
    pub violations: Vec<invariants::Violation>,
    /// Scenario executions the search spent.
    pub runs: usize,
}

/// True when running `faults` under `config` violates any invariant.
fn fails(config: &ScenarioConfig, faults: &[Fault]) -> bool {
    !invariants::check(&scenario::run(config, faults)).is_empty()
}

/// Minimizes a failing schedule with ddmin.
///
/// Precondition: `faults` fails under `config` (the caller observed the
/// violation). Postcondition: the returned subset still fails, and no
/// single fault can be removed from it without the failure disappearing
/// (1-minimality).
pub fn minimize(config: &ScenarioConfig, faults: &[Fault]) -> Shrunk {
    let mut current: Vec<Fault> = faults.to_vec();
    let mut runs = 0usize;
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Try the complement: everything except current[start..end].
            let mut candidate: Vec<Fault> = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            runs += 1;
            if fails(config, &candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    // Final 1-minimality sweep: drop single faults until none can go.
    let mut i = 0;
    while current.len() > 1 && i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        runs += 1;
        if fails(config, &candidate) {
            current = candidate;
            i = 0;
        } else {
            i += 1;
        }
    }
    let violations = invariants::check(&scenario::run(config, &current));
    Shrunk {
        faults: current,
        violations,
        runs,
    }
}

/// Renders a minimal failing schedule as a copy-pasteable `#[test]`.
pub fn render_test(config: &ScenarioConfig, shrunk: &Shrunk) -> String {
    let mut out = String::new();
    out.push_str("// Minimal reproducer found by `mmcs-chaos fuzz`; paste into a test\n");
    out.push_str("// file with `use mmcs_chaos::{invariants, scenario::ScenarioConfig,\n");
    out.push_str("// schedule::{Fault, FaultKind, Target}};`\n");
    out.push_str(&format!("#[test]\nfn chaos_seed_{}_minimal() {{\n", config.seed));
    out.push_str(&format!(
        "    let config = ScenarioConfig::for_seed({});\n",
        config.seed
    ));
    if config.disable_retransmit {
        out.push_str("    let config = ScenarioConfig { disable_retransmit: true, ..config };\n");
    }
    out.push_str("    let faults = vec![\n");
    for fault in &shrunk.faults {
        out.push_str(&format!("        {},\n", fault.to_literal()));
    }
    out.push_str("    ];\n");
    out.push_str("    let report = mmcs_chaos::scenario::run(&config, &faults);\n");
    out.push_str("    let violations = invariants::check(&report);\n");
    out.push_str("    assert!(violations.is_empty(), \"{violations:?}\");\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultKind, Target};

    #[test]
    fn render_mentions_seed_and_faults() {
        let config = ScenarioConfig::for_seed(77);
        let shrunk = Shrunk {
            faults: vec![Fault {
                kind: FaultKind::Partition,
                target: Target::Edge(1),
                start_ms: 2000,
                end_ms: 3000,
            }],
            violations: Vec::new(),
            runs: 0,
        };
        let text = render_test(&config, &shrunk);
        assert!(text.contains("chaos_seed_77_minimal"));
        assert!(text.contains("FaultKind::Partition"));
        assert!(text.contains("assert!(violations.is_empty()"));
    }

    #[test]
    fn minimize_finds_the_single_guilty_fault() {
        // With retransmission disabled, only the lossy fault can strand
        // frames; the partitions on other edges are red herrings that
        // ddmin must discard. Use a short horizon to keep this fast.
        let config = ScenarioConfig {
            horizon_ms: 4000,
            settle_ms: 4000,
            events_per_pair: 30,
            disable_retransmit: true,
            ..ScenarioConfig::for_seed(5)
        };
        let guilty = Fault {
            kind: FaultKind::Loss(0.4),
            target: Target::Edge(1),
            start_ms: 1000,
            end_ms: 3000,
        };
        let herrings = [
            Fault {
                kind: FaultKind::ClientChurn,
                target: Target::Client(0),
                start_ms: 1200,
                end_ms: 1600,
            },
            Fault {
                kind: FaultKind::ClientChurn,
                target: Target::Client(1),
                start_ms: 2000,
                end_ms: 2400,
            },
        ];
        let schedule = vec![herrings[0], guilty, herrings[1]];
        assert!(fails(&config, &schedule), "seeded bug must fail pre-shrink");
        let shrunk = minimize(&config, &schedule);
        assert!(!shrunk.violations.is_empty());
        assert!(shrunk.faults.contains(&guilty));
        assert!(
            shrunk.faults.len() < schedule.len(),
            "shrink must discard red herrings: {:?}",
            shrunk.faults
        );
    }
}
