//! Deterministic chaos harness for the broker network.
//!
//! FoundationDB-style simulation testing: a seeded [`schedule`] of faults
//! (partitions, loss, jitter/duplication, broker crash+restart, heartbeat
//! suppression, client churn) drives a multi-broker, multi-client
//! [`scenario`] inside the deterministic simulator, and a library of
//! [`invariants`] checks the outcome — exactly-once reliable delivery,
//! route-table convergence against a naive re-walk oracle, one
//! `LinkDown` per death, XGSP membership consistency, and post-heal
//! quiescence. On a violation, [`shrink`] bisects the fault schedule to
//! a minimal reproducer and renders it as a copy-pasteable `#[test]`.
//!
//! Everything — topology, traffic, faults, network randomness — derives
//! from one `u64` seed, so `mmcs-chaos replay <seed>` reproduces a run
//! bit-identically (same counters, same delivery trace, same
//! fingerprint).
//!
//! The [`sharded`] variant targets the real multi-worker
//! `ShardedBroker` runtime instead of the simulator: seeded
//! attach/detach/subscribe/publish/stall schedules run against live
//! shard threads and are checked against the single-loop oracle
//! (`mmcs-chaos sharded --seeds N`).
//!
//! The [`cluster`] variant targets the live federation runtime
//! (`Cluster`): seeded node-crash/zone-partition/gossip-loss schedules
//! interleave with subscription churn, client zone moves and publish
//! bursts, then the healed cluster must re-converge and deliver a probe
//! batch exactly as the single-loop oracle predicts
//! (`mmcs-chaos cluster --seeds N`).

pub mod cluster;
pub mod invariants;
pub mod scenario;
pub mod schedule;
pub mod sharded;
pub mod shrink;

pub use invariants::{check, Violation};
pub use scenario::{run, RunReport, ScenarioConfig};
pub use schedule::{generate, Fault, FaultKind, Target};
