//! Invariant checkers over a [`RunReport`].
//!
//! Each checker examines the *final* state of a run — after every fault
//! interval has been healed and the settle window has elapsed — so the
//! invariants are eventual properties: the network is allowed arbitrary
//! disorder while faults are live, but must converge afterwards.

use crate::scenario::RunReport;
use mmcs_broker::simdrv::PeerLinkEvent;

/// One invariant violation, carrying enough context to diagnose the run
/// without re-executing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A reliable pair's receiver surfaced the wrong event stream
    /// (loss, duplication or reordering leaked past `ReliableReceiver`).
    ReliableStream {
        /// Index into [`crate::scenario::PAIRS`].
        pair: usize,
        /// What went wrong, human-readable.
        detail: String,
    },
    /// A sender still had unacked or untransmitted events at the end of
    /// the settle window.
    NotQuiescent {
        /// Index into [`crate::scenario::PAIRS`].
        pair: usize,
        /// Frames awaiting an ack.
        in_flight: usize,
        /// Accepted events never yet transmitted.
        backlogged: usize,
    },
    /// A broker's route plan diverged from the naive re-walk oracle
    /// after healing.
    RouteDivergence {
        /// Broker chain index.
        broker: usize,
        /// The topic whose plan diverged.
        topic: String,
        /// What diverged, human-readable.
        detail: String,
    },
    /// A broker did not re-establish all configured peer links after
    /// healing.
    LinksNotRestored {
        /// Broker chain index.
        broker: usize,
        /// Raw peer ids currently linked.
        linked: Vec<u64>,
        /// Raw peer ids that should be linked.
        configured: Vec<u64>,
    },
    /// The failure detector reported the same peer death twice without
    /// an intervening rejoin, or a rejoin with no prior suspicion.
    DetectorDoubleReport {
        /// Broker chain index whose history is malformed.
        broker: usize,
        /// What the interleaving violated, human-readable.
        detail: String,
    },
    /// The live XGSP roster diverged from a fresh model replaying the
    /// delivered command trace, or the live applier rejected commands.
    XgspInconsistent {
        /// What diverged, human-readable.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ReliableStream { pair, detail } => {
                write!(f, "reliable stream broken on pair {pair}: {detail}")
            }
            Violation::NotQuiescent {
                pair,
                in_flight,
                backlogged,
            } => write!(
                f,
                "pair {pair} not quiescent after settle: {in_flight} in flight, {backlogged} backlogged"
            ),
            Violation::RouteDivergence {
                broker,
                topic,
                detail,
            } => write!(
                f,
                "route plan diverged from oracle at broker {broker} for {topic}: {detail}"
            ),
            Violation::LinksNotRestored {
                broker,
                linked,
                configured,
            } => write!(
                f,
                "broker {broker} links not restored after heal: linked {linked:?}, configured {configured:?}"
            ),
            Violation::DetectorDoubleReport { broker, detail } => {
                write!(f, "failure detector misreported at broker {broker}: {detail}")
            }
            Violation::XgspInconsistent { detail } => {
                write!(f, "XGSP membership inconsistent: {detail}")
            }
        }
    }
}

/// Runs every checker and returns all violations (empty = run passed).
pub fn check(report: &RunReport) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_reliable(report, &mut violations);
    check_quiescence(report, &mut violations);
    check_routes(report, &mut violations);
    check_detector(report, &mut violations);
    check_xgsp(report, &mut violations);
    violations
}

/// (a) Exactly-once, in-order delivery past `ReliableReceiver`: the
/// delivered payload indices must be exactly `0..offered`, in order.
fn check_reliable(report: &RunReport, out: &mut Vec<Violation>) {
    for (pair, p) in report.pairs.iter().enumerate() {
        let expected: Vec<u64> = (0..p.offered).collect();
        if p.delivered == expected {
            continue;
        }
        let detail = if p.delivered.len() < expected.len() {
            let missing: Vec<u64> = expected
                .iter()
                .filter(|e| !p.delivered.contains(e))
                .copied()
                .take(8)
                .collect();
            format!(
                "lost events: delivered {} of {} offered, first missing {missing:?}",
                p.delivered.len(),
                p.offered
            )
        } else {
            let mut seen = std::collections::BTreeSet::new();
            let dup = p.delivered.iter().find(|d| !seen.insert(**d));
            match dup {
                Some(d) => format!("duplicate event {d} surfaced past ReliableReceiver"),
                None => format!(
                    "out-of-order delivery: got {:?}…",
                    &p.delivered[..p.delivered.len().min(16)]
                ),
            }
        };
        out.push(Violation::ReliableStream { pair, detail });
    }
}

/// (e) Quiescence: every sender drained its window and backlog within
/// the post-heal settle window.
fn check_quiescence(report: &RunReport, out: &mut Vec<Violation>) {
    for (pair, p) in report.pairs.iter().enumerate() {
        if !p.sender_idle {
            out.push(Violation::NotQuiescent {
                pair,
                in_flight: p.in_flight,
                backlogged: p.backlogged,
            });
        }
    }
}

/// (b) Route convergence: after healing, every broker's plan for every
/// scenario topic must match the naive re-walk oracle, and every
/// configured peer link must be back up.
fn check_routes(report: &RunReport, out: &mut Vec<Violation>) {
    for (broker, b) in report.brokers.iter().enumerate() {
        if b.linked != b.configured {
            out.push(Violation::LinksNotRestored {
                broker,
                linked: b.linked.clone(),
                configured: b.configured.clone(),
            });
        }
    }
    for plan in &report.plans {
        let mut detail = String::new();
        if plan.actual_local != plan.expected_local {
            detail.push_str(&format!(
                "local {:?} != expected {:?}",
                plan.actual_local, plan.expected_local
            ));
        }
        if plan.actual_remote != plan.expected_remote {
            if !detail.is_empty() {
                detail.push_str("; ");
            }
            detail.push_str(&format!(
                "remote {:?} != expected {:?}",
                plan.actual_remote, plan.expected_remote
            ));
        }
        if !detail.is_empty() {
            out.push(Violation::RouteDivergence {
                broker: plan.broker,
                topic: plan.topic.clone(),
                detail,
            });
        }
    }
}

/// (c) Exactly one suspicion per death: a broker's per-peer history
/// must strictly alternate Suspected / Rejoined, starting with
/// Suspected.
fn check_detector(report: &RunReport, out: &mut Vec<Violation>) {
    for (broker, b) in report.brokers.iter().enumerate() {
        let mut suspected: std::collections::BTreeMap<u64, bool> =
            std::collections::BTreeMap::new();
        for (peer, event) in &b.history {
            let flag = suspected.entry(peer.value()).or_insert(false);
            match event {
                PeerLinkEvent::Suspected => {
                    if *flag {
                        out.push(Violation::DetectorDoubleReport {
                            broker,
                            detail: format!(
                                "peer {} suspected twice without an intervening rejoin",
                                peer.value()
                            ),
                        });
                    }
                    *flag = true;
                }
                PeerLinkEvent::Rejoined => {
                    if !*flag {
                        out.push(Violation::DetectorDoubleReport {
                            broker,
                            detail: format!(
                                "peer {} rejoined with no prior suspicion",
                                peer.value()
                            ),
                        });
                    }
                    *flag = false;
                }
            }
        }
    }
}

/// (d) XGSP membership: the live roster reached by applying delivered
/// commands must equal the roster a fresh model reaches replaying the
/// same delivered trace, and no command may have been rejected.
fn check_xgsp(report: &RunReport, out: &mut Vec<Violation>) {
    if report.xgsp_apply_errors > 0 {
        out.push(Violation::XgspInconsistent {
            detail: format!(
                "{} commands rejected by the live session",
                report.xgsp_apply_errors
            ),
        });
    }
    if report.xgsp_digest != report.xgsp_replay_digest {
        out.push(Violation::XgspInconsistent {
            detail: format!(
                "live digest {:#x} != replay digest {:#x}",
                report.xgsp_digest, report.xgsp_replay_digest
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BrokerReport, PairReport, PlanCheck};
    use mmcs_util::id::BrokerId;

    fn clean_report() -> RunReport {
        RunReport {
            seed: 1,
            fingerprint: 0,
            counters: Vec::new(),
            pairs: vec![PairReport {
                offered: 3,
                delivered: vec![0, 1, 2],
                sender_idle: true,
                in_flight: 0,
                backlogged: 0,
                retransmissions: 0,
                duplicates: 0,
            }],
            brokers: vec![BrokerReport {
                configured: vec![1],
                linked: vec![1],
                history: Vec::new(),
            }],
            plans: Vec::new(),
            xgsp_digest: 7,
            xgsp_replay_digest: 7,
            xgsp_apply_errors: 0,
            metrics_json: String::new(),
        }
    }

    #[test]
    fn clean_report_passes() {
        assert!(check(&clean_report()).is_empty());
    }

    #[test]
    fn lost_event_is_flagged() {
        let mut r = clean_report();
        r.pairs[0].delivered = vec![0, 2];
        let v = check(&r);
        assert!(matches!(v[0], Violation::ReliableStream { pair: 0, .. }));
        assert!(v[0].to_string().contains("lost events"));
    }

    #[test]
    fn duplicate_event_is_flagged() {
        let mut r = clean_report();
        r.pairs[0].delivered = vec![0, 1, 1, 2];
        let v = check(&r);
        assert!(v[0].to_string().contains("duplicate event 1"));
    }

    #[test]
    fn reorder_is_flagged() {
        let mut r = clean_report();
        r.pairs[0].delivered = vec![0, 2, 1];
        let v = check(&r);
        assert!(v[0].to_string().contains("out-of-order"));
    }

    #[test]
    fn non_idle_sender_is_flagged() {
        let mut r = clean_report();
        r.pairs[0].sender_idle = false;
        r.pairs[0].in_flight = 4;
        let v = check(&r);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::NotQuiescent { pair: 0, in_flight: 4, .. })));
    }

    #[test]
    fn unrestored_link_is_flagged() {
        let mut r = clean_report();
        r.brokers[0].linked = Vec::new();
        let v = check(&r);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::LinksNotRestored { broker: 0, .. })));
    }

    #[test]
    fn plan_divergence_is_flagged() {
        let mut r = clean_report();
        r.plans.push(PlanCheck {
            broker: 2,
            topic: "chaos/rel/0".into(),
            actual_local: vec![],
            expected_local: vec![301],
            actual_remote: vec![1],
            expected_remote: vec![1, 3],
        });
        let v = check(&r);
        let msg = v
            .iter()
            .find(|v| matches!(v, Violation::RouteDivergence { broker: 2, .. }))
            .expect("divergence reported")
            .to_string();
        assert!(msg.contains("local"));
        assert!(msg.contains("remote"));
    }

    #[test]
    fn detector_interleaving_is_enforced() {
        let mut r = clean_report();
        let p = BrokerId::from_raw(1);
        // Suspected twice with no rejoin between.
        r.brokers[0].history = vec![
            (p, PeerLinkEvent::Suspected),
            (p, PeerLinkEvent::Suspected),
        ];
        assert!(check(&r)
            .iter()
            .any(|v| v.to_string().contains("suspected twice")));
        // Rejoin with no prior suspicion.
        r.brokers[0].history = vec![(p, PeerLinkEvent::Rejoined)];
        assert!(check(&r)
            .iter()
            .any(|v| v.to_string().contains("no prior suspicion")));
        // Proper alternation passes.
        r.brokers[0].history = vec![
            (p, PeerLinkEvent::Suspected),
            (p, PeerLinkEvent::Rejoined),
            (p, PeerLinkEvent::Suspected),
            (p, PeerLinkEvent::Rejoined),
        ];
        assert!(check(&r).is_empty());
    }

    #[test]
    fn xgsp_divergence_is_flagged() {
        let mut r = clean_report();
        r.xgsp_replay_digest = 8;
        assert!(check(&r)
            .iter()
            .any(|v| matches!(v, Violation::XgspInconsistent { .. })));
        let mut r = clean_report();
        r.xgsp_apply_errors = 2;
        assert!(check(&r)
            .iter()
            .any(|v| v.to_string().contains("rejected")));
    }
}
