//! Seeded fault schedules.
//!
//! A schedule is a list of [`Fault`]s, each an *interval*: the fault
//! takes effect at `start_ms` and is healed at `end_ms`. Modelling
//! faults as paired intervals (rather than independent inject/heal
//! operations) keeps every subset of a schedule well-formed, which is
//! what lets the [`crate::shrink`] pass delete faults freely without
//! ever producing a crash-without-restart orphan.

use mmcs_util::rng::DetRng;

/// What a fault does while its interval is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Hard partition: every packet on the link is dropped.
    Partition,
    /// Independent per-packet loss with the given probability.
    Loss(f64),
    /// Jitter (reordering) plus duplication on the link.
    Flaky {
        /// Max uniform extra delay per packet, in milliseconds.
        jitter_ms: u64,
        /// Probability a surviving packet is delivered twice.
        duplicate: f64,
    },
    /// The broker process crashes at `start_ms` and restarts (losing all
    /// volatile state) at `end_ms`.
    BrokerCrash,
    /// The broker stops emitting heartbeats (a hang): peers suspect and
    /// disconnect it even though it still routes.
    HeartbeatMute,
    /// A churn client process crashes at `start_ms` and restarts at
    /// `end_ms`, re-attaching from scratch.
    ClientChurn,
}

/// The resource a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Edge `i` of the broker chain (between broker `i` and `i + 1`).
    Edge(usize),
    /// Broker index in the chain.
    Broker(usize),
    /// Churn-client index.
    Client(usize),
}

/// One scheduled fault, active on `[start_ms, end_ms)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// To which resource.
    pub target: Target,
    /// Virtual time the fault is injected, in ms.
    pub start_ms: u64,
    /// Virtual time the fault is healed, in ms.
    pub end_ms: u64,
}

impl Fault {
    /// Renders the fault as a Rust struct literal (for the reproducer
    /// `#[test]` the shrinker prints).
    pub fn to_literal(&self) -> String {
        let kind = match self.kind {
            FaultKind::Partition => "FaultKind::Partition".to_owned(),
            FaultKind::Loss(p) => format!("FaultKind::Loss({p:?})"),
            FaultKind::Flaky {
                jitter_ms,
                duplicate,
            } => format!("FaultKind::Flaky {{ jitter_ms: {jitter_ms}, duplicate: {duplicate:?} }}"),
            FaultKind::BrokerCrash => "FaultKind::BrokerCrash".to_owned(),
            FaultKind::HeartbeatMute => "FaultKind::HeartbeatMute".to_owned(),
            FaultKind::ClientChurn => "FaultKind::ClientChurn".to_owned(),
        };
        let target = match self.target {
            Target::Edge(i) => format!("Target::Edge({i})"),
            Target::Broker(i) => format!("Target::Broker({i})"),
            Target::Client(i) => format!("Target::Client({i})"),
        };
        format!(
            "Fault {{ kind: {kind}, target: {target}, start_ms: {}, end_ms: {} }}",
            self.start_ms, self.end_ms
        )
    }
}

/// Generates the seeded fault schedule for one run.
///
/// Per resource (edge, broker, churn client) the generator emits zero or
/// more *non-overlapping* intervals inside `[1000, horizon_ms)`, so
/// healing an interval never stomps on a later one for the same
/// resource. Different resources may fault concurrently — that overlap
/// is where the interesting bugs live.
pub fn generate(seed: u64, horizon_ms: u64, edges: usize, brokers: usize, clients: usize) -> Vec<Fault> {
    let mut rng = DetRng::new(seed ^ 0xC4A0_5CAB_1E5C_4ED5);
    let mut out = Vec::new();

    for e in 0..edges {
        for (start, end) in intervals(&mut rng, horizon_ms, 2) {
            let kind = match rng.range_u64(0, 3) {
                0 => FaultKind::Partition,
                1 => FaultKind::Loss(rng.range_f64(0.1, 0.5)),
                _ => FaultKind::Flaky {
                    jitter_ms: rng.range_u64(5, 40),
                    duplicate: rng.range_f64(0.05, 0.3),
                },
            };
            out.push(Fault {
                kind,
                target: Target::Edge(e),
                start_ms: start,
                end_ms: end,
            });
        }
    }
    for b in 0..brokers {
        // At most one process-level fault per broker per run keeps the
        // schedule small and every interval independent.
        if rng.chance(0.45) {
            if let Some((start, end)) = intervals(&mut rng, horizon_ms, 1).first().copied() {
                let kind = if rng.chance(0.5) {
                    FaultKind::BrokerCrash
                } else {
                    FaultKind::HeartbeatMute
                };
                out.push(Fault {
                    kind,
                    target: Target::Broker(b),
                    start_ms: start,
                    end_ms: end,
                });
            }
        }
    }
    for c in 0..clients {
        for (start, end) in intervals(&mut rng, horizon_ms, 2) {
            out.push(Fault {
                kind: FaultKind::ClientChurn,
                target: Target::Client(c),
                start_ms: start,
                end_ms: end,
            });
        }
    }
    out.sort_by_key(|f| (f.start_ms, f.end_ms));
    out
}

/// Up to `max` non-overlapping `(start, end)` intervals in
/// `[1000, horizon)`, each 300–2500 ms long, separated by ≥ 500 ms.
fn intervals(rng: &mut DetRng, horizon_ms: u64, max: usize) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut cursor = 1000u64;
    for _ in 0..max {
        if !rng.chance(0.55) {
            continue;
        }
        let start = cursor + rng.range_u64(0, 3000);
        if start + 300 >= horizon_ms {
            break;
        }
        let end = (start + rng.range_u64(300, 2500)).min(horizon_ms);
        out.push((start, end));
        cursor = end + 500;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 12_000, 3, 4, 2);
        let b = generate(42, 12_000, 3, 4, 2);
        assert_eq!(a, b);
        assert_ne!(a, generate(43, 12_000, 3, 4, 2));
    }

    #[test]
    fn intervals_are_well_formed_and_disjoint_per_resource() {
        for seed in 0..200 {
            let faults = generate(seed, 12_000, 3, 4, 2);
            for f in &faults {
                assert!(f.start_ms < f.end_ms, "{f:?}");
                assert!(f.start_ms >= 1000);
                assert!(f.end_ms <= 12_000);
            }
            // Per-resource intervals never overlap.
            for (i, a) in faults.iter().enumerate() {
                for b in faults.iter().skip(i + 1) {
                    if a.target == b.target {
                        assert!(
                            a.end_ms <= b.start_ms || b.end_ms <= a.start_ms,
                            "overlap on {:?}: {a:?} vs {b:?}",
                            a.target
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn some_seeds_produce_each_kind() {
        let mut kinds = [false; 6];
        for seed in 0..100 {
            for f in generate(seed, 12_000, 3, 4, 2) {
                let idx = match f.kind {
                    FaultKind::Partition => 0,
                    FaultKind::Loss(_) => 1,
                    FaultKind::Flaky { .. } => 2,
                    FaultKind::BrokerCrash => 3,
                    FaultKind::HeartbeatMute => 4,
                    FaultKind::ClientChurn => 5,
                };
                kinds[idx] = true;
            }
        }
        assert!(kinds.iter().all(|k| *k), "kinds covered: {kinds:?}");
    }

    #[test]
    fn fault_literal_round_trips_visually() {
        let f = Fault {
            kind: FaultKind::Flaky {
                jitter_ms: 20,
                duplicate: 0.25,
            },
            target: Target::Edge(1),
            start_ms: 2000,
            end_ms: 3500,
        };
        let lit = f.to_literal();
        assert!(lit.contains("FaultKind::Flaky"));
        assert!(lit.contains("Target::Edge(1)"));
        assert!(lit.contains("start_ms: 2000"));
    }
}
