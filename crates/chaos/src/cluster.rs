//! Seeded chaos for the federation runtime.
//!
//! Drives a **real** [`Cluster`] — live node workers, gossip interest
//! exchange, multi-hop frame routing — with a deterministic,
//! seed-derived schedule of subscription flapping, client zone moves,
//! publish bursts, and federation faults: node crashes, zone
//! partitions (severed links), and gossip loss (interest frames
//! dropped while events still flow). Every fault toggle is preceded by
//! a cluster quiesce, so even though node workers are real threads the
//! delivery outcome of a seed is deterministic and its FNV fingerprint
//! is bit-identical across runs.
//!
//! The schedule ends with a **heal**: every partition lifted, every
//! crashed node restarted, gossip run to convergence. Then a probe
//! batch publishes from every client, and the probe delivery multiset
//! is compared against the single-loop [`BrokerNode`] oracle fed the
//! final subscription state. Invariants checked per seed:
//!
//! 1. post-heal gossip convergence (every node's view of every other
//!    node matches that node's local truth),
//! 2. probe deliveries exactly equal the oracle multiset — exactly-once
//!    across the inter-node hop, nothing lost after heal,
//! 3. no duplicate delivery anywhere in the run (chaos window
//!    included),
//! 4. per-(receiver, source, topic) sequence monotonicity,
//! 5. hop counts bounded: zero hop-limit drops and no delivery
//!    travelling more links than the longest shortest path.
//!
//! `--inject-bug` restarts crashed nodes with their local interest
//! truth wiped ([`lose_interest`]): generations go backwards, peers
//! never re-accept the node's adverts, and invariants 1–2 catch it —
//! the ddmin shrinker then reduces the schedule to the guilty crash.
//!
//! [`lose_interest`]: Cluster::restart

use std::collections::{BTreeSet, HashMap};

use bytes::Bytes;
use mmcs_broker::cluster::{Cluster, ClusterClient, LatencyMap};
use mmcs_broker::event::{Event, EventClass};
use mmcs_broker::metrics::ClusterMetrics;
use mmcs_broker::node::{Action, BrokerNode, Input, Origin};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rng::DetRng;

/// One delivery in sortable form: (receiver, topic, source, seq).
pub type ClusterDelivery = (u64, String, u64, u64);

/// Parameters of one cluster chaos run, all derived from the seed.
#[derive(Debug, Clone)]
pub struct ClusterChaosConfig {
    /// The seed everything derives from.
    pub seed: u64,
    /// Federation size (2–4 by default).
    pub nodes: usize,
    /// Chain topology (multi-hop relays) instead of a full mesh.
    pub chain: bool,
    /// Operations in the schedule.
    pub ops: usize,
    /// Clients attached before the schedule starts.
    pub clients: usize,
    /// Probe publishes per client after the heal.
    pub probes: usize,
    /// Restart crashed nodes with their local interest truth wiped —
    /// the injected resync bug the invariants must catch.
    pub lose_interest_on_restart: bool,
}

impl ClusterChaosConfig {
    /// The canonical configuration for a seed: node count cycles 2–4,
    /// odd seeds run the chain topology (real multi-hop relays), even
    /// seeds the full mesh.
    pub fn for_seed(seed: u64) -> Self {
        Self {
            seed,
            nodes: 2 + (seed % 3) as usize,
            chain: seed % 2 == 1,
            ops: 80,
            clients: 4,
            probes: 2,
            lose_interest_on_restart: false,
        }
    }

    /// The latency map this configuration builds.
    pub fn latency(&self) -> LatencyMap {
        if self.chain {
            LatencyMap::chain(self.nodes, 5)
        } else {
            LatencyMap::full_mesh(self.nodes, 5)
        }
    }
}

/// One step of the deterministic schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterOp {
    /// Client `index` subscribes to the filter pattern.
    Subscribe(usize, String),
    /// Client `index` drops the filter pattern.
    Unsubscribe(usize, String),
    /// Client `index` publishes to the topic path.
    Publish(usize, String),
    /// Client `index` rehomes to the zone.
    Move(usize, usize),
    /// Crash the node's gateway (no-op if already down).
    Crash(usize),
    /// Restart a crashed node (no-op if up).
    Restore(usize),
    /// Sever the symmetric link (no-op when `a == b`).
    Partition(usize, usize),
    /// Restore the symmetric link.
    HealLink(usize, usize),
    /// Start dropping gossip frames on the symmetric link.
    GossipLoss(usize, usize),
    /// Stop dropping gossip frames on the symmetric link.
    GossipHeal(usize, usize),
    /// Run one gossip round across the cluster.
    GossipRound,
}

fn random_topic(rng: &mut DetRng) -> String {
    let depth = rng.range_usize(1, 4);
    let mut segments = Vec::with_capacity(depth);
    for _ in 0..depth {
        segments.push(format!("s{}", rng.range_u64(0, 6)));
    }
    segments.join("/")
}

fn random_filter(rng: &mut DetRng) -> String {
    let depth = rng.range_usize(1, 4);
    let mut segments = Vec::with_capacity(depth);
    for _ in 0..depth {
        if rng.chance(0.2) {
            segments.push("*".to_owned());
        } else {
            segments.push(format!("s{}", rng.range_u64(0, 6)));
        }
    }
    if rng.chance(0.3) {
        segments.push("#".to_owned());
    }
    segments.join("/")
}

/// Generates the operation schedule for a configuration. The real run,
/// the oracle, and the shrinker all consume exactly this list.
pub fn generate_cluster_ops(config: &ClusterChaosConfig) -> Vec<ClusterOp> {
    let mut rng = DetRng::new(config.seed ^ 0xC1D5_7E80_FEDE_1A7E);
    let n = config.nodes;
    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        let roll = rng.range_u64(0, 100);
        let client = rng.range_usize(0, config.clients);
        let a = rng.range_usize(0, n);
        let b = rng.range_usize(0, n);
        let op = if roll < 18 {
            ClusterOp::Subscribe(client, random_filter(&mut rng))
        } else if roll < 28 {
            ClusterOp::Unsubscribe(client, random_filter(&mut rng))
        } else if roll < 34 {
            ClusterOp::Move(client, rng.range_usize(0, 2 * n))
        } else if roll < 40 {
            ClusterOp::Crash(a)
        } else if roll < 47 {
            ClusterOp::Restore(a)
        } else if roll < 52 {
            ClusterOp::Partition(a, b)
        } else if roll < 58 {
            ClusterOp::HealLink(a, b)
        } else if roll < 63 {
            ClusterOp::GossipLoss(a, b)
        } else if roll < 68 {
            ClusterOp::GossipHeal(a, b)
        } else if roll < 78 {
            ClusterOp::GossipRound
        } else {
            ClusterOp::Publish(client, random_topic(&mut rng))
        };
        ops.push(op);
    }
    ops
}

/// Deterministic probe topics: `probes` per client, drawn from the
/// same topic distribution the chaos publishes use.
fn probe_topics(config: &ClusterChaosConfig) -> Vec<Vec<String>> {
    let mut rng = DetRng::new(config.seed ^ 0x9E0B_E5C0_11AB_0DE5);
    (0..config.clients)
        .map(|_| (0..config.probes).map(|_| random_topic(&mut rng)).collect())
        .collect()
}

/// Outcome of one cluster chaos run.
#[derive(Debug)]
pub struct ClusterRunReport {
    /// The configuration that produced this run.
    pub config: ClusterChaosConfig,
    /// Sorted delivery multiset of the whole run (chaos + probes).
    pub deliveries: Vec<ClusterDelivery>,
    /// Sorted delivery multiset of the post-heal probe batch alone.
    pub probe_deliveries: Vec<ClusterDelivery>,
    /// Whether the healed cluster's gossip views converged.
    pub converged: bool,
    /// Per-(receiver, source, topic) order violations (must be zero).
    pub order_violations: u64,
    /// Duplicate deliveries anywhere in the run (must be zero).
    pub duplicates: u64,
    /// Σ hop-limit drops across nodes (must be zero).
    pub hop_limit_drops: u64,
    /// Highest link count any delivered frame traversed.
    pub max_hop: u64,
    /// Σ frames decoded with errors across nodes.
    pub decode_errors: u64,
    /// FNV-1a fingerprint over the sorted run deliveries.
    pub fingerprint: u64,
}

fn fingerprint(deliveries: &[ClusterDelivery]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (receiver, topic, source, seq) in deliveries {
        mix(&receiver.to_le_bytes());
        mix(topic.as_bytes());
        mix(&source.to_le_bytes());
        mix(&seq.to_le_bytes());
    }
    hash
}

fn drain_all(
    clients: &[ClusterClient],
    last_seq: &mut HashMap<(u64, u64, String), u64>,
    order_violations: &mut u64,
) -> Vec<ClusterDelivery> {
    let mut deliveries = Vec::new();
    for client in clients {
        let mut batch = Vec::new();
        client.drain_into(&mut batch);
        for event in batch {
            let key = (
                client.id().value(),
                event.source.value(),
                event.topic.to_string(),
            );
            if let Some(prev) = last_seq.get(&key) {
                if event.seq <= *prev {
                    *order_violations += 1;
                }
            }
            last_seq.insert(key, event.seq);
            deliveries.push((
                client.id().value(),
                event.topic.to_string(),
                event.source.value(),
                event.seq,
            ));
        }
    }
    deliveries
}

/// Executes `ops` against a real [`Cluster`] and returns the report.
/// Fault toggles quiesce first, so the outcome is deterministic.
pub fn run_cluster(config: &ClusterChaosConfig, ops: &[ClusterOp]) -> ClusterRunReport {
    let n = config.nodes;
    let metrics = ClusterMetrics::detached(n);
    let cluster = Cluster::builder(config.latency())
        .metrics(std::sync::Arc::clone(&metrics))
        .spawn();
    let clients: Vec<ClusterClient> = (0..config.clients)
        .map(|i| cluster.attach(i % (2 * n)))
        .collect();
    let mut crashed: BTreeSet<usize> = BTreeSet::new();
    let mut partitioned: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut gossip_lost: BTreeSet<(usize, usize)> = BTreeSet::new();
    cluster.quiesce();

    for op in ops {
        match op {
            ClusterOp::Subscribe(index, pattern) => {
                if let Ok(filter) = TopicFilter::parse(pattern) {
                    clients[*index].subscribe(filter);
                    cluster.quiesce();
                }
            }
            ClusterOp::Unsubscribe(index, pattern) => {
                if let Ok(filter) = TopicFilter::parse(pattern) {
                    clients[*index].unsubscribe(&filter);
                    cluster.quiesce();
                }
            }
            ClusterOp::Publish(index, path) => {
                if let Ok(topic) = Topic::parse(path) {
                    clients[*index].publish(topic, Bytes::new());
                    // Settle before the next op: a subscribe racing an
                    // in-flight inter-node frame would make delivery
                    // of this event timing-dependent.
                    cluster.quiesce();
                }
            }
            ClusterOp::Move(index, zone) => {
                cluster.quiesce();
                clients[*index].move_to_zone(*zone);
                cluster.quiesce();
            }
            ClusterOp::Crash(node) => {
                if crashed.insert(*node) {
                    cluster.quiesce();
                    cluster.crash(*node as u16);
                }
            }
            ClusterOp::Restore(node) => {
                if crashed.remove(node) {
                    cluster.quiesce();
                    cluster.restart(*node as u16, config.lose_interest_on_restart);
                    cluster.quiesce();
                }
            }
            ClusterOp::Partition(a, b) => {
                if a != b && partitioned.insert((*a.min(b), *a.max(b))) {
                    cluster.quiesce();
                    cluster.set_link_down(*a as u16, *b as u16, true);
                }
            }
            ClusterOp::HealLink(a, b) => {
                if a != b && partitioned.remove(&(*a.min(b), *a.max(b))) {
                    cluster.quiesce();
                    cluster.set_link_down(*a as u16, *b as u16, false);
                }
            }
            ClusterOp::GossipLoss(a, b) => {
                if a != b && gossip_lost.insert((*a.min(b), *a.max(b))) {
                    cluster.quiesce();
                    cluster.set_gossip_loss(*a as u16, *b as u16, true);
                }
            }
            ClusterOp::GossipHeal(a, b) => {
                if a != b && gossip_lost.remove(&(*a.min(b), *a.max(b))) {
                    cluster.quiesce();
                    cluster.set_gossip_loss(*a as u16, *b as u16, false);
                }
            }
            ClusterOp::GossipRound => {
                // A single tick's reach is a worker-interleaving race:
                // whether a relay node applies one peer's entries
                // before answering another's digest decides if
                // knowledge moves one hop or two. The *fixpoint* of
                // repeated rounds is unique (apply is a newer-
                // generation-wins join), so run the round to the
                // fixpoint of the current fault graph — every run then
                // sees the same interest tables at the next publish.
                for _ in 0..(n + 2) {
                    cluster.gossip_round();
                }
            }
        }
    }

    // Heal everything: links up, gossip flowing, crashed nodes back.
    cluster.quiesce();
    for (a, b) in partitioned {
        cluster.set_link_down(a as u16, b as u16, false);
    }
    for (a, b) in gossip_lost {
        cluster.set_gossip_loss(a as u16, b as u16, false);
    }
    for node in crashed {
        cluster.restart(node as u16, config.lose_interest_on_restart);
    }
    let converged = cluster.converge(2 * n + 6);
    cluster.quiesce();

    let mut last_seq: HashMap<(u64, u64, String), u64> = HashMap::new();
    let mut order_violations = 0u64;
    let mut deliveries = drain_all(&clients, &mut last_seq, &mut order_violations);

    // Probe batch: every client publishes its deterministic probes
    // into the healed cluster.
    let probes = probe_topics(config);
    for (index, topics) in probes.iter().enumerate() {
        for path in topics {
            if let Ok(topic) = Topic::parse(path) {
                clients[index].publish(topic, Bytes::new());
            }
        }
    }
    cluster.quiesce();
    let mut probe_deliveries = drain_all(&clients, &mut last_seq, &mut order_violations);
    probe_deliveries.sort_unstable();
    deliveries.extend(probe_deliveries.iter().cloned());
    deliveries.sort_unstable();

    let mut duplicates = 0u64;
    for window in deliveries.windows(2) {
        if window[0] == window[1] {
            duplicates += 1;
        }
    }

    ClusterRunReport {
        config: config.clone(),
        fingerprint: fingerprint(&deliveries),
        converged,
        order_violations,
        duplicates,
        hop_limit_drops: metrics.total(|m| m.hop_limit_drops.get()),
        max_hop: metrics
            .nodes()
            .map(|m| m.hop_histogram.snapshot().max().unwrap_or(0))
            .max()
            .unwrap_or(0),
        decode_errors: metrics.total(|m| m.decode_errors.get()),
        deliveries,
        probe_deliveries,
    }
}

/// Replays the schedule's *final subscription state* through the
/// single-loop oracle and publishes the probe batch: the expected
/// probe delivery multiset of a healed, converged federation.
pub fn oracle_probes(config: &ClusterChaosConfig, ops: &[ClusterOp]) -> Vec<ClusterDelivery> {
    let mut filters: Vec<BTreeSet<String>> = vec![BTreeSet::new(); config.clients];
    let mut published: Vec<u64> = vec![0; config.clients];
    for op in ops {
        match op {
            ClusterOp::Subscribe(index, pattern) if TopicFilter::parse(pattern).is_ok() => {
                filters[*index].insert(pattern.clone());
            }
            ClusterOp::Unsubscribe(index, pattern) if TopicFilter::parse(pattern).is_ok() => {
                filters[*index].remove(pattern);
            }
            ClusterOp::Publish(index, path) if Topic::parse(path).is_ok() => {
                published[*index] += 1;
            }
            _ => {}
        }
    }

    let mut node = BrokerNode::new(BrokerId::from_raw(9999));
    let client_ids: Vec<ClientId> = (0..config.clients)
        .map(|i| ClientId::from_raw(1 + i as u64))
        .collect();
    for (index, id) in client_ids.iter().enumerate() {
        let _ = node.handle(Input::AttachClient {
            client: *id,
            profile: Default::default(),
        });
        for pattern in &filters[index] {
            if let Ok(filter) = TopicFilter::parse(pattern) {
                let _ = node.handle(Input::Subscribe {
                    client: *id,
                    filter,
                });
            }
        }
    }

    let mut deliveries = Vec::new();
    let probes = probe_topics(config);
    for (index, topics) in probes.iter().enumerate() {
        for (k, path) in topics.iter().enumerate() {
            let Ok(topic) = Topic::parse(path) else {
                continue;
            };
            let event = Event::new(
                topic,
                client_ids[index],
                published[index] + k as u64,
                EventClass::Data,
                Bytes::new(),
            )
            .into_shared();
            if let Ok(actions) = node.handle(Input::Publish {
                origin: Origin::Client(client_ids[index]),
                event,
            }) {
                for action in actions {
                    if let Action::Deliver { client, event, .. } = action {
                        deliveries.push((
                            client.value(),
                            event.topic.to_string(),
                            event.source.value(),
                            event.seq,
                        ));
                    }
                }
            }
        }
    }
    deliveries.sort_unstable();
    deliveries
}

/// Runs `ops` and checks every federation invariant; returns the
/// report and the violations (empty = clean).
pub fn check_cluster(
    config: &ClusterChaosConfig,
    ops: &[ClusterOp],
) -> (ClusterRunReport, Vec<String>) {
    let report = run_cluster(config, ops);
    let expected = oracle_probes(config, ops);
    let mut violations = Vec::new();
    if !report.converged {
        violations.push("gossip views did not re-converge after heal".to_owned());
    }
    if report.probe_deliveries != expected {
        violations.push(format!(
            "probe delivery multiset diverged from oracle: {} actual vs {} expected",
            report.probe_deliveries.len(),
            expected.len()
        ));
    }
    if report.duplicates > 0 {
        violations.push(format!(
            "{} duplicate delivery(ies) — exactly-once broken",
            report.duplicates
        ));
    }
    if report.order_violations > 0 {
        violations.push(format!(
            "{} per-topic sequence order violation(s)",
            report.order_violations
        ));
    }
    if report.hop_limit_drops > 0 {
        violations.push(format!(
            "{} hop-limit drop(s) — a frame looped",
            report.hop_limit_drops
        ));
    }
    let hop_bound = config.nodes.saturating_sub(1).max(1) as u64;
    if report.max_hop > hop_bound {
        violations.push(format!(
            "delivery traversed {} links, bound is {hop_bound}",
            report.max_hop
        ));
    }
    if report.decode_errors > 0 {
        violations.push(format!(
            "{} frame decode error(s) on clean links",
            report.decode_errors
        ));
    }
    (report, violations)
}

/// Outcome of shrinking a failing schedule.
#[derive(Debug)]
pub struct ClusterShrink {
    /// The minimal failing schedule.
    pub ops: Vec<ClusterOp>,
    /// Violations the minimal schedule still produces.
    pub violations: Vec<String>,
    /// Chaos runs the shrink spent.
    pub runs: usize,
}

/// ddmin over the op schedule: repeatedly removes chunks while the
/// failure persists, halving granularity until single ops are tried.
pub fn minimize_cluster(config: &ClusterChaosConfig, ops: &[ClusterOp]) -> ClusterShrink {
    let mut current: Vec<ClusterOp> = ops.to_vec();
    let mut violations = check_cluster(config, &current).1;
    let mut runs = 1usize;
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            let (_, v) = check_cluster(config, &candidate);
            runs += 1;
            if v.is_empty() {
                start = end;
            } else {
                current = candidate;
                violations = v;
                removed_any = true;
                // Same start index now points at the next chunk.
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }
    // Final pass: try dropping every single op once more.
    let mut index = 0;
    while index < current.len() && current.len() > 1 {
        let mut candidate = current.clone();
        candidate.remove(index);
        let (_, v) = check_cluster(config, &candidate);
        runs += 1;
        if v.is_empty() {
            index += 1;
        } else {
            current = candidate;
            violations = v;
        }
    }
    ClusterShrink {
        ops: current,
        violations,
        runs,
    }
}

/// Renders a minimal schedule as a copy-pasteable `#[test]`.
pub fn render_cluster_test(config: &ClusterChaosConfig, shrunk: &ClusterShrink) -> String {
    let mut out = String::new();
    out.push_str("#[test]\n");
    out.push_str(&format!(
        "fn cluster_chaos_seed_{}_minimal_reproducer() {{\n",
        config.seed
    ));
    out.push_str("    use mmcs_chaos::cluster::*;\n");
    out.push_str(&format!(
        "    let config = ClusterChaosConfig {{ seed: {}, nodes: {}, chain: {}, ops: {}, clients: {}, probes: {}, lose_interest_on_restart: {} }};\n",
        config.seed,
        config.nodes,
        config.chain,
        config.ops,
        config.clients,
        config.probes,
        config.lose_interest_on_restart
    ));
    out.push_str("    let ops = vec![\n");
    for op in &shrunk.ops {
        out.push_str(&format!("        ClusterOp::{op:?},\n"));
    }
    out.push_str("    ];\n");
    out.push_str("    let (_, violations) = check_cluster(&config, &ops);\n");
    out.push_str(&format!(
        "    assert!(violations.is_empty(), \"{{violations:?}}\"); // fails: {}\n",
        shrunk.violations.join("; ")
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_seeds_are_clean() {
        for seed in 0..4 {
            let config = ClusterChaosConfig::for_seed(seed);
            let ops = generate_cluster_ops(&config);
            let (report, violations) = check_cluster(&config, &ops);
            assert!(
                violations.is_empty(),
                "seed {seed} ({} nodes, chain={}): {violations:?}",
                report.config.nodes,
                report.config.chain
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let config = ClusterChaosConfig::for_seed(7);
        let ops = generate_cluster_ops(&config);
        let a = run_cluster(&config, &ops);
        let b = run_cluster(&config, &ops);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.deliveries, b.deliveries);
    }

    #[test]
    fn injected_interest_wipe_is_caught_and_shrinks_to_the_crash() {
        // Find a seed whose schedule crashes a node; with the resync
        // bug injected its restart loses local interest truth, which
        // the convergence invariant must catch and ddmin must reduce.
        let mut caught = false;
        for seed in 0..16 {
            let mut config = ClusterChaosConfig::for_seed(seed);
            config.lose_interest_on_restart = true;
            let ops = generate_cluster_ops(&config);
            let crashes = ops.iter().any(|op| matches!(op, ClusterOp::Crash(_)));
            if !crashes {
                continue;
            }
            let (_, violations) = check_cluster(&config, &ops);
            if violations.is_empty() {
                // A crash whose node held no interest can heal clean;
                // try the next seed.
                continue;
            }
            let shrunk = minimize_cluster(&config, &ops);
            assert!(!shrunk.violations.is_empty());
            assert!(
                shrunk.ops.len() < ops.len(),
                "shrink made no progress: {} ops",
                shrunk.ops.len()
            );
            assert!(
                shrunk
                    .ops
                    .iter()
                    .any(|op| matches!(op, ClusterOp::Crash(_))),
                "minimal schedule lost the crash: {:?}",
                shrunk.ops
            );
            let rendered = render_cluster_test(&config, &shrunk);
            assert!(rendered.contains("check_cluster"));
            caught = true;
            break;
        }
        assert!(caught, "no seed in 0..16 tripped the injected bug");
    }

    #[test]
    fn schedule_generation_is_stable() {
        let config = ClusterChaosConfig::for_seed(5);
        let a = generate_cluster_ops(&config);
        let b = generate_cluster_ops(&config);
        assert_eq!(a, b);
    }
}
