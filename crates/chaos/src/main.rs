//! `mmcs-chaos` — fuzz the broker network with seeded fault schedules,
//! or replay a single seed bit-identically.
//!
//! ```text
//! mmcs-chaos fuzz --seeds 100 [--base 0] [--inject-bug] [--artifact PATH] [--metrics-dir DIR]
//! mmcs-chaos replay 42 [--inject-bug]
//! ```
//!
//! ```text
//! mmcs-chaos sharded --seeds N [--base 0] [--shards K]
//! mmcs-chaos cluster --seeds N [--base 0] [--inject-bug] [--artifact PATH]
//! ```
//!
//! `fuzz` runs seeds `base..base + seeds`; on the first invariant
//! violation it shrinks the schedule to a minimal reproducer, prints it
//! as a copy-pasteable `#[test]`, optionally writes it to `--artifact`,
//! and exits nonzero. Every run also dumps its telemetry registry as
//! `seed-N.json` under `--metrics-dir` (default `target/chaos-metrics`);
//! see TESTING.md for how to read one. `replay` executes one seed twice
//! and verifies the two runs are bit-identical (same fingerprint, same
//! counters). `sharded` drives the real multi-worker `ShardedBroker`
//! runtime (live OS threads) with seeded churn/stall schedules and
//! checks each run against the single-loop oracle plus the per-shard
//! metric identities. `cluster` drives the live federation runtime
//! (node workers, gossip, multi-hop routing) with seeded
//! crash/partition/gossip-loss schedules, checks post-heal convergence
//! and oracle-exact probe delivery, verifies each run's fingerprint is
//! bit-identical across two executions, and ddmin-shrinks the first
//! failing schedule to a minimal reproducer.

use std::process::ExitCode;

use mmcs_chaos::scenario::{self, ScenarioConfig, CHURN_CLIENTS, BROKERS, EDGES};
use mmcs_chaos::{check, generate, shrink};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mmcs-chaos fuzz --seeds N [--base B] [--inject-bug] [--workers W] [--artifact PATH] [--metrics-dir DIR]\n  mmcs-chaos replay SEED [--inject-bug] [--workers W]\n  mmcs-chaos sharded --seeds N [--base B] [--shards K]\n  mmcs-chaos cluster --seeds N [--base B] [--inject-bug] [--artifact PATH]"
    );
    ExitCode::from(2)
}

fn config_for(seed: u64, inject_bug: bool) -> ScenarioConfig {
    ScenarioConfig {
        disable_retransmit: inject_bug,
        ..ScenarioConfig::for_seed(seed)
    }
}

fn schedule_for(config: &ScenarioConfig) -> Vec<mmcs_chaos::Fault> {
    generate(config.seed, config.horizon_ms, EDGES, BROKERS, CHURN_CLIENTS)
}

fn fuzz(
    seeds: u64,
    base: u64,
    inject_bug: bool,
    workers: usize,
    artifact: Option<&str>,
    metrics_dir: &str,
) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(metrics_dir) {
        eprintln!("cannot create metrics dir {metrics_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let mut clean = 0u64;
    for seed in base..base + seeds {
        let config = config_for(seed, inject_bug);
        let schedule = schedule_for(&config);
        let report = scenario::run(&config, &schedule);
        if workers > 1 {
            // Cross-engine check: the same seed on the parallel engine
            // must reproduce the sequential fingerprint exactly.
            let par = scenario::run(
                &ScenarioConfig {
                    workers,
                    ..config
                },
                &schedule,
            );
            if par.fingerprint != report.fingerprint || par.counters != report.counters {
                eprintln!(
                    "seed {seed}: NONDETERMINISM — parallel ({workers} workers) fingerprint {:#018x} vs sequential {:#018x}",
                    par.fingerprint, report.fingerprint
                );
                eprintln!("replay with: mmcs-chaos replay {seed} --workers {workers}");
                return ExitCode::FAILURE;
            }
        }
        let dump = format!("{metrics_dir}/seed-{seed}.json");
        if let Err(e) = std::fs::write(&dump, &report.metrics_json) {
            eprintln!("failed to write metrics dump {dump}: {e}");
        }
        let violations = check(&report);
        if violations.is_empty() {
            clean += 1;
            println!(
                "seed {seed}: ok ({} faults, fingerprint {:#018x})",
                schedule.len(),
                report.fingerprint
            );
            continue;
        }
        println!("seed {seed}: FAILED with {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        println!("shrinking {} faults…", schedule.len());
        let shrunk = shrink::minimize(&config, &schedule);
        println!(
            "minimal schedule: {} fault(s) after {} runs",
            shrunk.faults.len(),
            shrunk.runs
        );
        for v in &shrunk.violations {
            println!("  - {v}");
        }
        let reproducer = shrink::render_test(&config, &shrunk);
        println!("\n{reproducer}");
        if let Some(path) = artifact {
            match std::fs::write(path, &reproducer) {
                Ok(()) => println!("reproducer written to {path}"),
                Err(e) => eprintln!("failed to write artifact {path}: {e}"),
            }
        }
        println!("replay with: mmcs-chaos replay {seed}");
        return ExitCode::FAILURE;
    }
    if workers > 1 {
        println!(
            "all {clean} seed(s) clean and engine-identical at {workers} workers; metrics dumps in {metrics_dir}/"
        );
    } else {
        println!("all {clean} seed(s) clean; metrics dumps in {metrics_dir}/");
    }
    ExitCode::SUCCESS
}

fn replay(seed: u64, inject_bug: bool, workers: usize) -> ExitCode {
    let config = config_for(seed, inject_bug);
    let schedule = schedule_for(&config);
    let a = scenario::run(&config, &schedule);
    // Run B on the parallel engine when --workers is given; the
    // conservative synchronization protocol guarantees a bit-identical
    // fingerprint, so any divergence here is an engine bug.
    let b = scenario::run(
        &ScenarioConfig {
            workers,
            ..config
        },
        &schedule,
    );
    println!("seed {seed}: {} fault(s)", schedule.len());
    for fault in &schedule {
        println!("  {}", fault.to_literal());
    }
    let b_engine = if workers > 1 {
        format!("parallel, {workers} workers")
    } else {
        "sequential".to_owned()
    };
    println!("run A fingerprint: {:#018x} (sequential)", a.fingerprint);
    println!("run B fingerprint: {:#018x} ({b_engine})", b.fingerprint);
    if a.fingerprint != b.fingerprint || a.counters != b.counters {
        eprintln!("NONDETERMINISM: two in-process runs of seed {seed} diverged ({b_engine} vs sequential)");
        for (ca, cb) in a.counters.iter().zip(b.counters.iter()) {
            if ca != cb {
                eprintln!("  counter {:?} vs {:?}", ca, cb);
            }
        }
        return ExitCode::FAILURE;
    }
    println!("bit-identical across two runs");
    for (k, p) in a.pairs.iter().enumerate() {
        println!(
            "pair {k}: offered {}, delivered {}, retransmissions {}, dup-suppressed {}",
            p.offered,
            p.delivered.len(),
            p.retransmissions,
            p.duplicates
        );
    }
    let violations = check(&a);
    if violations.is_empty() {
        println!("invariants: all hold");
        ExitCode::SUCCESS
    } else {
        println!("invariants: {} violation(s)", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

fn sharded(seeds: u64, base: u64, shards: Option<usize>) -> ExitCode {
    let mut clean = 0u64;
    for seed in base..base + seeds {
        let mut config = mmcs_chaos::sharded::ShardedChaosConfig::for_seed(seed);
        if let Some(k) = shards {
            config.shards = k;
        }
        let (report, violations) = mmcs_chaos::sharded::check_sharded(&config);
        if violations.is_empty() {
            clean += 1;
            println!(
                "seed {seed}: ok ({} shards, capacity {}, {} deliveries, fingerprint {:#018x})",
                report.config.shards,
                report.config.capacity,
                report.deliveries.len(),
                report.fingerprint
            );
            continue;
        }
        println!("seed {seed}: FAILED with {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        println!(
            "reproduce with: mmcs-chaos sharded --seeds 1 --base {seed} --shards {}",
            report.config.shards
        );
        return ExitCode::FAILURE;
    }
    println!("all {clean} sharded seed(s) clean");
    ExitCode::SUCCESS
}

fn cluster(seeds: u64, base: u64, inject_bug: bool, artifact: Option<&str>) -> ExitCode {
    use mmcs_chaos::cluster::{
        check_cluster, generate_cluster_ops, minimize_cluster, render_cluster_test, run_cluster,
        ClusterChaosConfig,
    };
    let mut clean = 0u64;
    for seed in base..base + seeds {
        let mut config = ClusterChaosConfig::for_seed(seed);
        config.lose_interest_on_restart = inject_bug;
        let ops = generate_cluster_ops(&config);
        let (report, violations) = check_cluster(&config, &ops);
        let second = run_cluster(&config, &ops);
        if report.fingerprint != second.fingerprint {
            eprintln!(
                "seed {seed}: NONDETERMINISM — fingerprints {:#018x} vs {:#018x} across two runs",
                report.fingerprint, second.fingerprint
            );
            return ExitCode::FAILURE;
        }
        if violations.is_empty() {
            clean += 1;
            println!(
                "seed {seed}: ok ({} nodes, {}, {} deliveries, max hop {}, fingerprint {:#018x} bit-identical on replay)",
                config.nodes,
                if config.chain { "chain" } else { "mesh" },
                report.deliveries.len(),
                report.max_hop,
                report.fingerprint
            );
            continue;
        }
        println!("seed {seed}: FAILED with {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        println!("shrinking {} ops…", ops.len());
        let shrunk = minimize_cluster(&config, &ops);
        println!(
            "minimal schedule: {} op(s) after {} runs",
            shrunk.ops.len(),
            shrunk.runs
        );
        for v in &shrunk.violations {
            println!("  - {v}");
        }
        let reproducer = render_cluster_test(&config, &shrunk);
        println!("\n{reproducer}");
        if let Some(path) = artifact {
            match std::fs::write(path, &reproducer) {
                Ok(()) => println!("reproducer written to {path}"),
                Err(e) => eprintln!("failed to write artifact {path}: {e}"),
            }
        }
        println!("reproduce with: mmcs-chaos cluster --seeds 1 --base {seed}");
        return ExitCode::FAILURE;
    }
    println!("all {clean} cluster seed(s) clean, fingerprints bit-identical on replay");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(command) = iter.next() else {
        return usage();
    };
    let rest: Vec<&String> = iter.collect();
    let inject_bug = rest.iter().any(|a| a.as_str() == "--inject-bug");
    let flag_value = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let workers = match flag_value("--workers") {
        Some(v) => match v.parse::<usize>() {
            Ok(w) if w >= 1 => w,
            _ => return usage(),
        },
        None => 1,
    };
    match command.as_str() {
        "fuzz" => {
            let Some(seeds) = flag_value("--seeds").and_then(|v| v.parse().ok()) else {
                return usage();
            };
            let base = match flag_value("--base") {
                Some(v) => match v.parse() {
                    Ok(b) => b,
                    Err(_) => return usage(),
                },
                None => 0,
            };
            fuzz(
                seeds,
                base,
                inject_bug,
                workers,
                flag_value("--artifact"),
                flag_value("--metrics-dir").unwrap_or("target/chaos-metrics"),
            )
        }
        "replay" => {
            // The seed is the first positional arg: skip flags and the
            // value slot right after a value-taking flag.
            let Some(seed) = rest
                .iter()
                .enumerate()
                .find(|(i, a)| {
                    let after_flag = *i > 0 && rest[i - 1].as_str() == "--workers";
                    !a.starts_with("--") && !after_flag
                })
                .and_then(|(_, v)| v.parse().ok())
            else {
                return usage();
            };
            replay(seed, inject_bug, workers)
        }
        "sharded" => {
            let Some(seeds) = flag_value("--seeds").and_then(|v| v.parse().ok()) else {
                return usage();
            };
            let base = match flag_value("--base") {
                Some(v) => match v.parse() {
                    Ok(b) => b,
                    Err(_) => return usage(),
                },
                None => 0,
            };
            let shards = match flag_value("--shards") {
                Some(v) => match v.parse() {
                    Ok(k) => Some(k),
                    Err(_) => return usage(),
                },
                None => None,
            };
            sharded(seeds, base, shards)
        }
        "cluster" => {
            let Some(seeds) = flag_value("--seeds").and_then(|v| v.parse().ok()) else {
                return usage();
            };
            let base = match flag_value("--base") {
                Some(v) => match v.parse() {
                    Ok(b) => b,
                    Err(_) => return usage(),
                },
                None => 0,
            };
            cluster(seeds, base, inject_bug, flag_value("--artifact"))
        }
        _ => usage(),
    }
}
