//! The chaos scenario: topology, traffic, fault application, and the
//! post-run report.
//!
//! One scenario is a chain of four brokers (each on its own host, with
//! heartbeat liveness), three reliable client pairs spanning the chain,
//! two churn clients, and an XGSP membership applier fed by pair 0's
//! delivered stream. [`run`] executes the scenario under a fault
//! [`crate::schedule`] and returns a [`RunReport`] with everything the
//! [`crate::invariants`] checkers need — plus a fingerprint that is
//! bit-identical across replays of the same seed and schedule.

use std::sync::Arc;

use bytes::Bytes;
use mmcs_broker::batch::CostModel;
use mmcs_broker::event::{Event, EventClass};
use mmcs_broker::metrics::BrokerMetrics;
use mmcs_broker::profile::TransportProfile;
use mmcs_broker::reliable::{Ack, ReliableFrame, ReliableReceiver, ReliableSender};
use mmcs_broker::simdrv::{BrokerMsg, BrokerProcess, ClientMsg, PeerLinkEvent};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_sim::{Context, LinkConfig, NicConfig, Packet, Process, ProcessId, Simulation};
use mmcs_telemetry::Registry;
use mmcs_util::id::{BrokerId, ClientId, SessionId, TerminalId};
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};
use mmcs_xgsp::session::Session;

use crate::schedule::{Fault, FaultKind, Target};

/// Brokers in the chain.
pub const BROKERS: usize = 4;
/// Edges in the chain.
pub const EDGES: usize = BROKERS - 1;
/// Churn clients.
pub const CHURN_CLIENTS: usize = 2;
/// Reliable pairs: (sender broker, receiver broker).
pub const PAIRS: [(usize, usize); 3] = [(0, 3), (3, 0), (1, 2)];

const CONTROL_BYTES: usize = 96;
const OFFER_TOKEN: u64 = 1;
const TICK_TOKEN: u64 = 2;
const REFRESH_TOKEN: u64 = 3;

/// Parameters of one chaos run. Everything else derives from `seed`.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Master seed: drives the network RNG, the fault schedule, and the
    /// XGSP command stream.
    pub seed: u64,
    /// Faults and traffic all end by this virtual time (ms).
    pub horizon_ms: u64,
    /// Post-heal window (ms): quiescence must be reached within it.
    pub settle_ms: u64,
    /// Events each reliable pair offers.
    pub events_per_pair: u64,
    /// Chaos-bug injection: senders never retransmit. Any lossy schedule
    /// then strands frames, which the invariant checkers must catch.
    pub disable_retransmit: bool,
    /// Worker threads for the simulation engine. `1` (the default) uses
    /// the sequential engine; anything larger drives the run through
    /// [`Simulation::run_parallel_until`], which must produce the same
    /// fingerprint bit-for-bit.
    pub workers: usize,
}

impl ScenarioConfig {
    /// The standard configuration for a seed (12 s fault horizon, 15 s
    /// settle window, 150 events per pair, retransmission on).
    pub fn for_seed(seed: u64) -> Self {
        Self {
            seed,
            horizon_ms: 12_000,
            settle_ms: 15_000,
            events_per_pair: 150,
            disable_retransmit: false,
            workers: 1,
        }
    }
}

/// One XGSP roster command carried (by index) on pair 0's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XgspCmd {
    /// `user` joins with the given terminal.
    Join {
        /// Directory user name.
        user: String,
        /// Terminal id raw value.
        terminal: u64,
    },
    /// `user` leaves.
    Leave {
        /// Directory user name.
        user: String,
    },
}

/// Generates a deterministic, always-valid command stream: every `Leave`
/// names a user the in-order prefix has joined and not yet removed.
pub fn generate_commands(seed: u64, n: u64) -> Vec<XgspCmd> {
    let mut rng = DetRng::new(seed ^ 0x9C5F_00D5_EED5_0115);
    let mut present: Vec<(String, u64)> = Vec::new();
    let mut next_user = 0u64;
    (0..n)
        .map(|_| {
            if present.is_empty() || rng.chance(0.65) {
                let user = format!("user-{next_user}");
                let terminal = next_user;
                next_user += 1;
                present.push((user.clone(), terminal));
                XgspCmd::Join { user, terminal }
            } else {
                let i = rng.range_usize(0, present.len());
                let (user, _) = present.remove(i);
                XgspCmd::Leave { user }
            }
        })
        .collect()
}

/// Applies pair-0 delivered indices to a live [`Session`].
pub struct XgspApplier {
    session: Session,
    commands: Vec<XgspCmd>,
    applied: u64,
    apply_errors: u64,
}

impl XgspApplier {
    /// Creates an applier for the seed's command stream.
    pub fn new(seed: u64, n: u64) -> Self {
        Self {
            session: Session::new(SessionId::from_raw(1), "chaos", &[]),
            commands: generate_commands(seed, n),
            applied: 0,
            apply_errors: 0,
        }
    }

    /// Applies the command at `index` (out-of-range indices are counted
    /// as errors — they mean the reliable channel delivered garbage).
    pub fn apply(&mut self, index: u64) {
        let Some(cmd) = self.commands.get(index as usize) else {
            self.apply_errors += 1;
            return;
        };
        let result = match cmd.clone() {
            XgspCmd::Join { user, terminal } => self
                .session
                .join(user, TerminalId::from_raw(terminal), Vec::new())
                .map(|_| ()),
            XgspCmd::Leave { user } => self.session.leave(&user),
        };
        if result.is_err() {
            self.apply_errors += 1;
        }
        self.applied += 1;
    }

    /// The live roster digest.
    pub fn digest(&self) -> u64 {
        self.session.membership_digest()
    }
}

/// Replays a delivered-index trace against a fresh model and returns the
/// roster digest it ends at — the oracle for the XGSP invariant.
pub fn replay_digest(seed: u64, n: u64, delivered: &[u64]) -> u64 {
    let mut model = XgspApplier::new(seed, n);
    for &index in delivered {
        model.apply(index);
    }
    model.digest()
}

/// Sender endpoint of a reliable pair: offers `total` events, paced,
/// retransmitting on a timer until everything is acked.
struct ChaosSender {
    broker: ProcessId,
    broker_id: BrokerId,
    client: ClientId,
    topic: Topic,
    ack_filter: TopicFilter,
    sender: ReliableSender,
    offered: u64,
    total: u64,
    retransmit: bool,
}

impl ChaosSender {
    fn attach(&self, ctx: &mut Context<'_>) {
        let _ = self.broker_id;
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile: TransportProfile::Tcp,
            },
            CONTROL_BYTES,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: self.ack_filter.clone(),
            },
            CONTROL_BYTES,
        );
    }

    fn publish_frames(&mut self, ctx: &mut Context<'_>, frames: Vec<ReliableFrame>) {
        for frame in frames {
            debug_assert_eq!(frame.seq, frame.event.seq, "frame seq rides Event::seq");
            let wire = frame.event.wire_len() + TransportProfile::Tcp.overhead_bytes();
            ctx.send(
                self.broker,
                BrokerMsg::Publish {
                    client: self.client,
                    event: frame.event,
                },
                wire,
            );
            ctx.count("chaos.frames_sent", 1);
        }
    }
}

impl Process for ChaosSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.attach(ctx);
        ctx.set_timer(SimDuration::from_millis(500), OFFER_TOKEN);
        ctx.set_timer(SimDuration::from_millis(100), TICK_TOKEN);
        ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(ClientMsg::Deliver(event)) = packet.payload::<ClientMsg>() else {
            return;
        };
        let ack = Ack {
            next_expected: event.seq,
        };
        let released = self.sender.on_ack(ack, ctx.now());
        self.publish_frames(ctx, released);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            OFFER_TOKEN if self.offered < self.total => {
                let event = Event::new(
                    self.topic.clone(),
                    self.client,
                    self.offered,
                    EventClass::Data,
                    Bytes::from(self.offered.to_be_bytes().to_vec()),
                )
                .with_published_at(ctx.now())
                .into_shared();
                self.offered += 1;
                let frames = self.sender.send(event, ctx.now());
                self.publish_frames(ctx, frames);
                ctx.set_timer(SimDuration::from_millis(40), OFFER_TOKEN);
            }
            TICK_TOKEN => {
                if self.retransmit {
                    let frames = self.sender.on_tick(ctx.now());
                    if !frames.is_empty() {
                        ctx.count("chaos.retransmits", frames.len() as u64);
                    }
                    self.publish_frames(ctx, frames);
                }
                ctx.set_timer(SimDuration::from_millis(100), TICK_TOKEN);
            }
            REFRESH_TOKEN => {
                // Periodic re-attach: heals a broker restart that wiped
                // this client's attachment and ack subscription.
                self.attach(ctx);
                ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
            }
            _ => {}
        }
    }
}

/// Receiver endpoint of a reliable pair: reassembles the stream, records
/// what surfaced past the [`ReliableReceiver`], acks cumulatively, and
/// (for pair 0) feeds the XGSP applier.
struct ChaosReceiver {
    broker: ProcessId,
    client: ClientId,
    data_filter: TopicFilter,
    ack_topic: Topic,
    receiver: ReliableReceiver,
    delivered: Vec<u64>,
    xgsp: Option<XgspApplier>,
}

impl ChaosReceiver {
    fn attach(&self, ctx: &mut Context<'_>) {
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile: TransportProfile::Tcp,
            },
            CONTROL_BYTES,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: self.data_filter.clone(),
            },
            CONTROL_BYTES,
        );
    }
}

impl Process for ChaosReceiver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.attach(ctx);
        ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(ClientMsg::Deliver(event)) = packet.payload::<ClientMsg>() else {
            return;
        };
        let frame = ReliableFrame {
            seq: event.seq,
            event: Arc::clone(event),
        };
        let (events, ack) = self.receiver.on_frame(frame);
        for event in events {
            let mut index_bytes = [0u8; 8];
            index_bytes.copy_from_slice(&event.payload[..8]);
            let index = u64::from_be_bytes(index_bytes);
            self.delivered.push(index);
            ctx.count("chaos.delivered", 1);
            if let Some(xgsp) = &mut self.xgsp {
                xgsp.apply(index);
            }
        }
        let ack_event = Event::new(
            self.ack_topic.clone(),
            self.client,
            ack.next_expected,
            EventClass::Control,
            Bytes::new(),
        )
        .into_shared();
        let wire = ack_event.wire_len() + TransportProfile::Tcp.overhead_bytes();
        ctx.send(
            self.broker,
            BrokerMsg::Publish {
                client: self.client,
                event: ack_event,
            },
            wire,
        );
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == REFRESH_TOKEN {
            self.attach(ctx);
            ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
        }
    }
}

/// A churn client: subscribes to pair 0's data topic and gets crashed
/// and restarted by the schedule; its job is to stress broker
/// (re-)attach paths, not to assert anything itself.
struct ChurnClient {
    broker: ProcessId,
    client: ClientId,
    filter: TopicFilter,
}

impl ChurnClient {
    fn attach(&self, ctx: &mut Context<'_>) {
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile: TransportProfile::Udp,
            },
            CONTROL_BYTES,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: self.filter.clone(),
            },
            CONTROL_BYTES,
        );
    }
}

impl Process for ChurnClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.attach(ctx);
        ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        self.attach(ctx);
        ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, _packet: Packet) {
        ctx.count("chaos.churn_received", 1);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == REFRESH_TOKEN {
            self.attach(ctx);
            ctx.set_timer(SimDuration::from_millis(1000), REFRESH_TOKEN);
        }
    }
}

/// Per-pair outcome.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Events the sender offered.
    pub offered: u64,
    /// Payload indices surfaced past the receiver, in delivery order.
    pub delivered: Vec<u64>,
    /// Whether the sender reached idle (all offered events acked).
    pub sender_idle: bool,
    /// Frames still awaiting an ack at the end of the run.
    pub in_flight: usize,
    /// Events accepted but never transmitted at the end of the run.
    pub backlogged: usize,
    /// Retransmissions the sender performed.
    pub retransmissions: u64,
    /// Duplicate frames the receiver suppressed.
    pub duplicates: u64,
}

/// Per-broker outcome.
#[derive(Debug, Clone)]
pub struct BrokerReport {
    /// Raw ids of the peers this broker is configured with.
    pub configured: Vec<u64>,
    /// Raw ids of the peers the node currently has links to.
    pub linked: Vec<u64>,
    /// Interleaved suspicion/rejoin history.
    pub history: Vec<(BrokerId, PeerLinkEvent)>,
}

/// One route-plan comparison against the naive re-walk oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCheck {
    /// Broker chain index.
    pub broker: usize,
    /// Concrete topic checked.
    pub topic: String,
    /// Local subscriber ids the broker would deliver to.
    pub actual_local: Vec<u64>,
    /// Local subscriber ids the oracle expects.
    pub expected_local: Vec<u64>,
    /// Peer broker ids the broker would forward to.
    pub actual_remote: Vec<u64>,
    /// Peer broker ids the oracle expects.
    pub expected_remote: Vec<u64>,
}

/// Everything a run produced, in deterministic order.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed the run used.
    pub seed: u64,
    /// FNV-1a over counters, delivery traces, histories and digests;
    /// bit-identical across replays of the same seed + schedule.
    pub fingerprint: u64,
    /// All simulator counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// One report per reliable pair (indexed like [`PAIRS`]).
    pub pairs: Vec<PairReport>,
    /// One report per broker (chain order).
    pub brokers: Vec<BrokerReport>,
    /// Route plans vs the oracle, for every broker × topic.
    pub plans: Vec<PlanCheck>,
    /// The live XGSP roster digest at the end of the run.
    pub xgsp_digest: u64,
    /// The digest a fresh model reaches replaying the delivered trace.
    pub xgsp_replay_digest: u64,
    /// Commands the live applier rejected (must be zero).
    pub xgsp_apply_errors: u64,
    /// JSON rendering of the run's telemetry registry (per-broker
    /// [`BrokerMetrics`] plus per-pair retransmit counters). Excluded
    /// from the fingerprint: it is observability output, not an
    /// invariant surface — though under the deterministic simulator it
    /// is in fact identical across replays of the same seed.
    pub metrics_json: String,
}

/// An operation compiled from a fault interval endpoint.
enum Op {
    Link(usize, LinkConfig),
    Crash(ProcessId),
    Restart(ProcessId),
    Mute(ProcessId),
    Unmute(ProcessId),
}

fn data_topic(pair: usize) -> Topic {
    Topic::parse(&format!("chaos/rel/{pair}")).expect("static topic")
}

fn ack_topic(pair: usize) -> Topic {
    Topic::parse(&format!("chaos/relack/{pair}")).expect("static topic")
}

/// Advances the simulation to `until` on whichever engine the config
/// selects. The parallel engine is conservative and deterministic, so
/// the choice must not change any reported value.
fn advance(sim: &mut Simulation, workers: usize, until: SimTime) {
    if workers > 1 {
        sim.run_parallel_until(until, workers);
    } else {
        sim.run_until(until);
    }
}

/// Runs the scenario under `schedule` and reports.
pub fn run(config: &ScenarioConfig, schedule: &[Fault]) -> RunReport {
    let mut sim = Simulation::new(config.seed);
    let registry = Registry::new();
    let hosts: Vec<_> = (0..BROKERS)
        .map(|i| sim.add_host(&format!("broker-{i}"), NicConfig::default()))
        .collect();
    let every = SimDuration::from_millis(500);
    let timeout = SimDuration::from_millis(1600);
    let broker_pids: Vec<ProcessId> = (0..BROKERS)
        .map(|i| {
            sim.add_typed_process(
                hosts[i],
                BrokerProcess::new(BrokerId::from_raw(i as u64), CostModel::narada())
                    .with_liveness(every, timeout),
            )
        })
        .collect();
    for i in 0..BROKERS {
        sim.process_mut::<BrokerProcess>(broker_pids[i])
            .expect("broker process")
            .set_metrics(BrokerMetrics::register(&registry, &format!("broker{i}")));
        for j in [i.wrapping_sub(1), i + 1] {
            if j < BROKERS && j != i {
                let peer = BrokerId::from_raw(j as u64);
                sim.process_mut::<BrokerProcess>(broker_pids[i])
                    .expect("broker process")
                    .add_peer(peer, broker_pids[j]);
            }
        }
    }

    let mut sender_pids = Vec::new();
    let mut receiver_pids = Vec::new();
    for (k, (s, r)) in PAIRS.iter().enumerate() {
        let mut reliable = ReliableSender::new(8, SimDuration::from_millis(300));
        reliable.set_retransmit_counter(registry.counter(
            &format!("pair{k}_retransmissions_total"),
            "Reliable frames retransmitted after ack timeout",
        ));
        let sender = ChaosSender {
            broker: broker_pids[*s],
            broker_id: BrokerId::from_raw(*s as u64),
            client: ClientId::from_raw(100 + k as u64),
            topic: data_topic(k),
            ack_filter: TopicFilter::exact(&ack_topic(k)),
            sender: reliable,
            offered: 0,
            total: config.events_per_pair,
            retransmit: !config.disable_retransmit,
        };
        sender_pids.push(sim.add_typed_process(hosts[*s], sender));
        let receiver = ChaosReceiver {
            broker: broker_pids[*r],
            client: ClientId::from_raw(200 + k as u64),
            data_filter: TopicFilter::exact(&data_topic(k)),
            ack_topic: ack_topic(k),
            receiver: ReliableReceiver::new(),
            delivered: Vec::new(),
            xgsp: (k == 0).then(|| XgspApplier::new(config.seed, config.events_per_pair)),
        };
        receiver_pids.push(sim.add_typed_process(hosts[*r], receiver));
    }
    let churn_brokers = [1usize, 2];
    let churn_pids: Vec<ProcessId> = (0..CHURN_CLIENTS)
        .map(|c| {
            let b = churn_brokers[c % churn_brokers.len()];
            sim.add_typed_process(
                hosts[b],
                ChurnClient {
                    broker: broker_pids[b],
                    client: ClientId::from_raw(300 + c as u64),
                    filter: TopicFilter::exact(&data_topic(0)),
                },
            )
        })
        .collect();

    // Compile the schedule into timed operations.
    let mut ops: Vec<(u64, usize, Op)> = Vec::new();
    for (i, fault) in schedule.iter().enumerate() {
        let (start_op, end_op) = match (fault.kind, fault.target) {
            (FaultKind::Partition, Target::Edge(e)) => (
                Op::Link(
                    e,
                    LinkConfig {
                        down: true,
                        ..LinkConfig::default()
                    },
                ),
                Op::Link(e, LinkConfig::default()),
            ),
            (FaultKind::Loss(p), Target::Edge(e)) => (
                Op::Link(
                    e,
                    LinkConfig {
                        loss: p,
                        ..LinkConfig::default()
                    },
                ),
                Op::Link(e, LinkConfig::default()),
            ),
            (
                FaultKind::Flaky {
                    jitter_ms,
                    duplicate,
                },
                Target::Edge(e),
            ) => (
                Op::Link(
                    e,
                    LinkConfig {
                        jitter: SimDuration::from_millis(jitter_ms),
                        duplicate,
                        ..LinkConfig::default()
                    },
                ),
                Op::Link(e, LinkConfig::default()),
            ),
            (FaultKind::BrokerCrash, Target::Broker(b)) => (
                Op::Crash(broker_pids[b % BROKERS]),
                Op::Restart(broker_pids[b % BROKERS]),
            ),
            (FaultKind::HeartbeatMute, Target::Broker(b)) => (
                Op::Mute(broker_pids[b % BROKERS]),
                Op::Unmute(broker_pids[b % BROKERS]),
            ),
            (FaultKind::ClientChurn, Target::Client(c)) => (
                Op::Crash(churn_pids[c % CHURN_CLIENTS]),
                Op::Restart(churn_pids[c % CHURN_CLIENTS]),
            ),
            // A kind paired with a foreign target is a schedule bug;
            // treat it as a no-op link refresh rather than panic.
            _ => (Op::Link(0, LinkConfig::default()), Op::Link(0, LinkConfig::default())),
        };
        ops.push((fault.start_ms, i * 2, start_op));
        ops.push((fault.end_ms, i * 2 + 1, end_op));
    }
    ops.sort_by_key(|(t, tie, _)| (*t, *tie));

    for (t_ms, _, op) in ops {
        advance(&mut sim, config.workers, SimTime::from_millis(t_ms));
        match op {
            Op::Link(e, cfg) => sim.set_link(hosts[e], hosts[e + 1], cfg),
            Op::Crash(pid) => sim.crash_process(pid),
            Op::Restart(pid) => sim.restart_process(pid),
            Op::Mute(pid) => {
                if let Some(b) = sim.process_mut::<BrokerProcess>(pid) {
                    b.mute_heartbeats();
                }
            }
            Op::Unmute(pid) => {
                if let Some(b) = sim.process_mut::<BrokerProcess>(pid) {
                    b.unmute_heartbeats();
                }
            }
        }
    }
    advance(&mut sim, config.workers, SimTime::from_millis(config.horizon_ms));
    // Belt and braces: every fault interval ends by the horizon, but a
    // hand-written schedule might not be well-formed. Heal everything.
    for e in 0..EDGES {
        sim.set_link(hosts[e], hosts[e + 1], LinkConfig::default());
    }
    for pid in broker_pids.iter().chain(churn_pids.iter()) {
        if sim.is_crashed(*pid) {
            sim.restart_process(*pid);
        }
    }
    for pid in &broker_pids {
        if let Some(b) = sim.process_mut::<BrokerProcess>(*pid) {
            b.unmute_heartbeats();
        }
    }
    advance(
        &mut sim,
        config.workers,
        SimTime::from_millis(config.horizon_ms + config.settle_ms),
    );

    if config.workers > 1 {
        // Publish engine-side parallel telemetry. These live in the
        // registry (metrics_json), never in the fingerprinted counters,
        // so sequential and parallel reports stay comparable.
        let stats = sim.parallel_stats();
        registry
            .counter(
                "parsim_rounds_total",
                "Watermark synchronization rounds across the run",
            )
            .add(stats.rounds);
        registry
            .counter(
                "parsim_sequential_fallbacks_total",
                "Parallel runs that fell back to the sequential engine",
            )
            .add(stats.sequential_fallbacks);
        for (w, stalls) in stats.worker_stalls.iter().enumerate() {
            registry
                .counter(
                    &format!("parsim_worker{w}_watermark_stalls_total"),
                    "Rounds this worker only republished its bound (no safe event)",
                )
                .add(*stalls);
        }
    }

    collect(
        config,
        &mut sim,
        &registry,
        &broker_pids,
        &sender_pids,
        &receiver_pids,
    )
}

/// Where each topic's subscribers live: `(broker index, client raw id)`.
fn subscriber_map() -> Vec<(String, Vec<(usize, u64)>)> {
    let mut topics = Vec::new();
    for (k, (s, r)) in PAIRS.iter().enumerate() {
        let mut data_subs = vec![(*r, 200 + k as u64)];
        if k == 0 {
            // Churn clients also subscribe to pair 0's data topic.
            data_subs.push((1, 300));
            data_subs.push((2, 301));
        }
        data_subs.sort_unstable();
        topics.push((data_topic(k).to_string(), data_subs));
        topics.push((ack_topic(k).to_string(), vec![(*s, 100 + k as u64)]));
    }
    topics
}

/// The naive re-walk oracle: on the chain, broker `i` delivers locally
/// to its own subscribers and forwards toward any neighbor whose side
/// of the tree holds at least one subscriber.
fn expected_plan(subs: &[(usize, u64)], broker: usize) -> (Vec<u64>, Vec<u64>) {
    let mut local: Vec<u64> = subs
        .iter()
        .filter(|(b, _)| *b == broker)
        .map(|(_, c)| *c)
        .collect();
    local.sort_unstable();
    let mut remote = Vec::new();
    if broker > 0 && subs.iter().any(|(b, _)| *b < broker) {
        remote.push((broker - 1) as u64);
    }
    if broker + 1 < BROKERS && subs.iter().any(|(b, _)| *b > broker) {
        remote.push((broker + 1) as u64);
    }
    (local, remote)
}

fn collect(
    config: &ScenarioConfig,
    sim: &mut Simulation,
    registry: &Registry,
    broker_pids: &[ProcessId],
    sender_pids: &[ProcessId],
    receiver_pids: &[ProcessId],
) -> RunReport {
    let mut counters: Vec<(String, u64)> = sim
        .counters()
        .map(|(name, value)| (name.to_owned(), value))
        .collect();
    counters.sort();

    let mut pairs = Vec::new();
    for k in 0..PAIRS.len() {
        let sender = sim
            .process_ref::<ChaosSender>(sender_pids[k])
            .expect("sender process");
        let receiver = sim
            .process_ref::<ChaosReceiver>(receiver_pids[k])
            .expect("receiver process");
        pairs.push(PairReport {
            offered: sender.offered,
            delivered: receiver.delivered.clone(),
            sender_idle: sender.sender.is_idle(),
            in_flight: sender.sender.in_flight(),
            backlogged: sender.sender.backlogged(),
            retransmissions: sender.sender.retransmissions(),
            duplicates: receiver.receiver.duplicates(),
        });
    }

    let mut brokers = Vec::new();
    for (i, pid) in broker_pids.iter().enumerate() {
        let broker = sim
            .process_ref::<BrokerProcess>(*pid)
            .expect("broker process");
        let mut configured: Vec<u64> = Vec::new();
        if i > 0 {
            configured.push((i - 1) as u64);
        }
        if i + 1 < BROKERS {
            configured.push(i as u64 + 1);
        }
        let mut linked: Vec<u64> = broker.node().peers().map(|p| p.value()).collect();
        linked.sort_unstable();
        brokers.push(BrokerReport {
            configured,
            linked,
            history: broker.peer_history().to_vec(),
        });
    }

    let mut plans = Vec::new();
    for (topic_str, subs) in subscriber_map() {
        let topic = Topic::parse(&topic_str).expect("oracle topic");
        for (i, pid) in broker_pids.iter().enumerate() {
            let broker = sim
                .process_mut::<BrokerProcess>(*pid)
                .expect("broker process");
            let plan = broker.node_mut().plan_for(&topic);
            let actual_local: Vec<u64> = plan.local.iter().map(|(c, _)| c.value()).collect();
            let actual_remote: Vec<u64> = plan.remote.iter().map(|p| p.value()).collect();
            let (expected_local, expected_remote) = expected_plan(&subs, i);
            plans.push(PlanCheck {
                broker: i,
                topic: topic_str.clone(),
                actual_local,
                expected_local,
                actual_remote,
                expected_remote,
            });
        }
    }

    let receiver0 = sim
        .process_ref::<ChaosReceiver>(receiver_pids[0])
        .expect("receiver process");
    let applier = receiver0.xgsp.as_ref().expect("pair 0 carries XGSP");
    let xgsp_digest = applier.digest();
    let xgsp_apply_errors = applier.apply_errors;
    let xgsp_replay_digest = replay_digest(
        config.seed,
        config.events_per_pair,
        &pairs[0].delivered,
    );

    let fingerprint = fingerprint(&counters, &pairs, &brokers, xgsp_digest, xgsp_replay_digest);
    RunReport {
        seed: config.seed,
        fingerprint,
        counters,
        pairs,
        brokers,
        plans,
        xgsp_digest,
        xgsp_replay_digest,
        xgsp_apply_errors,
        metrics_json: registry.render_json(),
    }
}

fn fingerprint(
    counters: &[(String, u64)],
    pairs: &[PairReport],
    brokers: &[BrokerReport],
    xgsp_digest: u64,
    xgsp_replay_digest: u64,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for (name, value) in counters {
        mix(name.as_bytes());
        mix(&value.to_be_bytes());
    }
    for pair in pairs {
        mix(&pair.offered.to_be_bytes());
        for d in &pair.delivered {
            mix(&d.to_be_bytes());
        }
        mix(&[u8::from(pair.sender_idle)]);
        mix(&pair.retransmissions.to_be_bytes());
        mix(&pair.duplicates.to_be_bytes());
    }
    for broker in brokers {
        for (peer, event) in &broker.history {
            mix(&peer.value().to_be_bytes());
            mix(&[match event {
                PeerLinkEvent::Suspected => 1,
                PeerLinkEvent::Rejoined => 2,
            }]);
        }
        for linked in &broker.linked {
            mix(&linked.to_be_bytes());
        }
    }
    mix(&xgsp_digest.to_be_bytes());
    mix(&xgsp_replay_digest.to_be_bytes());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_stream_is_deterministic_and_valid() {
        let a = generate_commands(9, 100);
        assert_eq!(a, generate_commands(9, 100));
        // Replaying the full stream against a model never errors.
        let mut model = XgspApplier::new(9, 100);
        for i in 0..100 {
            model.apply(i);
        }
        assert_eq!(model.apply_errors, 0);
        assert_eq!(model.applied, 100);
    }

    #[test]
    fn fault_free_run_is_clean_and_reproducible() {
        let config = ScenarioConfig {
            events_per_pair: 40,
            horizon_ms: 4000,
            settle_ms: 5000,
            ..ScenarioConfig::for_seed(11)
        };
        let a = run(&config, &[]);
        for pair in &a.pairs {
            assert_eq!(pair.offered, 40);
            assert_eq!(pair.delivered, (0..40).collect::<Vec<_>>());
            assert!(pair.sender_idle);
        }
        assert_eq!(a.xgsp_digest, a.xgsp_replay_digest);
        let b = run(&config, &[]);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn oracle_matches_topology() {
        // Data topic 0: subscribers at brokers 1, 2 (churn) and 3
        // (receiver). Broker 0 forwards right only; broker 3 delivers
        // locally with a left edge only when someone is left of it.
        let subs = vec![(1, 300), (2, 301), (3, 200)];
        let (local, remote) = expected_plan(&subs, 0);
        assert!(local.is_empty());
        assert_eq!(remote, vec![1]);
        let (local, remote) = expected_plan(&subs, 2);
        assert_eq!(local, vec![301]);
        assert_eq!(remote, vec![1, 3]);
        let (local, remote) = expected_plan(&subs, 3);
        assert_eq!(local, vec![200]);
        // Subscribers exist left of broker 3, so it forwards left.
        assert_eq!(remote, vec![2]);
    }
}
