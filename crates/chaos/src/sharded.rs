//! Seeded chaos for the sharded broker runtime.
//!
//! Unlike the simulator-based network scenario, this variant drives a
//! **real** [`ShardedBroker`] — live OS threads, batched ingress
//! queues, the cross-shard forwarding ring — with a deterministic,
//! seed-derived operation schedule: client attach/detach churn,
//! subscribe/unsubscribe flapping, publish bursts, worker stalls, and
//! (on backpressure seeds) a tiny soft queue capacity so publishers
//! spin on full shards. Control operations are settled with
//! [`ShardedBroker::quiesce`], so the delivery outcome is deterministic
//! even though thread interleavings are not.
//!
//! The oracle is the single-loop [`BrokerNode`] state machine fed the
//! same schedule. Invariants checked per seed:
//!
//! 1. sorted delivery multisets identical to the oracle's,
//! 2. per-(receiver, source, topic) sequence monotonicity,
//! 3. metric identities — Σ `events_in` = accepted publishes +
//!    Σ `cross_shard_forwards`, Σ `deliveries` = events drained,
//! 4. every shard's queue depth reads zero after the final quiesce.
//!
//! The sorted deliveries fold into an FNV-1a fingerprint, so two runs
//! of one seed are comparable bit-for-bit exactly like the network
//! scenario's replay.

use std::time::Duration;

use bytes::Bytes;
use mmcs_broker::event::{Event, EventClass};
use mmcs_broker::metrics::ShardedBrokerMetrics;
use mmcs_broker::node::{Action, BrokerNode, Input, Origin};
use mmcs_broker::sharded::{ShardedBroker, ShardedClient};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rng::DetRng;

/// One delivery in sortable form: (receiver, topic, source, seq).
pub type ShardedDelivery = (u64, String, u64, u64);

/// Parameters of one sharded chaos run, all derived from the seed.
#[derive(Debug, Clone)]
pub struct ShardedChaosConfig {
    /// The seed everything derives from.
    pub seed: u64,
    /// Worker shard count (1–4 by default).
    pub shards: usize,
    /// Operations in the schedule.
    pub ops: usize,
    /// Soft per-shard queue capacity; backpressure seeds use a tiny one.
    pub capacity: usize,
    /// Clients attached before the schedule starts (churn adds more).
    pub clients: usize,
}

impl ShardedChaosConfig {
    /// The canonical configuration for a seed: shard count cycles
    /// through 1–4, and every third seed runs with a capacity of 4 so
    /// publishers hit the soft backpressure spin.
    pub fn for_seed(seed: u64) -> Self {
        Self {
            seed,
            shards: 1 + (seed % 4) as usize,
            ops: 120,
            capacity: if seed.is_multiple_of(3) { 4 } else { 65_536 },
            clients: 4,
        }
    }
}

/// One step of the deterministic schedule.
#[derive(Debug, Clone)]
pub enum ShardedOp {
    /// Attach a fresh client (churn arrival).
    Attach,
    /// Detach client `index` (churn departure / crash; later ops that
    /// still reference it become no-ops on both sides).
    Detach(usize),
    /// Client `index` subscribes to the filter pattern.
    Subscribe(usize, String),
    /// Client `index` drops the filter pattern.
    Unsubscribe(usize, String),
    /// Client `index` publishes to the topic path.
    Publish(usize, String),
    /// Stall one shard's worker for some milliseconds (queue pile-up).
    Stall(usize, u64),
}

fn random_topic(rng: &mut DetRng) -> String {
    let depth = rng.range_usize(1, 4);
    let mut segments = Vec::with_capacity(depth);
    for _ in 0..depth {
        segments.push(format!("s{}", rng.range_u64(0, 6)));
    }
    segments.join("/")
}

fn random_filter(rng: &mut DetRng) -> String {
    let depth = rng.range_usize(1, 4);
    let mut segments = Vec::with_capacity(depth);
    for _ in 0..depth {
        if rng.chance(0.2) {
            segments.push("*".to_owned());
        } else {
            segments.push(format!("s{}", rng.range_u64(0, 6)));
        }
    }
    if rng.chance(0.3) {
        segments.push("#".to_owned());
    }
    segments.join("/")
}

/// Generates the operation schedule for a configuration. Both the real
/// run and the oracle consume exactly this list.
pub fn generate_ops(config: &ShardedChaosConfig) -> Vec<ShardedOp> {
    let mut rng = DetRng::new(config.seed ^ 0x5AAD_ED00_C0FF_EE00);
    let mut pool = config.clients;
    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        let roll = rng.range_u64(0, 100);
        let op = if roll < 6 {
            pool += 1;
            ShardedOp::Attach
        } else if roll < 11 {
            ShardedOp::Detach(rng.range_usize(0, pool))
        } else if roll < 31 {
            ShardedOp::Subscribe(rng.range_usize(0, pool), random_filter(&mut rng))
        } else if roll < 42 {
            ShardedOp::Unsubscribe(rng.range_usize(0, pool), random_filter(&mut rng))
        } else if roll < 47 {
            ShardedOp::Stall(rng.range_usize(0, config.shards), rng.range_u64(1, 4))
        } else {
            ShardedOp::Publish(rng.range_usize(0, pool), random_topic(&mut rng))
        };
        ops.push(op);
    }
    ops
}

/// Outcome of one sharded chaos run.
#[derive(Debug)]
pub struct ShardedRunReport {
    /// The configuration that produced this run.
    pub config: ShardedChaosConfig,
    /// Sorted delivery multiset drained from every client.
    pub deliveries: Vec<ShardedDelivery>,
    /// Per-(receiver, source, topic) order violations seen while
    /// draining (must be zero).
    pub order_violations: u64,
    /// Σ `events_in` across shards.
    pub events_in: u64,
    /// Σ `cross_shard_forwards` across shards.
    pub cross_shard_forwards: u64,
    /// Σ `deliveries` across shards.
    pub deliveries_metric: u64,
    /// Each shard's queue depth after the final quiesce.
    pub queue_depths: Vec<i64>,
    /// FNV-1a fingerprint over the sorted deliveries.
    pub fingerprint: u64,
}

fn fingerprint(deliveries: &[ShardedDelivery]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (receiver, topic, source, seq) in deliveries {
        mix(&receiver.to_le_bytes());
        mix(topic.as_bytes());
        mix(&source.to_le_bytes());
        mix(&seq.to_le_bytes());
    }
    hash
}

/// Executes the schedule against a real [`ShardedBroker`].
pub fn run_sharded(config: &ShardedChaosConfig) -> ShardedRunReport {
    let ops = generate_ops(config);
    let metrics = ShardedBrokerMetrics::detached(config.shards);
    let broker = ShardedBroker::builder(config.shards)
        .capacity(config.capacity)
        .metrics(std::sync::Arc::clone(&metrics))
        .spawn();
    let mut clients: Vec<ShardedClient> = (0..config.clients).map(|_| broker.attach()).collect();
    broker.quiesce();
    for op in &ops {
        match op {
            ShardedOp::Attach => {
                clients.push(broker.attach());
                broker.quiesce();
            }
            ShardedOp::Detach(index) => {
                broker.quiesce();
                clients[*index].detach();
                broker.quiesce();
            }
            ShardedOp::Subscribe(index, pattern) => {
                if let Ok(filter) = TopicFilter::parse(pattern) {
                    clients[*index].subscribe(filter);
                    broker.quiesce();
                }
            }
            ShardedOp::Unsubscribe(index, pattern) => {
                if let Ok(filter) = TopicFilter::parse(pattern) {
                    clients[*index].unsubscribe(filter);
                    broker.quiesce();
                }
            }
            ShardedOp::Publish(index, path) => {
                if let Ok(topic) = Topic::parse(path) {
                    clients[*index].publish(topic, Bytes::new());
                }
            }
            ShardedOp::Stall(shard, millis) => {
                broker.stall_shard(*shard, Duration::from_millis(*millis));
            }
        }
    }
    broker.quiesce();

    let mut deliveries: Vec<ShardedDelivery> = Vec::new();
    let mut order_violations = 0u64;
    let mut last_seq: std::collections::HashMap<(u64, u64, String), u64> =
        std::collections::HashMap::new();
    for client in &clients {
        while let Some(event) = client.try_recv() {
            let key = (
                client.id().value(),
                event.source.value(),
                event.topic.to_string(),
            );
            if let Some(prev) = last_seq.get(&key) {
                if event.seq <= *prev {
                    order_violations += 1;
                }
            }
            last_seq.insert(key, event.seq);
            deliveries.push((
                client.id().value(),
                event.topic.to_string(),
                event.source.value(),
                event.seq,
            ));
        }
    }
    deliveries.sort_unstable();
    let queue_depths: Vec<i64> = metrics.shards().map(|s| s.queue_depth.get()).collect();
    ShardedRunReport {
        config: config.clone(),
        fingerprint: fingerprint(&deliveries),
        deliveries,
        order_violations,
        events_in: metrics.total(|s| s.events_in.get()),
        cross_shard_forwards: metrics.total(|s| s.cross_shard_forwards.get()),
        deliveries_metric: metrics.total(|s| s.deliveries.get()),
        queue_depths,
    }
}

/// Replays the schedule through the single-loop oracle. Returns the
/// sorted delivery multiset plus the number of publishes the state
/// machine accepted (publishes from detached clients are rejected on
/// both sides).
pub fn oracle_sharded(config: &ShardedChaosConfig) -> (Vec<ShardedDelivery>, u64) {
    let ops = generate_ops(config);
    let mut node = BrokerNode::new(BrokerId::from_raw(7777));
    let mut next_id = 1u64;
    let mut attach = |node: &mut BrokerNode| {
        let id = ClientId::from_raw(next_id);
        next_id += 1;
        let _ = node.handle(Input::AttachClient {
            client: id,
            profile: Default::default(),
        });
        id
    };
    let mut clients: Vec<ClientId> = (0..config.clients).map(|_| attach(&mut node)).collect();
    let mut seqs: Vec<u64> = vec![0; config.clients];
    let mut accepted = 0u64;
    let mut deliveries: Vec<ShardedDelivery> = Vec::new();
    for op in &ops {
        match op {
            ShardedOp::Attach => {
                clients.push(attach(&mut node));
                seqs.push(0);
            }
            ShardedOp::Detach(index) => {
                let _ = node.handle(Input::DetachClient {
                    client: clients[*index],
                });
            }
            ShardedOp::Subscribe(index, pattern) => {
                if let Ok(filter) = TopicFilter::parse(pattern) {
                    let _ = node.handle(Input::Subscribe {
                        client: clients[*index],
                        filter,
                    });
                }
            }
            ShardedOp::Unsubscribe(index, pattern) => {
                if let Ok(filter) = TopicFilter::parse(pattern) {
                    let _ = node.handle(Input::Unsubscribe {
                        client: clients[*index],
                        filter,
                    });
                }
            }
            ShardedOp::Publish(index, path) => {
                if let Ok(topic) = Topic::parse(path) {
                    let seq = seqs[*index];
                    seqs[*index] += 1;
                    let event = Event::new(
                        topic,
                        clients[*index],
                        seq,
                        EventClass::Data,
                        Bytes::new(),
                    )
                    .into_shared();
                    if let Ok(actions) = node.handle(Input::Publish {
                        origin: Origin::Client(clients[*index]),
                        event,
                    }) {
                        accepted += 1;
                        for action in actions {
                            if let Action::Deliver { client, event, .. } = action {
                                deliveries.push((
                                    client.value(),
                                    event.topic.to_string(),
                                    event.source.value(),
                                    event.seq,
                                ));
                            }
                        }
                    }
                }
            }
            ShardedOp::Stall(..) => {}
        }
    }
    deliveries.sort_unstable();
    (deliveries, accepted)
}

/// Runs one seed and checks every invariant; returns the report and the
/// list of violations (empty = clean).
pub fn check_sharded(config: &ShardedChaosConfig) -> (ShardedRunReport, Vec<String>) {
    let report = run_sharded(config);
    let (expected, accepted) = oracle_sharded(config);
    let mut violations = Vec::new();
    if report.deliveries != expected {
        violations.push(format!(
            "delivery multiset diverged from oracle: {} actual vs {} expected",
            report.deliveries.len(),
            expected.len()
        ));
    }
    if report.order_violations > 0 {
        violations.push(format!(
            "{} per-topic sequence order violation(s)",
            report.order_violations
        ));
    }
    if report.events_in != accepted + report.cross_shard_forwards {
        violations.push(format!(
            "events_in identity broken: {} != {} accepted + {} forwards",
            report.events_in, accepted, report.cross_shard_forwards
        ));
    }
    if report.deliveries_metric != report.deliveries.len() as u64 {
        violations.push(format!(
            "deliveries metric {} != {} events drained",
            report.deliveries_metric,
            report.deliveries.len()
        ));
    }
    for (shard, depth) in report.queue_depths.iter().enumerate() {
        if *depth != 0 {
            violations.push(format!("shard {shard} queue depth {depth} after quiesce"));
        }
    }
    (report, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_seeds_are_clean() {
        for seed in 0..4 {
            let config = ShardedChaosConfig::for_seed(seed);
            let (report, violations) = check_sharded(&config);
            assert!(
                violations.is_empty(),
                "seed {seed} ({} shards): {violations:?}",
                report.config.shards
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let config = ShardedChaosConfig::for_seed(11);
        let a = run_sharded(&config);
        let b = run_sharded(&config);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.deliveries, b.deliveries);
    }

    #[test]
    fn backpressure_seed_uses_tiny_capacity() {
        let config = ShardedChaosConfig::for_seed(3);
        assert_eq!(config.capacity, 4);
        let (_, violations) = check_sharded(&config);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn schedule_generation_is_stable() {
        let config = ShardedChaosConfig::for_seed(5);
        let a = generate_ops(&config);
        let b = generate_ops(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }
}
