//! The RealProducer: RTP in, "Real format" chunks out.
//!
//! The paper's producer was "enhanced with customer input plug in" to
//! accept RTP from the network instead of a capture card. Ours does the
//! same: feed it decoded [`RtpPacket`]s; it groups video packets into
//! frames (marker bit), recodes them into [`RealChunk`]s at a
//! configurable compression ratio, and hands them to whatever sink is
//! attached (normally [`crate::helix::HelixServer`]).

use std::sync::Arc;

use bytes::{BufMut, Bytes};
use mmcs_rtp::packet::{payload_type, RtpPacket};
use mmcs_util::pool;
use mmcs_util::time::SimTime;

/// The media class of a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkKind {
    /// Audio chunk.
    Audio,
    /// Video chunk (one encoded frame).
    Video,
}

/// One "Real format" chunk — a tagged, length-delimited container
/// (substitute for the proprietary format; see `DESIGN.md` §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealChunk {
    /// The stream this chunk belongs to. An `Arc<str>`: every chunk of a
    /// stream (and every delivery of a chunk) shares one name
    /// allocation instead of cloning a `String` per hop.
    pub stream: Arc<str>,
    /// Monotonic chunk sequence within the stream.
    pub seq: u64,
    /// Media timestamp in milliseconds from stream start.
    pub timestamp_ms: u64,
    /// Audio or video.
    pub kind: ChunkKind,
    /// The encoded payload.
    pub data: Bytes,
}

impl RealChunk {
    /// Total size for transport accounting (header + payload).
    pub fn wire_len(&self) -> usize {
        32 + self.stream.len() + self.data.len()
    }
}

/// The producer for one stream.
#[derive(Debug)]
pub struct RealProducer {
    stream: Arc<str>,
    /// Output bytes per input byte (Real encodes tighter than raw RTP).
    compression: f64,
    seq: u64,
    started_at: Option<SimTime>,
    /// Video packets of the in-progress frame.
    pending_frame: Vec<Bytes>,
    produced: Vec<RealChunk>,
}

impl RealProducer {
    /// Creates a producer feeding the named stream at the default 0.85
    /// compression ratio.
    pub fn new(stream: impl Into<Arc<str>>) -> Self {
        Self {
            stream: stream.into(),
            compression: 0.85,
            seq: 0,
            started_at: None,
            pending_frame: Vec::new(),
            produced: Vec::new(),
        }
    }

    /// Overrides the compression ratio, builder style.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn with_compression(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "compression ratio out of range");
        self.compression = ratio;
        self
    }

    /// The stream name.
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// Chunks produced and not yet drained.
    pub fn drain(&mut self) -> Vec<RealChunk> {
        std::mem::take(&mut self.produced)
    }

    /// Feeds one RTP packet observed at `now`. Audio packets become one
    /// chunk each; video packets accumulate until the marker bit closes
    /// the frame.
    pub fn ingest(&mut self, packet: &RtpPacket, now: SimTime) {
        let started = *self.started_at.get_or_insert(now);
        let timestamp_ms = now.saturating_duration_since(started).as_millis();
        match packet.header.payload_type {
            payload_type::PCMU | payload_type::GSM => {
                let data = self.encode(std::slice::from_ref(&packet.payload));
                self.push(ChunkKind::Audio, timestamp_ms, data);
            }
            _ => {
                self.pending_frame.push(packet.payload.clone());
                if packet.header.marker {
                    let parts = std::mem::take(&mut self.pending_frame);
                    let data = self.encode(&parts);
                    self.push(ChunkKind::Video, timestamp_ms, data);
                }
            }
        }
    }

    /// Number of chunks produced so far (including drained ones).
    pub fn produced_count(&self) -> u64 {
        self.seq
    }

    fn encode(&self, parts: &[Bytes]) -> Bytes {
        let total: usize = parts.iter().map(Bytes::len).sum();
        let out_len = (((total as f64) * self.compression).ceil() as usize).max(4);
        // The simulated codec: size changes, content is a tag + fill.
        // Encoded through the buffer pool, so a steady-state producer
        // recycles the same few chunk buffers instead of allocating one
        // per chunk.
        let mut data = pool::acquire(out_len);
        data.put_slice(b"REAL");
        data.put_bytes(0, out_len - 4);
        data.freeze()
    }

    fn push(&mut self, kind: ChunkKind, timestamp_ms: u64, data: Bytes) {
        self.produced.push(RealChunk {
            stream: Arc::clone(&self.stream),
            seq: self.seq,
            timestamp_ms,
            kind,
            data,
        });
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_rtp::packet::RtpHeader;
    use mmcs_util::time::SimDuration;

    fn audio_packet(seq: u16) -> RtpPacket {
        RtpPacket::new(
            RtpHeader::new(payload_type::PCMU, seq, seq as u32 * 160, 1),
            Bytes::from(vec![0u8; 160]),
        )
    }

    fn video_packet(seq: u16, marker: bool, len: usize) -> RtpPacket {
        let mut header = RtpHeader::new(payload_type::H263, seq, 0, 2);
        header.marker = marker;
        RtpPacket::new(header, Bytes::from(vec![0u8; len]))
    }

    #[test]
    fn audio_packets_become_chunks_immediately() {
        let mut producer = RealProducer::new("session-1/audio");
        let t0 = SimTime::ZERO;
        producer.ingest(&audio_packet(0), t0);
        producer.ingest(&audio_packet(1), t0 + SimDuration::from_millis(20));
        let chunks = producer.drain();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].kind, ChunkKind::Audio);
        assert_eq!(chunks[0].seq, 0);
        assert_eq!(chunks[1].seq, 1);
        assert_eq!(chunks[1].timestamp_ms, 20);
        // 0.85 compression of 160 bytes.
        assert_eq!(chunks[0].data.len(), 136);
        assert!(chunks[0].data.starts_with(b"REAL"));
    }

    #[test]
    fn video_frames_close_on_marker() {
        let mut producer = RealProducer::new("session-1/video");
        let t0 = SimTime::ZERO;
        producer.ingest(&video_packet(0, false, 1000), t0);
        producer.ingest(&video_packet(1, false, 1000), t0);
        assert!(producer.drain().is_empty(), "frame still open");
        producer.ingest(&video_packet(2, true, 500), t0);
        let chunks = producer.drain();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].kind, ChunkKind::Video);
        // 2500 bytes compressed at 0.85.
        assert_eq!(chunks[0].data.len(), 2125);
    }

    #[test]
    fn custom_compression_applies() {
        let mut producer = RealProducer::new("s").with_compression(0.5);
        producer.ingest(&audio_packet(0), SimTime::ZERO);
        assert_eq!(producer.drain()[0].data.len(), 80);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_compression_panics() {
        let _ = RealProducer::new("s").with_compression(0.0);
    }

    #[test]
    fn wire_len_accounts_header_and_name() {
        let chunk = RealChunk {
            stream: "abc".into(),
            seq: 0,
            timestamp_ms: 0,
            kind: ChunkKind::Audio,
            data: Bytes::from_static(&[0; 100]),
        };
        assert_eq!(chunk.wire_len(), 32 + 3 + 100);
    }
}
