//! The Helix-style streaming server.
//!
//! Holds named streams fed by [`RealProducer`](crate::producer::RealProducer)
//! instances, serves RTSP control
//! (per-client session state machines) and fans chunks out to playing
//! clients. Chunk delivery is pull-shaped (`take_deliveries`) so any
//! driver — tests, the simulator, the threaded runtime — can move the
//! bytes.

use std::collections::HashMap;
use std::sync::Arc;

use crate::producer::RealChunk;
use crate::rtsp::{RtspMethod, RtspRequest, RtspResponse, RtspSessionState, SessionState};

/// A pending chunk delivery to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The RTSP session id of the receiving client.
    pub session_id: String,
    /// The chunk.
    pub chunk: RealChunk,
}

#[derive(Debug, Default)]
struct Stream {
    /// Ring of recent chunks (description/recovery).
    recent: Vec<RealChunk>,
    fed: u64,
}

#[derive(Debug)]
struct ClientSession {
    state: RtspSessionState,
    /// Interned stream name, shared with the `streams` map key.
    stream: Option<Arc<str>>,
}

/// The streaming server. See the [module docs](self).
#[derive(Debug, Default)]
pub struct HelixServer {
    /// Keyed by interned name: feeding a chunk re-uses the chunk's own
    /// `Arc<str>` instead of cloning a `String` per chunk.
    streams: HashMap<Arc<str>, Stream>,
    clients: HashMap<String, ClientSession>,
    deliveries: Vec<Delivery>,
    next_session: u64,
    /// Recent-chunk retention per stream.
    retain: usize,
}

impl HelixServer {
    /// Creates a server retaining the last 64 chunks per stream.
    pub fn new() -> Self {
        Self {
            retain: 64,
            ..Self::default()
        }
    }

    /// Declares a stream (producers may also feed undeclared streams,
    /// which auto-create).
    pub fn add_stream(&mut self, name: impl Into<Arc<str>>) {
        self.streams.entry(name.into()).or_default();
    }

    /// Names of live streams, sorted.
    pub fn stream_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.streams.keys().map(|k| &**k).collect();
        names.sort_unstable();
        names
    }

    /// Feeds one chunk from a producer; playing clients get deliveries.
    pub fn feed(&mut self, chunk: RealChunk) {
        let stream = self.streams.entry(Arc::clone(&chunk.stream)).or_default();
        stream.fed += 1;
        stream.recent.push(chunk.clone());
        let retain = self.retain;
        if stream.recent.len() > retain {
            let excess = stream.recent.len() - retain;
            stream.recent.drain(..excess);
        }
        for (session_id, client) in &self.clients {
            if client.state.state() == SessionState::Playing
                && client.stream.as_deref() == Some(&*chunk.stream)
            {
                self.deliveries.push(Delivery {
                    session_id: session_id.clone(),
                    chunk: chunk.clone(),
                });
            }
        }
    }

    /// Takes all pending deliveries.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Total chunks fed to a stream.
    pub fn fed_count(&self, stream: &str) -> u64 {
        self.streams.get(stream).map_or(0, |s| s.fed)
    }

    /// Number of live client sessions.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Handles one RTSP request.
    pub fn handle_rtsp(&mut self, request: &RtspRequest) -> RtspResponse {
        match request.method {
            RtspMethod::Options => RtspResponse::to_request(request, 200, "OK")
                .with_header("Public", "OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN"),
            RtspMethod::Describe => {
                let Some(stream) = self.stream_of_url(&request.url) else {
                    return RtspResponse::to_request(request, 404, "Stream Not Found");
                };
                let sdp = format!(
                    "v=0\r\no=helix 1 1 IN IP4 helix.mmcs\r\ns={stream}\r\nm=application 0 REAL 0\r\n"
                );
                RtspResponse::to_request(request, 200, "OK").with_body("application/sdp", sdp)
            }
            RtspMethod::Setup => {
                // Intern against the map key so the session shares the
                // stream's existing name allocation.
                let Some(stream) = self
                    .stream_of_url(&request.url)
                    .and_then(|s| self.streams.get_key_value(s))
                    .map(|(key, _)| Arc::clone(key))
                else {
                    return RtspResponse::to_request(request, 404, "Stream Not Found");
                };
                self.next_session += 1;
                let session_id = format!("helix-{}", self.next_session);
                let mut state = RtspSessionState::new();
                state.apply(RtspMethod::Setup).expect("Init allows SETUP");
                self.clients.insert(
                    session_id.clone(),
                    ClientSession {
                        state,
                        stream: Some(stream),
                    },
                );
                RtspResponse::to_request(request, 200, "OK")
                    .with_header("Session", session_id)
                    .with_header("Transport", "REAL/TCP;interleaved")
            }
            RtspMethod::Play | RtspMethod::Pause | RtspMethod::Teardown => {
                let Some(session_id) = request.header("Session").map(str::to_owned) else {
                    return RtspResponse::to_request(request, 454, "Session Not Found");
                };
                let Some(client) = self.clients.get_mut(&session_id) else {
                    return RtspResponse::to_request(request, 454, "Session Not Found");
                };
                match client.state.apply(request.method) {
                    Ok(()) => {
                        if request.method == RtspMethod::Teardown {
                            self.clients.remove(&session_id);
                        }
                        RtspResponse::to_request(request, 200, "OK")
                            .with_header("Session", session_id)
                    }
                    Err(code) => RtspResponse::to_request(
                        request,
                        code,
                        "Method Not Valid in This State",
                    ),
                }
            }
        }
    }

    /// Extracts the stream path from `rtsp://host/<stream...>`, requiring
    /// the stream to exist.
    fn stream_of_url<'a>(&'a self, url: &'a str) -> Option<&'a str> {
        let path = url.strip_prefix("rtsp://")?;
        let (_, stream) = path.split_once('/')?;
        self.streams.get(stream).map(|_| stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::ChunkKind;
    use bytes::Bytes;

    fn chunk(stream: &str, seq: u64) -> RealChunk {
        RealChunk {
            stream: stream.into(),
            seq,
            timestamp_ms: seq * 40,
            kind: ChunkKind::Video,
            data: Bytes::from_static(b"REALxxxx"),
        }
    }

    fn setup_playing_client(server: &mut HelixServer, stream: &str) -> String {
        let setup = RtspRequest::new(RtspMethod::Setup, format!("rtsp://helix/{stream}"), 1);
        let response = server.handle_rtsp(&setup);
        assert_eq!(response.code, 200, "{response:?}");
        let session = response.header("Session").unwrap().to_owned();
        let play = RtspRequest::new(RtspMethod::Play, format!("rtsp://helix/{stream}"), 2)
            .with_header("Session", &session);
        assert_eq!(server.handle_rtsp(&play).code, 200);
        session
    }

    #[test]
    fn describe_lists_the_stream() {
        let mut server = HelixServer::new();
        server.add_stream("session-7/video");
        let describe =
            RtspRequest::new(RtspMethod::Describe, "rtsp://helix/session-7/video", 1);
        let response = server.handle_rtsp(&describe);
        assert_eq!(response.code, 200);
        assert!(response.body.contains("s=session-7/video"));
        // Unknown stream 404s.
        let missing = RtspRequest::new(RtspMethod::Describe, "rtsp://helix/nope", 2);
        assert_eq!(server.handle_rtsp(&missing).code, 404);
    }

    #[test]
    fn playing_clients_receive_fed_chunks() {
        let mut server = HelixServer::new();
        server.add_stream("s1");
        server.add_stream("s2");
        let session = setup_playing_client(&mut server, "s1");
        server.feed(chunk("s1", 0));
        server.feed(chunk("s2", 0)); // different stream: not delivered
        server.feed(chunk("s1", 1));
        let deliveries = server.take_deliveries();
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.session_id == session));
        assert_eq!(deliveries[1].chunk.seq, 1);
        assert_eq!(server.fed_count("s1"), 2);
    }

    #[test]
    fn paused_clients_receive_nothing() {
        let mut server = HelixServer::new();
        server.add_stream("s1");
        let session = setup_playing_client(&mut server, "s1");
        let pause = RtspRequest::new(RtspMethod::Pause, "rtsp://helix/s1", 3)
            .with_header("Session", &session);
        assert_eq!(server.handle_rtsp(&pause).code, 200);
        server.feed(chunk("s1", 0));
        assert!(server.take_deliveries().is_empty());
    }

    #[test]
    fn teardown_removes_session() {
        let mut server = HelixServer::new();
        server.add_stream("s1");
        let session = setup_playing_client(&mut server, "s1");
        assert_eq!(server.client_count(), 1);
        let teardown = RtspRequest::new(RtspMethod::Teardown, "rtsp://helix/s1", 4)
            .with_header("Session", &session);
        assert_eq!(server.handle_rtsp(&teardown).code, 200);
        assert_eq!(server.client_count(), 0);
        // Further PLAY on the dead session 454s.
        let play = RtspRequest::new(RtspMethod::Play, "rtsp://helix/s1", 5)
            .with_header("Session", &session);
        assert_eq!(server.handle_rtsp(&play).code, 454);
    }

    #[test]
    fn play_without_setup_rejected() {
        let mut server = HelixServer::new();
        server.add_stream("s1");
        let play = RtspRequest::new(RtspMethod::Play, "rtsp://helix/s1", 1);
        assert_eq!(server.handle_rtsp(&play).code, 454); // no session header
    }

    #[test]
    fn retention_is_bounded() {
        let mut server = HelixServer::new();
        server.add_stream("s1");
        for seq in 0..200 {
            server.feed(chunk("s1", seq));
        }
        assert!(server.streams["s1"].recent.len() <= 64);
        assert_eq!(server.fed_count("s1"), 200);
    }
}
