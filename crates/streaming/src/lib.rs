//! The streaming service: RealProducer, Helix-style server, RTSP.
//!
//! "The Real Servers including a Real Producer and a Helix Server
//! provide a streaming service to real-player and windows media player.
//! Enhanced with customer input plug in, our Real Producer can receive
//! RTP audio and video packets from network, encode them into Real
//! format and submit them to the Helix Server. Real-players … use RTSP
//! to connect the Helix Server and choose the multimedia streams"
//! (§3.2). This crate builds that pipeline:
//!
//! * [`rtsp`] — an RTSP (RFC 2326 subset) text codec and the per-client
//!   session state machine (OPTIONS/DESCRIBE/SETUP/PLAY/PAUSE/TEARDOWN).
//! * [`producer`] — the RealProducer: RTP in, "Real format" chunks out
//!   (a tagged container; see `DESIGN.md` §2 for the substitution).
//! * [`helix`] — the Helix-style server: named streams fed by
//!   producers, RTSP-controlled client sessions, chunk fan-out.
//! * [`archive`] — conference archiving: record chunk streams, replay
//!   them time-shifted (the paper's Admire partner did "conference
//!   archiving service"; Global-MMCS exposes the same).

pub mod archive;
pub mod helix;
pub mod producer;
pub mod rtsp;

pub use helix::HelixServer;
pub use producer::{RealChunk, RealProducer};
pub use rtsp::{RtspRequest, RtspResponse};
