//! RTSP (RFC 2326 subset): text codec and session state machine.

use core::fmt;

/// An RTSP method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtspMethod {
    /// Capability query.
    Options,
    /// Fetch the stream description (SDP).
    Describe,
    /// Create a transport session for one stream.
    Setup,
    /// Start (or resume) delivery.
    Play,
    /// Pause delivery.
    Pause,
    /// Destroy the session.
    Teardown,
}

impl RtspMethod {
    /// Canonical token.
    pub fn as_str(self) -> &'static str {
        match self {
            RtspMethod::Options => "OPTIONS",
            RtspMethod::Describe => "DESCRIBE",
            RtspMethod::Setup => "SETUP",
            RtspMethod::Play => "PLAY",
            RtspMethod::Pause => "PAUSE",
            RtspMethod::Teardown => "TEARDOWN",
        }
    }

    /// Parses a token.
    pub fn parse(token: &str) -> Option<RtspMethod> {
        Some(match token {
            "OPTIONS" => RtspMethod::Options,
            "DESCRIBE" => RtspMethod::Describe,
            "SETUP" => RtspMethod::Setup,
            "PLAY" => RtspMethod::Play,
            "PAUSE" => RtspMethod::Pause,
            "TEARDOWN" => RtspMethod::Teardown,
            _ => return None,
        })
    }
}

impl fmt::Display for RtspMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An RTSP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtspRequest {
    /// The method.
    pub method: RtspMethod,
    /// The stream URL (`rtsp://helix.mmcs/session-7/video`).
    pub url: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
}

impl RtspRequest {
    /// Builds a request with a CSeq.
    pub fn new(method: RtspMethod, url: impl Into<String>, cseq: u32) -> Self {
        Self {
            method,
            url: url.into(),
            headers: vec![("CSeq".to_owned(), cseq.to_string())],
        }
    }

    /// Appends a header, builder style.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// First value of a header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Renders in wire format.
    pub fn to_wire(&self) -> String {
        let mut out = format!("{} {} RTSP/1.0\r\n", self.method, self.url);
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("\r\n");
        out
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRtspError`] on malformed start lines or headers.
    pub fn parse(wire: &str) -> Result<RtspRequest, ParseRtspError> {
        let mut lines = wire.split("\r\n");
        let start = lines.next().ok_or(ParseRtspError::Empty)?;
        let mut parts = start.split(' ');
        let method = parts
            .next()
            .and_then(RtspMethod::parse)
            .ok_or_else(|| ParseRtspError::BadStartLine(start.to_owned()))?;
        let url = parts
            .next()
            .ok_or_else(|| ParseRtspError::BadStartLine(start.to_owned()))?
            .to_owned();
        if parts.next() != Some("RTSP/1.0") {
            return Err(ParseRtspError::BadStartLine(start.to_owned()));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ParseRtspError::BadHeader(line.to_owned()))?;
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
        Ok(RtspRequest {
            method,
            url,
            headers,
        })
    }
}

/// An RTSP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtspResponse {
    /// Status code.
    pub code: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Body (SDP for DESCRIBE).
    pub body: String,
}

impl RtspResponse {
    /// Builds a response echoing the request's CSeq.
    pub fn to_request(request: &RtspRequest, code: u16, reason: impl Into<String>) -> Self {
        let mut headers = Vec::new();
        if let Some(cseq) = request.header("CSeq") {
            headers.push(("CSeq".to_owned(), cseq.to_owned()));
        }
        Self {
            code,
            reason: reason.into(),
            headers,
            body: String::new(),
        }
    }

    /// Appends a header, builder style.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body, builder style.
    pub fn with_body(mut self, content_type: &str, body: impl Into<String>) -> Self {
        self.headers
            .push(("Content-Type".to_owned(), content_type.to_owned()));
        self.body = body.into();
        self
    }

    /// First value of a header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Renders in wire format.
    pub fn to_wire(&self) -> String {
        let mut out = format!("RTSP/1.0 {} {}\r\n", self.code, self.reason);
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        out.push_str(&self.body);
        out
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRtspError`] on malformed content.
    pub fn parse(wire: &str) -> Result<RtspResponse, ParseRtspError> {
        let (head, body) = match wire.find("\r\n\r\n") {
            Some(idx) => (&wire[..idx], &wire[idx + 4..]),
            None => (wire, ""),
        };
        let mut lines = head.split("\r\n");
        let start = lines.next().ok_or(ParseRtspError::Empty)?;
        let rest = start
            .strip_prefix("RTSP/1.0 ")
            .ok_or_else(|| ParseRtspError::BadStartLine(start.to_owned()))?;
        let (code, reason) = rest
            .split_once(' ')
            .ok_or_else(|| ParseRtspError::BadStartLine(start.to_owned()))?;
        let code: u16 = code
            .parse()
            .map_err(|_| ParseRtspError::BadStartLine(start.to_owned()))?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ParseRtspError::BadHeader(line.to_owned()))?;
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
        Ok(RtspResponse {
            code,
            reason: reason.to_owned(),
            headers,
            body: body.to_owned(),
        })
    }
}

/// Error parsing RTSP text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRtspError {
    /// Nothing to parse.
    Empty,
    /// Malformed start line / unknown method.
    BadStartLine(String),
    /// Header line without a colon.
    BadHeader(String),
}

impl fmt::Display for ParseRtspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRtspError::Empty => write!(f, "empty rtsp message"),
            ParseRtspError::BadStartLine(l) => write!(f, "bad rtsp start line {l:?}"),
            ParseRtspError::BadHeader(h) => write!(f, "bad rtsp header {h:?}"),
        }
    }
}

impl std::error::Error for ParseRtspError {}

/// Client session states (RFC 2326 §A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// No transport set up.
    Init,
    /// SETUP done.
    Ready,
    /// PLAY active.
    Playing,
}

/// The per-client RTSP session state machine the server keeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtspSessionState {
    state: SessionState,
}

impl RtspSessionState {
    /// Creates a fresh (Init) session.
    pub fn new() -> Self {
        Self {
            state: SessionState::Init,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Applies a method; returns `Err(code)` with the RTSP error status
    /// when the method is invalid in this state.
    pub fn apply(&mut self, method: RtspMethod) -> Result<(), u16> {
        use RtspMethod::*;
        use SessionState::*;
        self.state = match (self.state, method) {
            (_, Options | Describe) => self.state,
            (Init, Setup) => Ready,
            (Ready | Playing, Setup) => return Err(455), // aggregate not allowed here
            (Ready, Play) => Playing,
            (Playing, Play) => Playing,
            (Playing, Pause) => Ready,
            (Ready, Pause) => Ready,
            (Init, Play | Pause) => return Err(455),
            (_, Teardown) => Init,
        };
        Ok(())
    }
}

impl Default for RtspSessionState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let request = RtspRequest::new(RtspMethod::Setup, "rtsp://h/s1/video", 2)
            .with_header("Transport", "RTP/AVP;unicast;client_port=5000-5001");
        let wire = request.to_wire();
        assert!(wire.starts_with("SETUP rtsp://h/s1/video RTSP/1.0\r\n"));
        assert_eq!(RtspRequest::parse(&wire).unwrap(), request);
    }

    #[test]
    fn response_round_trip() {
        let request = RtspRequest::new(RtspMethod::Describe, "rtsp://h/s1", 3);
        let response = RtspResponse::to_request(&request, 200, "OK")
            .with_body("application/sdp", "v=0\r\n");
        let wire = response.to_wire();
        let parsed = RtspResponse::parse(&wire).unwrap();
        assert_eq!(parsed.code, 200);
        assert_eq!(parsed.header("CSeq"), Some("3"));
        assert_eq!(parsed.body, "v=0\r\n");
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            RtspRequest::parse("TELEPORT rtsp://x RTSP/1.0\r\n\r\n"),
            Err(ParseRtspError::BadStartLine(_))
        ));
        assert!(matches!(
            RtspRequest::parse("PLAY rtsp://x HTTP/1.1\r\n\r\n"),
            Err(ParseRtspError::BadStartLine(_))
        ));
        assert!(matches!(
            RtspRequest::parse("PLAY rtsp://x RTSP/1.0\r\nbadheader\r\n\r\n"),
            Err(ParseRtspError::BadHeader(_))
        ));
        assert!(matches!(
            RtspResponse::parse("HTTP/1.0 200 OK\r\n\r\n"),
            Err(ParseRtspError::BadStartLine(_))
        ));
    }

    #[test]
    fn state_machine_happy_path() {
        let mut session = RtspSessionState::new();
        assert_eq!(session.state(), SessionState::Init);
        session.apply(RtspMethod::Describe).unwrap();
        session.apply(RtspMethod::Setup).unwrap();
        assert_eq!(session.state(), SessionState::Ready);
        session.apply(RtspMethod::Play).unwrap();
        assert_eq!(session.state(), SessionState::Playing);
        session.apply(RtspMethod::Pause).unwrap();
        assert_eq!(session.state(), SessionState::Ready);
        session.apply(RtspMethod::Play).unwrap();
        session.apply(RtspMethod::Teardown).unwrap();
        assert_eq!(session.state(), SessionState::Init);
    }

    #[test]
    fn invalid_transitions_yield_455() {
        let mut session = RtspSessionState::new();
        assert_eq!(session.apply(RtspMethod::Play), Err(455));
        assert_eq!(session.apply(RtspMethod::Pause), Err(455));
        session.apply(RtspMethod::Setup).unwrap();
        assert_eq!(session.apply(RtspMethod::Setup), Err(455));
    }
}
