//! Conference archiving: record chunk streams, replay them time-shifted.

use std::collections::HashMap;

use mmcs_util::time::{SimDuration, SimTime};

use crate::producer::RealChunk;

/// One archived recording.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    chunks: Vec<RealChunk>,
}

impl Recording {
    /// Chunks in recorded order.
    pub fn chunks(&self) -> &[RealChunk] {
        &self.chunks
    }

    /// Media duration (first to last chunk timestamp).
    pub fn duration(&self) -> SimDuration {
        match (self.chunks.first(), self.chunks.last()) {
            (Some(first), Some(last)) => {
                SimDuration::from_millis(last.timestamp_ms - first.timestamp_ms)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Replays the recording as `(emit_at, chunk)` pairs starting at
    /// `start`, preserving original pacing.
    pub fn playback_schedule(&self, start: SimTime) -> Vec<(SimTime, RealChunk)> {
        let Some(first) = self.chunks.first() else {
            return Vec::new();
        };
        let base = first.timestamp_ms;
        self.chunks
            .iter()
            .map(|chunk| {
                (
                    start + SimDuration::from_millis(chunk.timestamp_ms - base),
                    chunk.clone(),
                )
            })
            .collect()
    }
}

/// Records chunk streams by name.
#[derive(Debug, Default)]
pub struct Archive {
    recordings: HashMap<String, Recording>,
    recording: HashMap<String, bool>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or resumes) recording a stream.
    pub fn start(&mut self, stream: impl Into<String>) {
        let stream = stream.into();
        self.recordings.entry(stream.clone()).or_default();
        self.recording.insert(stream, true);
    }

    /// Stops recording a stream (the recording is kept).
    pub fn stop(&mut self, stream: &str) {
        self.recording.insert(stream.to_owned(), false);
    }

    /// Whether a stream is actively recording.
    pub fn is_recording(&self, stream: &str) -> bool {
        self.recording.get(stream).copied().unwrap_or(false)
    }

    /// Offers a chunk; it is stored only while its stream is recording.
    pub fn observe(&mut self, chunk: &RealChunk) {
        if !self.is_recording(&chunk.stream) {
            return;
        }
        // `start()` creates the recording when it flips the flag, so the
        // lookup always hits; a miss would just drop the chunk.
        if let Some(recording) = self.recordings.get_mut(&*chunk.stream) {
            recording.chunks.push(chunk.clone());
        }
    }

    /// Fetches a recording.
    pub fn recording(&self, stream: &str) -> Option<&Recording> {
        self.recordings.get(stream)
    }

    /// Names of all recordings, sorted.
    pub fn recorded_streams(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.recordings.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::ChunkKind;
    use bytes::Bytes;

    fn chunk(stream: &str, seq: u64, timestamp_ms: u64) -> RealChunk {
        RealChunk {
            stream: stream.into(),
            seq,
            timestamp_ms,
            kind: ChunkKind::Audio,
            data: Bytes::from_static(b"REAL"),
        }
    }

    #[test]
    fn records_only_while_started() {
        let mut archive = Archive::new();
        archive.observe(&chunk("s", 0, 0)); // not recording yet
        archive.start("s");
        archive.observe(&chunk("s", 1, 20));
        archive.observe(&chunk("s", 2, 40));
        archive.stop("s");
        archive.observe(&chunk("s", 3, 60));
        let recording = archive.recording("s").unwrap();
        assert_eq!(recording.chunks().len(), 2);
        assert_eq!(recording.duration(), SimDuration::from_millis(20));
        assert!(!archive.is_recording("s"));
        assert_eq!(archive.recorded_streams(), vec!["s"]);
    }

    #[test]
    fn playback_preserves_pacing_from_new_start() {
        let mut archive = Archive::new();
        archive.start("s");
        archive.observe(&chunk("s", 0, 100));
        archive.observe(&chunk("s", 1, 140));
        archive.observe(&chunk("s", 2, 220));
        let start = SimTime::from_secs(1000);
        let schedule = archive.recording("s").unwrap().playback_schedule(start);
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule[0].0, start);
        assert_eq!(schedule[1].0, start + SimDuration::from_millis(40));
        assert_eq!(schedule[2].0, start + SimDuration::from_millis(120));
    }

    #[test]
    fn empty_recording_behaves() {
        let recording = Recording::default();
        assert_eq!(recording.duration(), SimDuration::ZERO);
        assert!(recording.playback_schedule(SimTime::ZERO).is_empty());
    }
}
