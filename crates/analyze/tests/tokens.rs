//! Golden-token tests for the hand-rolled lexer: the full corpus stream
//! is pinned byte-for-byte so any lexer change that re-classifies,
//! splits, or drops a token shows up as a readable diff against
//! `fixtures/lexer_corpus.tokens`.

use mmcs_analyze::lexer::{lex, Tok, TokKind};

const CORPUS: &str = include_str!("fixtures/lexer_corpus.rs");
const GOLDEN: &str = include_str!("fixtures/lexer_corpus.tokens");

/// One line per token: `<line>\t<kind>\t<text>`.
fn render(toks: &[Tok]) -> String {
    toks.iter()
        .map(|t| format!("{}\t{:?}\t{}\n", t.line, t.kind, t.text))
        .collect()
}

#[test]
fn corpus_token_stream_matches_golden() {
    let actual = render(&lex(CORPUS));
    assert_eq!(
        actual, GOLDEN,
        "lexer output drifted from fixtures/lexer_corpus.tokens;\n\
         if the change is intentional, re-pin the golden file.\n\
         actual stream:\n{actual}"
    );
}

#[test]
fn comments_never_reach_the_stream() {
    // Both comment styles in the corpus mention identifier-looking words
    // ("code", "nested", "comment") that must not survive the lex.
    let toks = lex(CORPUS);
    assert!(toks.iter().all(|t| t.line >= 3), "lines 1-2 are comments");
    assert!(!toks.iter().any(|t| t.is_ident("nested")));
}

#[test]
fn raw_identifiers_normalize() {
    let toks = lex(CORPUS);
    assert!(
        toks.iter().any(|t| t.is_ident("match") && t.line == 3),
        "`r#match` must lex as the plain identifier `match`"
    );
}

#[test]
fn nested_generics_end_in_single_closers_but_shifts_stay_adjacent() {
    // `Vec<Vec<u8>>` contributes two separate `>` Puncts (plus one from
    // `Option<u8>` on the same line); the `>>` shift on line 11 also
    // lexes as two `>` tokens — passes only ever see single-char
    // closers.
    let toks = lex(CORPUS);
    let closers = toks.iter().filter(|t| t.line == 3 && t.is_punct(">")).count();
    assert_eq!(closers, 3, "`>>` must never be one token");
    let shift = toks.iter().filter(|t| t.line == 11 && t.is_punct(">")).count();
    assert_eq!(shift, 2, "the `>>` shift operator is two `>` tokens");
}

#[test]
fn string_like_literals_are_single_tokens() {
    let toks = lex(CORPUS);
    let strs = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.line)
        .collect::<Vec<_>>();
    // r##".."## (4), b".." (5), ".." with escapes (8).
    assert_eq!(strs, vec![4, 5, 8]);
    let chars = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.line)
        .collect::<Vec<_>>();
    assert_eq!(chars, vec![6, 7], "'x' and '\\n' are single Char tokens");
    assert!(
        toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'static"),
        "lifetimes must not be confused with char literals"
    );
}

#[test]
fn glued_punctuation_is_exactly_three_pairs() {
    // `::`, `->`, `=>` glue; everything else is single-char.
    let toks = lex("a::b -> c => d += e .. f");
    let puncts: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Punct)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(puncts, vec!["::", "->", "=>", "+", "=", ".", "."]);
}
