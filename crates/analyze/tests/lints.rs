//! Fixture tests for the lint engine: exact diagnostics over known-bad
//! and known-clean inputs, the allowlist round trip, and a self-check
//! that the real workspace is clean under its checked-in allowlist.
//!
//! The fixtures live under `fixtures/` as plain `.rs` files (cargo does
//! not compile them; the workspace walker skips `fixtures` directories).
//! They are fed to the engine under scoped fake paths, because every
//! lint's coverage is keyed off the workspace-relative path.

use std::path::Path;

use mmcs_analyze::allowlist::render_entry;
use mmcs_analyze::{apply_allowlist, check_workspace, lint_sources};

const KNOWN_BAD: &str = include_str!("fixtures/known_bad.rs");
const KNOWN_CLEAN: &str = include_str!("fixtures/known_clean.rs");
const SHIM_FIXTURE: &str = include_str!("fixtures/shim_fixture.rs");
const HOT_PATH_BAD: &str = include_str!("fixtures/hot_path_bad.rs");

/// The strictest scope: a broker library file is covered by every
/// per-file lint (panic reachability is a call-graph pass and fires
/// only on code reachable from the hot-path roots, so the bare
/// `.unwrap()`/`panic!` lines in the fixture stay silent here — see
/// `tests/passes.rs` for the reachable case).
const BROKER_PATH: &str = "crates/broker/src/fixture.rs";

#[test]
fn known_bad_produces_exact_diagnostics() {
    let violations = lint_sources(&[(BROKER_PATH, KNOWN_BAD)]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(
        got,
        vec![
            ("no-std-sync-locks", 5),
            ("pub-item-doc-coverage", 7),
            ("pub-item-doc-coverage", 9),
            ("no-direct-instant-now", 11),
        ],
        "full diagnostic set over fixtures/known_bad.rs: {violations:#?}"
    );
    assert!(violations[1].message.contains("`Undocumented`"));
    assert!(violations[2].message.contains("`leaky`"));
    assert_eq!(violations[0].path, BROKER_PATH);
    // Snippets are whitespace-normalized source lines (allowlist keys).
    assert_eq!(violations[0].snippet, "use std::sync::Mutex;");
}

#[test]
fn scope_is_per_lint_not_global() {
    // The same bad file in a crate outside the panic-free and
    // doc-covered sets still trips the workspace-wide lock and clock
    // lints — and nothing else.
    let violations = lint_sources(&[("crates/util/src/fixture.rs", KNOWN_BAD)]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(
        got,
        vec![("no-std-sync-locks", 5), ("no-direct-instant-now", 11)]
    );
}

#[test]
fn known_clean_is_silent() {
    let violations = lint_sources(&[(BROKER_PATH, KNOWN_CLEAN)]);
    assert!(
        violations.is_empty(),
        "known_clean.rs must produce no diagnostics: {violations:#?}"
    );
}

#[test]
fn shim_drift_depends_on_workspace_usage() {
    let shim = ("crates/shims/fake/src/lib.rs", SHIM_FIXTURE);
    // `orphan` unused by the rest of the workspace: drift.
    let violations = lint_sources(&[shim, ("crates/broker/src/user.rs", "fn f() { fake::used(); }\n")]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(got, vec![("shim-api-drift", 6)]);
    assert!(violations[0].message.contains("`orphan`"));
    // Both exports exercised: silence.
    let violations = lint_sources(&[
        shim,
        ("crates/broker/src/user.rs", "fn f() { fake::used(); fake::orphan(); }\n"),
    ]);
    assert!(violations.is_empty(), "{violations:#?}");
    // Usage inside the shim itself does not count.
    let violations = lint_sources(&[
        shim,
        ("crates/shims/fake/src/extra.rs", "fn g() { crate::used(); crate::orphan(); }\n"),
    ]);
    assert_eq!(violations.len(), 2, "self-use is not workspace use");
}

#[test]
fn hot_path_copy_flagged_only_on_hot_path_modules() {
    // Fed under a real hot-path module path: exact diagnostics, with
    // comment mentions and `#[cfg(test)]` code skipped.
    let violations = lint_sources(&[("crates/broker/src/sharded.rs", HOT_PATH_BAD)]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(
        got,
        vec![
            ("no-hot-path-payload-copy", 5),
            ("no-hot-path-payload-copy", 8),
            ("no-hot-path-payload-copy", 9),
        ],
        "{violations:#?}"
    );
    assert!(violations[0].message.contains("`.to_vec()`"));
    assert!(violations[1].message.contains("`Vec<Vec<u8>>`"));
    // The same file under a non-hot-path module is silent: scoping is
    // per-file, not per-crate.
    let violations = lint_sources(&[(BROKER_PATH, HOT_PATH_BAD)]);
    assert!(
        violations.is_empty(),
        "cold modules may copy freely: {violations:#?}"
    );
}

#[test]
fn allowlist_round_trip_suppresses_everything() {
    let violations = lint_sources(&[(BROKER_PATH, KNOWN_BAD)]);
    let count = violations.len();
    let allow: String = violations
        .iter()
        .map(|v| render_entry(v).replace("TODO justify", "fixture: reviewed") + "\n")
        .collect();
    let (kept, suppressed, stale, errors) = apply_allowlist(&allow, violations);
    assert!(kept.is_empty(), "every violation must be suppressed: {kept:#?}");
    assert_eq!(suppressed.len(), count);
    assert!(stale.is_empty());
    assert!(errors.is_empty());
}

#[test]
fn stale_allowlist_entries_are_reported() {
    // An entry whose code was fixed must surface as stale, not vanish.
    let allow = "panic-reachable-hot-path :: crates/broker/src/fixture.rs :: let gone = fixed.unwrap(); :: was fixed\n";
    let (kept, suppressed, stale, errors) =
        apply_allowlist(allow, lint_sources(&[(BROKER_PATH, KNOWN_CLEAN)]));
    assert!(kept.is_empty() && suppressed.is_empty() && errors.is_empty());
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].line, 1);
    assert_eq!(stale[0].snippet, "let gone = fixed.unwrap();");
}

#[test]
fn allowlist_requires_a_justification() {
    let allow = "panic-reachable-hot-path :: p.rs :: x.unwrap();\n\
                 panic-reachable-hot-path :: p.rs :: y.unwrap(); ::   \n";
    let (_, _, _, errors) = apply_allowlist(allow, Vec::new());
    assert_eq!(errors.len(), 2, "missing and blank justifications are errors");
}

#[test]
fn real_workspace_is_clean_under_checked_in_allowlist() {
    // `cargo test` itself enforces the lints: the repository must stay
    // clean with analyze.allow, and analyze.allow must carry no stale
    // entries or parse errors.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 100, "walker must see the workspace");
    assert!(
        report.is_clean(),
        "violations: {:#?}\nstale: {:#?}\nerrors: {:#?}",
        report.violations,
        report.stale,
        report.allowlist_errors
    );
}
