//! Fixture tests for the call-graph passes: exact `(pass, line)`
//! diagnostics over seeded inputs, fed under the workspace-relative
//! fake paths that put them in scope (roots are keyed by path suffix).

use mmcs_analyze::callgraph::CallGraph;
use mmcs_analyze::lint_sources;
use mmcs_analyze::passes::lock_order;
use mmcs_analyze::scan::SourceFile;

const LOCK_CYCLE: &str = include_str!("fixtures/lock_cycle.rs");
const PANIC_ROOTS: &str = include_str!("fixtures/panic_roots.rs");
const BLOCKING_WORKER: &str = include_str!("fixtures/blocking_worker.rs");

#[test]
fn seeded_lock_cycle_is_detected_statically() {
    let violations = lint_sources(&[("crates/broker/src/fixture.rs", LOCK_CYCLE)]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(
        got,
        vec![("lock-order-cycle", 19)],
        "exactly the seeded inversion, anchored at the closing edge: {violations:#?}"
    );
    assert!(violations[0].message.contains("deadlock"));
    assert!(violations[0].message.contains('a') && violations[0].message.contains('b'));
}

#[test]
fn try_lock_closes_no_cycle() {
    // Drop `thread_two` from the fixture: only the consistent order and
    // the try-acquire remain (`b held, try_lock(a)` — the reverse of
    // thread_one's order, but non-blocking), so the pass must be silent.
    let trimmed: String = LOCK_CYCLE
        .lines()
        .take_while(|l| !l.starts_with("fn thread_two"))
        .chain(LOCK_CYCLE.lines().skip_while(|l| !l.starts_with("fn try_is_not")))
        .map(|l| l.to_string() + "\n")
        .collect();
    let violations = lint_sources(&[("crates/broker/src/fixture.rs", &trimmed)]);
    assert!(
        violations.is_empty(),
        "one consistent order plus a try_lock is not a cycle: {violations:#?}"
    );
}

#[test]
fn panic_constructs_reachable_from_roots_exact_lines() {
    let violations = lint_sources(&[("crates/broker/src/node.rs", PANIC_ROOTS)]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(
        got,
        vec![
            ("panic-reachable-hot-path", 17), // .unwrap()
            ("panic-reachable-hot-path", 23), // frame[idx] dynamic index
            ("panic-reachable-hot-path", 25), // panic!
            ("panic-reachable-hot-path", 31), // .expect(..)
        ],
        "{violations:#?}"
    );
    // The diagnostic carries the call chain from the root.
    assert!(
        violations[0].message.contains("handle_into"),
        "chain must start at the root: {}",
        violations[0].message
    );
    // `cold_helper`'s unwrap (line 36) is unreachable: no finding.
    assert!(!got.iter().any(|&(_, line)| line > 31));
    // Const-indexed subscripts (frame[0], frame[HEADER_LEN..]) pass.
    assert!(!got.iter().any(|&(_, line)| line == 11 || line == 18));
}

#[test]
fn unrooted_file_reports_nothing() {
    // Same content under a path with no declared roots: the panic pass
    // has nowhere to start, so even `.unwrap()` stays silent.
    let violations = lint_sources(&[("crates/h323/src/fixture.rs", PANIC_ROOTS)]);
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn blocking_calls_in_worker_exact_lines() {
    let violations = lint_sources(&[("crates/broker/src/sharded.rs", BLOCKING_WORKER)]);
    let got: Vec<(&str, usize)> = violations.iter().map(|v| (v.lint, v.line)).collect();
    assert_eq!(
        got,
        vec![
            ("blocking-in-shard-worker", 32), // thread::sleep in step
            ("blocking-in-shard-worker", 39), // recv_timeout in helper
        ],
        "{violations:#?}"
    );
    // The ingress `.recv()` in `run` (line 25) is the sanctioned
    // parking point; `cold_join`'s `.join()` (line 43) is unreachable.
    assert!(!got.iter().any(|&(_, line)| line == 25 || line == 43));
}

#[test]
fn lock_graph_dot_renders_classes_and_edges() {
    let src = SourceFile::parse("crates/broker/src/fixture.rs", LOCK_CYCLE);
    let files = vec![mmcs_analyze::parse::parse_file(src)];
    let graph = CallGraph::build(&files, |_, _| true);
    let lg = lock_order::build(&files, &graph);
    let dot = lg.to_dot(&files);
    assert!(dot.starts_with("digraph"), "{dot}");
    assert!(
        dot.contains("\"a (crates/broker/src/fixture.rs)\""),
        "class nodes are labelled `name (file)`: {dot}"
    );
    assert!(
        dot.contains("-> \"b (crates/broker/src/fixture.rs)\" [label=\"line 14\"]")
            && dot.contains("-> \"a (crates/broker/src/fixture.rs)\" [label=\"line 19\"]"),
        "both inversion edges render with their acquisition lines: {dot}"
    );
}
