// Line comment with `code` that must vanish.
/* outer /* nested block */ still one comment */
pub fn r#match(x: &mut Vec<Vec<u8>>) -> Option<u8> {
    let s = r##"raw "string" with # hashes"##;
    let bytes = b"\x00bytes";
    let c = 'x';
    let nl = '\n';
    let lt: &'static str = "quoted \"escape\"";
    let hex = 0xFF_u64;
    let float = 1.5;
    let shifted = (hex as u8) >> 2;
    let arrow = |v: u8| -> u8 { v };
    match x.pop() {
        Some(head) => arrow(head.first().copied().unwrap_or(shifted)),
        None => Option::<u8>::None,
    }
}
