//! Shim fixture: scanned as `crates/shims/fake/src/lib.rs`. Whether
//! `orphan` is drift depends on the user file the test pairs it with.

pub fn used() {}

pub fn orphan() {}
