//! Known-clean fixture: near-miss constructs that must produce zero
//! diagnostics even under the strictest path scope
//! (`crates/broker/src/fixture.rs`). Every line here is a trap a naive
//! substring scanner would fall into.

use parking_lot::Mutex;

/// Documented, and handles errors without panicking.
pub fn careful(input: &str) -> Option<u32> {
    // Comments may say .unwrap() or panic! or std::sync::Mutex freely.
    let fallback = "strings with .unwrap() and Instant::now() are data";
    let _ = fallback;
    input.parse().ok()
}

/// The `unwrap_or_*` family is fine — it cannot panic.
pub fn defaulted() -> u32 {
    "7".parse().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: u32 = "1".parse().unwrap();
        if v != 1 {
            panic!("tests may panic");
        }
    }
}
