//! Shard-worker blocking fixture: the ingress `.recv()` in `run` is
//! the sanctioned parking point; every other blocking construct
//! reachable from the loop is a finding, and blocking code the loop
//! cannot reach stays silent.

use std::time::Duration;

struct Ingress;

impl Ingress {
    fn recv(&self) -> Result<u32, ()> {
        Err(())
    }
    fn recv_timeout(&self, _wait: Duration) -> Result<u32, ()> {
        Err(())
    }
}

struct ShardWorker {
    ingress: Ingress,
}

impl ShardWorker {
    fn run(&self) {
        while let Ok(cmd) = self.ingress.recv() {
            self.step(cmd);
        }
    }

    fn step(&self, cmd: u32) {
        if cmd == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drain_side_channel(&self.ingress);
    }
}

fn drain_side_channel(rx: &Ingress) {
    while rx.recv_timeout(Duration::from_millis(0)).is_ok() {}
}

fn cold_join(handle: std::thread::JoinHandle<()>) {
    handle.join().ok();
}
