//! Seeded lock-order inversion: `thread_one` nests `a -> b` while
//! `thread_two` nests `b -> a`. The static pass must report the cycle
//! without ever running either thread.

use parking_lot::{Mutex, RwLock};

struct Shared {
    a: Mutex<u32>,
    b: RwLock<u32>,
}

fn thread_one(s: &Shared) {
    let _ga = s.a.lock();
    let _gb = s.b.read();
}

fn thread_two(s: &Shared) {
    let _gb = s.b.write();
    let _ga = s.a.lock();
}

fn try_is_not_an_edge(s: &Shared) {
    let _gb = s.b.read();
    // A try-acquire cannot block, so it closes no cycle.
    let _ga = s.a.try_lock();
}
