//! Fixture: payload copies on a hot-path module. Clean under every
//! other lint so the hot-path diagnostics are exact.

fn copies(payload: &bytes::Bytes) -> Vec<u8> {
    payload.to_vec()
}

fn fragments() -> Vec<Vec<u8>> {
    let parts: Vec<Vec<u8>> = Vec::new();
    parts
}

fn fine(payload: &bytes::Bytes) -> bytes::Bytes {
    payload.slice(..)
}

// A comment mentioning .to_vec() is masked out and must not trip.

#[cfg(test)]
mod tests {
    #[test]
    fn copies_are_fine_in_tests() {
        let copied = b"abc".to_vec();
        let _: Vec<Vec<u8>> = vec![copied];
    }
}
