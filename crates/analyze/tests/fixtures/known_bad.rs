//! Known-bad fixture: scanned as `crates/broker/src/fixture.rs` by
//! `../lints.rs`, which asserts these exact (lint, line) diagnostics.
//! Line numbers are load-bearing — append, never insert.

use std::sync::Mutex;

pub struct Undocumented;

pub fn leaky(input: &str) -> u32 {
    let parsed: u32 = input.parse().unwrap();
    let _deadline = Instant::now();
    if parsed == 0 {
        panic!("zero is invalid");
    }
    let guard = GLOBAL.lock().expect("poisoned");
    parsed + *guard
}
