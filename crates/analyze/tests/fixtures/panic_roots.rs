//! Hot-path panic fixture: `handle_into` is a declared root; its
//! callees seed one of each panicking construct, plus the negatives
//! (const-indexed subscripts, an unreachable cold helper).

const HEADER_LEN: usize = 4;

struct BrokerNode;

impl BrokerNode {
    fn handle_into(&self, frame: &[u8], out: &mut Vec<u8>) {
        let _version = frame[0];
        decode_stage(frame, out);
    }
}

fn decode_stage(frame: &[u8], out: &mut Vec<u8>) {
    let len: usize = frame.first().copied().unwrap().into();
    let _body = &frame[HEADER_LEN..];
    deep(frame, len, out);
}

fn deep(frame: &[u8], idx: usize, out: &mut Vec<u8>) {
    let byte = frame[idx];
    if byte == 0 {
        panic!("zero byte on the wire");
    }
    out.push(expect_stage(frame));
}

fn expect_stage(frame: &[u8]) -> u8 {
    frame.last().copied().expect("frames are non-empty")
}

fn cold_helper() {
    let missing: Option<u8> = None;
    missing.unwrap();
}
