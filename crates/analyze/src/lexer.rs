//! A hand-rolled Rust lexer for the token-level passes.
//!
//! The masking scanner ([`crate::scan`]) answers "is this byte inside a
//! comment or literal?" per line; the call-graph passes need more — real
//! token boundaries, so `Foo::bar(` or `.unwrap()` can be matched
//! structurally instead of by substring. This lexer produces exactly the
//! token stream those passes need and nothing more:
//!
//! * Comments (line, doc, and *nested* block comments) are skipped.
//! * String-ish literals — plain, raw (`r#".."#`), byte, byte-raw — are
//!   one [`TokKind::Str`] token each, so braces and keywords inside them
//!   can never confuse brace matching.
//! * `'a` lexes as a [`TokKind::Lifetime`], `'a'` as a [`TokKind::Char`]:
//!   the classic ambiguity is resolved by looking one character past the
//!   identifier run.
//! * Raw identifiers (`r#match`) lex as [`TokKind::Ident`] with the
//!   `r#` prefix stripped, so name-based matching sees `match`.
//! * Punctuation is one token per character, except the three glued
//!   pairs the parser needs as units: `::`, `->`, `=>`. In particular
//!   `Vec<Vec<u8>>` ends in two separate `>` tokens — nested generics
//!   never produce a shift token.
//!
//! Numeric literals are deliberately coarse (`0xFF_u64` is one token,
//! `1.5` is three) — no pass cares about numeric values beyond "this is
//! a literal, not an identifier".

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are normalized).
    Ident,
    /// A `'name` lifetime (text keeps the quote).
    Lifetime,
    /// Numeric literal, including suffix (`0xFF`, `42u64`).
    Num,
    /// Any string-ish literal: `".."`, `r#".."#`, `b".."`, `br".."`.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation: one char, or one of the glued pairs `::` `->` `=>`.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (raw identifiers normalized; literals keep their
    /// delimiters except [`TokKind::Str`], whose text is just `"`).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a token vector. Unterminated literals and stray
/// bytes never abort the lex: the goal is a best-effort stream over real
/// workspace code, which rustc has already accepted.
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 1u32;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: "\"".to_owned(),
                    line: start_line,
                });
            }
            'r' | 'b' if raw_or_byte_literal(&chars, i).is_some() => {
                let start_line = line;
                // Kind and position of the opening quote.
                let (lit, quote_at, hashes) =
                    raw_or_byte_literal(&chars, i).unwrap_or((LitStart::Str, i, 0));
                match lit {
                    LitStart::RawIdent => {
                        // `r#match`: strip the prefix, lex the identifier.
                        let mut j = i + 2;
                        while j < chars.len() && is_ident_continue(chars[j]) {
                            j += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text: chars[i + 2..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                    LitStart::Str => {
                        // Raw string (hashes may be 0) or byte string.
                        i = quote_at + 1;
                        if hashes == 0 && chars.get(quote_at) == Some(&'"') && lit_is_escaped(&chars, i - 1)
                        {
                            // b"..": plain escapes apply.
                            while i < chars.len() {
                                match chars[i] {
                                    '\\' => i += 2,
                                    '"' => {
                                        i += 1;
                                        break;
                                    }
                                    '\n' => {
                                        line += 1;
                                        i += 1;
                                    }
                                    _ => i += 1,
                                }
                            }
                        } else {
                            // Raw: ends at `"` followed by `hashes` hashes.
                            while i < chars.len() {
                                if chars[i] == '"' && closing_hashes(&chars, i + 1) >= hashes {
                                    i += 1 + hashes as usize;
                                    break;
                                }
                                if chars[i] == '\n' {
                                    line += 1;
                                }
                                i += 1;
                            }
                        }
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: "\"".to_owned(),
                            line: start_line,
                        });
                    }
                    LitStart::Char => {
                        // b'x' or b'\n'.
                        i = quote_at + 1;
                        while i < chars.len() {
                            match chars[i] {
                                '\\' => i += 2,
                                '\'' => {
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: "'".to_owned(),
                            line: start_line,
                        });
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (is_ident_continue(chars[i])) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            '\'' => {
                // Lifetime vs char literal: `'a` + ident-run + `'` closes
                // a char; `'a` + ident-run + anything else is a lifetime.
                let is_char = match next {
                    Some('\\') => true,
                    Some(n) if is_ident_start(n) => {
                        let mut j = i + 2;
                        while j < chars.len() && is_ident_continue(chars[j]) {
                            j += 1;
                        }
                        chars.get(j) == Some(&'\'')
                    }
                    Some(n) if !n.is_whitespace() && n != '\'' => true, // '(' etc.
                    _ => false,
                };
                if is_char {
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: "'".to_owned(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line,
                    });
                }
            }
            _ => {
                // Punctuation: glue only the pairs the parser treats as
                // units. `>>` stays two tokens so nested generics close.
                let pair = match (c, next) {
                    (':', Some(':')) => Some("::"),
                    ('-', Some('>')) => Some("->"),
                    ('=', Some('>')) => Some("=>"),
                    _ => None,
                };
                match pair {
                    Some(p) => {
                        toks.push(Tok {
                            kind: TokKind::Punct,
                            text: p.to_owned(),
                            line,
                        });
                        i += 2;
                    }
                    None => {
                        toks.push(Tok {
                            kind: TokKind::Punct,
                            text: c.to_string(),
                            line,
                        });
                        i += 1;
                    }
                }
            }
        }
    }
    toks
}

#[derive(Clone, Copy)]
enum LitStart {
    /// `r#ident` — a raw identifier, not a literal at all.
    RawIdent,
    /// A string-ish literal; the opening quote is `"`.
    Str,
    /// A byte-char literal; the opening quote is `'`.
    Char,
}

/// If `chars[i..]` starts an `r`/`b`-prefixed literal (or raw
/// identifier), classifies it and returns `(kind, quote_index, hashes)`.
fn raw_or_byte_literal(chars: &[char], i: usize) -> Option<(LitStart, usize, u32)> {
    let mut j = i;
    let mut saw_b = false;
    let mut saw_r = false;
    if chars.get(j) == Some(&'b') {
        saw_b = true;
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        saw_r = true;
        j += 1;
    } else if chars.get(j) == Some(&'b') && !saw_b {
        saw_b = true;
        j += 1;
    }
    if !saw_b && !saw_r {
        return None;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    match chars.get(j) {
        Some('"') => Some((LitStart::Str, j, hashes)),
        Some('\'') if saw_b && !saw_r && hashes == 0 => Some((LitStart::Char, j, 0)),
        Some(c) if saw_r && !saw_b && hashes == 1 && is_ident_start(*c) => {
            Some((LitStart::RawIdent, j, 0))
        }
        _ => None,
    }
}

/// Whether the quote at `quote_at` opens an escape-processing literal
/// (`b".."`) rather than a raw one — i.e. no `r` appeared in the prefix.
fn lit_is_escaped(chars: &[char], quote_at: usize) -> bool {
    // The prefix is at most two chars (`br`); raw iff any of them is 'r'.
    let lo = quote_at.saturating_sub(2);
    !chars[lo..quote_at].contains(&'r')
}

fn closing_hashes(chars: &[char], from: usize) -> u32 {
    let mut n = 0u32;
    while chars.get(from + n as usize) == Some(&'#') {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds_and_texts("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_owned())));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn nested_generics_close_with_single_gt_tokens() {
        let toks = kinds_and_texts("let v: Vec<Vec<u8>> = Vec::new();");
        let gts = toks.iter().filter(|(k, t)| *k == TokKind::Punct && t == ">").count();
        assert_eq!(gts, 2, "`>>` must lex as two `>` tokens: {toks:?}");
        assert!(toks.contains(&(TokKind::Punct, "::".to_owned())));
    }

    #[test]
    fn raw_identifiers_normalize() {
        let toks = kinds_and_texts("let r#match = r#fn + 1;");
        assert!(toks.contains(&(TokKind::Ident, "match".to_owned())));
        assert!(toks.contains(&(TokKind::Ident, "fn".to_owned())));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        let toks = kinds_and_texts(r####"let s = r#"{ "not code" }"#; let b = b"x\"y"; let c = b'z';"####);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            2,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        // No brace tokens leaked out of the raw string.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "{"));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let toks = kinds_and_texts("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a".to_owned()),
                (TokKind::Ident, "b".to_owned())
            ]
        );
    }

    #[test]
    fn glued_pairs_and_lines() {
        let toks = lex("x::y\n-> =>");
        assert_eq!(toks[1].text, "::");
        assert_eq!(toks[3].text, "->");
        assert_eq!(toks[3].line, 2);
        assert_eq!(toks[4].text, "=>");
    }

    #[test]
    fn numbers_swallow_suffixes_not_ranges() {
        let toks = kinds_and_texts("0..10u64");
        assert_eq!(
            toks,
            vec![
                (TokKind::Num, "0".to_owned()),
                (TokKind::Punct, ".".to_owned()),
                (TokKind::Punct, ".".to_owned()),
                (TokKind::Num, "10u64".to_owned()),
            ]
        );
    }
}
