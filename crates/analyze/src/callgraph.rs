//! Intra-workspace call graph over [`ParsedFile`]s.
//!
//! Resolution is name-based and deliberately over-approximate: a method
//! call `.m(..)` links to *every* workspace function named `m` that
//! takes `self` (preferring the enclosing type when the receiver is
//! literally `self`), `A::b(..)` links to the `b` defined on type `A`,
//! and a bare `f(..)` links to free functions named `f` (preferring the
//! same file). Over-approximation is sound for the reachability passes
//! — an extra edge can only add findings, never hide one — and the
//! false-positive surface is kept small by the workspace's naming
//! discipline. Calls the resolver cannot see (turbofish, function
//! pointers, closures passed across crates) are the accepted blind
//! spot, documented in DESIGN.md §12.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::lexer::TokKind;
use crate::parse::ParsedFile;

/// Identifies one function in the graph: (file path, fn name, decl line).
pub type NodeId = usize;

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index of the owning file in the `files` slice the graph was built from.
    pub file: usize,
    /// Index of the `FnDef` within that file.
    pub def: usize,
    /// Call sites in this function's body: token index of the callee
    /// name and the resolved target nodes (possibly several under
    /// over-approximation).
    pub calls: Vec<(usize, Vec<NodeId>)>,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All nodes, in (file, source) order.
    pub nodes: Vec<Node>,
}

/// Operator/desugaring traits whose methods are invoked by syntax the
/// lexer sees as punctuation (`a - b`, `*x`, `a[i]`, drop glue) — a
/// `.sub(..)` call on some unrelated type must not resolve to every
/// `impl Sub`. Operator *invocations* are the documented blind spot of
/// the resolver; keeping these impls out of name resolution removes
/// the false edges without pretending to track the real ones.
const OPERATOR_TRAITS: &[&str] = &[
    "Add", "Sub", "Mul", "Div", "Rem", "Neg", "Not", "BitAnd", "BitOr", "BitXor", "Shl", "Shr",
    "AddAssign", "SubAssign", "MulAssign", "DivAssign", "RemAssign", "BitAndAssign",
    "BitOrAssign", "BitXorAssign", "ShlAssign", "ShrAssign", "Index", "IndexMut", "Deref",
    "DerefMut", "Drop",
];

impl CallGraph {
    /// Builds the graph over `files`, including only functions for which
    /// `include(path, is_test)` returns true (the lint passes exclude
    /// `#[cfg(test)]` regions, `tests/` files, and vendored shims).
    pub fn build(files: &[ParsedFile], include: impl Fn(&str, bool) -> bool) -> CallGraph {
        let mut nodes = Vec::new();
        // (type name, fn name) -> nodes; fn name -> free-fn nodes;
        // fn name -> method nodes (has_self).
        let mut by_type: HashMap<(String, String), Vec<NodeId>> = HashMap::new();
        let mut free_by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                if !include(&file.src.path, def.is_test) {
                    continue;
                }
                let id = nodes.len();
                nodes.push(Node {
                    file: fi,
                    def: di,
                    calls: Vec::new(),
                });
                if let Some(ty) = &def.self_type {
                    by_type.entry((ty.clone(), def.name.clone())).or_default().push(id);
                } else {
                    free_by_name.entry(def.name.clone()).or_default().push(id);
                }
                let is_operator_impl = def
                    .trait_name
                    .as_deref()
                    .is_some_and(|t| OPERATOR_TRAITS.contains(&t));
                if def.has_self && !is_operator_impl {
                    methods_by_name.entry(def.name.clone()).or_default().push(id);
                }
            }
        }

        let mut graph = CallGraph { nodes };
        for id in 0..graph.nodes.len() {
            let (fi, di) = (graph.nodes[id].file, graph.nodes[id].def);
            let file = &files[fi];
            let def = &file.fns[di];
            let toks = &file.toks;
            let file_stem = stem(&file.src.path);
            let mut calls = Vec::new();
            let body = def.body.clone();
            for i in body.clone() {
                let t = &toks[i];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let next = toks.get(i + 1);
                if !next.is_some_and(|n| n.is_punct("(")) {
                    continue;
                }
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let mut targets: Vec<NodeId> = Vec::new();
                match prev {
                    Some(p) if p.is_punct(".") => {
                        // Method call `recv.m(..)`. Prefer the enclosing
                        // type's own method when the receiver is `self`.
                        let recv_is_self = i
                            .checked_sub(2)
                            .map(|r| toks[r].is_ident("self"))
                            .unwrap_or(false);
                        if recv_is_self {
                            if let Some(ty) = &def.self_type {
                                if let Some(own) = by_type.get(&(ty.clone(), t.text.clone())) {
                                    targets.extend(own.iter().copied());
                                }
                            }
                        }
                        if targets.is_empty() {
                            if let Some(ms) = methods_by_name.get(&t.text) {
                                targets.extend(ms.iter().copied());
                            }
                        }
                    }
                    Some(p) if p.is_punct("::") => {
                        // Path call `A::b(..)` / `Self::b(..)` /
                        // `module::f(..)`.
                        let qual = i.checked_sub(2).map(|q| &toks[q]);
                        let qual_name = match qual {
                            Some(q) if q.kind == TokKind::Ident => {
                                if q.text == "Self" {
                                    def.self_type.clone()
                                } else {
                                    Some(q.text.clone())
                                }
                            }
                            _ => None,
                        };
                        if let Some(q) = &qual_name {
                            if let Some(own) = by_type.get(&(q.clone(), t.text.clone())) {
                                targets.extend(own.iter().copied());
                            }
                            if targets.is_empty() {
                                // `module::free_fn(..)`: prefer free fns
                                // defined in a file named after the module.
                                if let Some(fs) = free_by_name.get(&t.text) {
                                    let matching: Vec<NodeId> = fs
                                        .iter()
                                        .copied()
                                        .filter(|&c| stem(&files[graph.nodes[c].file].src.path) == *q)
                                        .collect();
                                    if matching.is_empty() {
                                        targets.extend(fs.iter().copied());
                                    } else {
                                        targets.extend(matching);
                                    }
                                }
                            }
                        }
                    }
                    _ => {
                        // Bare call `f(..)` — but not a definition
                        // (`fn f(`) and not a macro (`f!(`, impossible
                        // here since next is `(`; `f!` lexes as `f` `!`).
                        let is_decl = prev.is_some_and(|p| p.is_ident("fn"));
                        if !is_decl {
                            if let Some(fs) = free_by_name.get(&t.text) {
                                let same_file: Vec<NodeId> = fs
                                    .iter()
                                    .copied()
                                    .filter(|&c| graph.nodes[c].file == fi)
                                    .collect();
                                if same_file.is_empty() {
                                    let _ = &file_stem;
                                    targets.extend(fs.iter().copied());
                                } else {
                                    targets.extend(same_file);
                                }
                            }
                        }
                    }
                }
                targets.retain(|&c| c != id);
                if !targets.is_empty() {
                    targets.sort_unstable();
                    targets.dedup();
                    calls.push((i, targets));
                }
            }
            graph.nodes[id].calls = calls;
        }
        graph
    }

    /// Finds the node for `(path suffix, fn name)`, if present. Not
    /// named `find` so calls to `Iterator::find` in analyzed code do
    /// not resolve here and drag this crate into reachability chains.
    pub fn find_fn(&self, files: &[ParsedFile], path_suffix: &str, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| {
            let f = &files[n.file];
            f.src.path.ends_with(path_suffix) && f.fns[n.def].name == name
        })
    }

    /// All nodes for `(path suffix, fn name)` (overloads across impls).
    pub fn find_all(&self, files: &[ParsedFile], path_suffix: &str, name: &str) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&id| {
                let n = &self.nodes[id];
                let f = &files[n.file];
                f.src.path.ends_with(path_suffix) && f.fns[n.def].name == name
            })
            .collect()
    }

    /// BFS from `roots`; returns `parent[node] = Some(caller)` for every
    /// reached node (roots map to `None`). Use [`CallGraph::chain`] to
    /// render a path.
    pub fn reach(&self, roots: &[NodeId]) -> HashMap<NodeId, Option<NodeId>> {
        let mut parent: HashMap<NodeId, Option<NodeId>> = HashMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            let callees: Vec<NodeId> = self.nodes[n]
                .calls
                .iter()
                .flat_map(|(_, ts)| ts.iter().copied())
                .collect();
            for c in callees {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(Some(n));
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// [`CallGraph::reach`] with a name boundary: the BFS does not
    /// descend *into* functions whose name is in `boundary` (roots are
    /// always entered). The reachability passes cut at the engine →
    /// application boundary this way: a worker loop reaches the event
    /// dispatcher, but the `Process` callbacks the dispatcher invokes
    /// (`on_start`, `on_packet`, …) are application code — judged by
    /// the line lints and by their own pass roots — and the name-based
    /// resolver would otherwise link every implementation in the
    /// workspace into the engine's reach set.
    pub fn reach_bounded(
        &self,
        files: &[ParsedFile],
        roots: &[NodeId],
        boundary: &[&str],
    ) -> HashMap<NodeId, Option<NodeId>> {
        let mut parent: HashMap<NodeId, Option<NodeId>> = HashMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            let callees: Vec<NodeId> = self.nodes[n]
                .calls
                .iter()
                .flat_map(|(_, ts)| ts.iter().copied())
                .collect();
            for c in callees {
                let node = &self.nodes[c];
                if boundary.contains(&files[node.file].fns[node.def].name.as_str()) {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(Some(n));
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// Renders the call chain root → … → `node` as `Type::name` labels.
    pub fn chain(
        &self,
        files: &[ParsedFile],
        parent: &HashMap<NodeId, Option<NodeId>>,
        node: NodeId,
    ) -> String {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(Some(p)) = parent.get(&cur) {
            path.push(*p);
            cur = *p;
        }
        path.reverse();
        path.iter()
            .map(|&n| self.label(files, n))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// `Type::name` (or bare `name`) label for a node.
    pub fn label(&self, files: &[ParsedFile], id: NodeId) -> String {
        let n = &self.nodes[id];
        let def = &files[n.file].fns[n.def];
        match &def.self_type {
            Some(ty) => format!("{}::{}", ty, def.name),
            None => def.name.clone(),
        }
    }

    /// Emits the call graph in Graphviz DOT format (deduplicated edges,
    /// stable order).
    pub fn to_dot(&self, files: &[ParsedFile]) -> String {
        let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        for id in 0..self.nodes.len() {
            let from = self.label(files, id);
            seen.insert(from.clone(), ());
            for (_, targets) in &self.nodes[id].calls {
                for &t in targets {
                    edges.insert((from.clone(), self.label(files, t)));
                }
            }
        }
        let mut out = String::from("digraph calls {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for name in seen.keys() {
            out.push_str(&format!("  \"{name}\";\n"));
        }
        for (a, b) in &edges {
            out.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn stem(path: &str) -> String {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".rs").unwrap_or(base).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::SourceFile;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(p, s)| parse_file(SourceFile::parse(p, s)))
            .collect();
        let g = CallGraph::build(&files, |_, is_test| !is_test);
        (files, g)
    }

    #[test]
    fn bare_calls_prefer_same_file() {
        let (files, g) = graph(&[
            ("a.rs", "fn helper() {}\nfn top() { helper(); }\n"),
            ("b.rs", "fn helper() {}\n"),
        ]);
        let top = g.find_fn(&files, "a.rs", "top").unwrap();
        let a_helper = g.find_fn(&files, "a.rs", "helper").unwrap();
        let callees: Vec<NodeId> = g.nodes[top].calls.iter().flat_map(|(_, t)| t.clone()).collect();
        assert_eq!(callees, vec![a_helper]);
    }

    #[test]
    fn path_calls_resolve_by_type() {
        let (files, g) = graph(&[(
            "a.rs",
            "struct A;\nimpl A {\n    fn go() {}\n}\nstruct B;\nimpl B {\n    fn go() {}\n}\nfn top() { A::go(); }\n",
        )]);
        let top = g.find_fn(&files, "a.rs", "top").unwrap();
        let callees: Vec<String> = g.nodes[top]
            .calls
            .iter()
            .flat_map(|(_, t)| t.iter().map(|&c| g.label(&files, c)))
            .collect();
        assert_eq!(callees, vec!["A::go"]);
    }

    #[test]
    fn self_method_calls_prefer_own_type() {
        let (files, g) = graph(&[(
            "a.rs",
            "struct A;\nimpl A {\n    fn step(&self) {}\n    fn run(&self) { self.step(); }\n}\n\
             struct B;\nimpl B {\n    fn step(&self) {}\n}\n",
        )]);
        let run = g.find_fn(&files, "a.rs", "run").unwrap();
        let callees: Vec<String> = g.nodes[run]
            .calls
            .iter()
            .flat_map(|(_, t)| t.iter().map(|&c| g.label(&files, c)))
            .collect();
        assert_eq!(callees, vec!["A::step"]);
    }

    #[test]
    fn unknown_receiver_links_all_methods() {
        let (files, g) = graph(&[(
            "a.rs",
            "struct A;\nimpl A {\n    fn step(&self) {}\n}\nstruct B;\nimpl B {\n    fn step(&self) {}\n}\n\
             fn top(x: &A) { x.step(); }\n",
        )]);
        let top = g.find_fn(&files, "a.rs", "top").unwrap();
        let callees: Vec<String> = g.nodes[top]
            .calls
            .iter()
            .flat_map(|(_, t)| t.iter().map(|&c| g.label(&files, c)))
            .collect();
        assert_eq!(callees, vec!["A::step", "B::step"]);
    }

    #[test]
    fn operator_trait_impls_are_not_method_candidates() {
        let (files, g) = graph(&[(
            "a.rs",
            "struct Gauge;\nimpl Gauge {\n    fn sub(&self, n: i64) {}\n}\n\
             struct Time;\nimpl std::ops::Sub for Time {\n    type Output = Time;\n    fn sub(self, rhs: Time) -> Time { rhs }\n}\n\
             fn top(g: &Gauge) { g.sub(1); }\n",
        )]);
        let top = g.find_fn(&files, "a.rs", "top").unwrap();
        let callees: Vec<String> = g.nodes[top]
            .calls
            .iter()
            .flat_map(|(_, t)| t.iter().map(|&c| g.label(&files, c)))
            .collect();
        assert_eq!(callees, vec!["Gauge::sub"]);
    }

    #[test]
    fn reachability_transits_and_reports_chain() {
        let (files, g) = graph(&[(
            "a.rs",
            "fn leaf() {}\nfn mid() { leaf(); }\nfn root() { mid(); }\nfn island() {}\n",
        )]);
        let root = g.find_fn(&files, "a.rs", "root").unwrap();
        let leaf = g.find_fn(&files, "a.rs", "leaf").unwrap();
        let island = g.find_fn(&files, "a.rs", "island").unwrap();
        let parent = g.reach(&[root]);
        assert!(parent.contains_key(&leaf));
        assert!(!parent.contains_key(&island));
        assert_eq!(g.chain(&files, &parent, leaf), "root -> mid -> leaf");
    }

    #[test]
    fn bounded_reach_stops_at_the_boundary_names() {
        let (files, g) = graph(&[(
            "a.rs",
            "fn root() { dispatch(); }\nfn dispatch() { on_packet(); }\nfn on_packet() { helper(); }\nfn helper() {}\n",
        )]);
        let root = g.find_fn(&files, "a.rs", "root").unwrap();
        let dispatch = g.find_fn(&files, "a.rs", "dispatch").unwrap();
        let on_packet = g.find_fn(&files, "a.rs", "on_packet").unwrap();
        let helper = g.find_fn(&files, "a.rs", "helper").unwrap();
        let parent = g.reach_bounded(&files, &[root], &["on_packet"]);
        assert!(parent.contains_key(&dispatch));
        assert!(!parent.contains_key(&on_packet), "boundary fn must not be entered");
        assert!(!parent.contains_key(&helper), "nothing behind the boundary is reached");
        // An explicit root is always entered, even with a boundary name.
        let from_callback = g.reach_bounded(&files, &[on_packet], &["on_packet"]);
        assert!(from_callback.contains_key(&helper));
    }

    #[test]
    fn test_fns_are_excluded_by_filter() {
        let (files, g) = graph(&[(
            "a.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::lib(); }\n}\n",
        )]);
        assert!(g.find_fn(&files, "a.rs", "t").is_none());
        assert!(g.find_fn(&files, "a.rs", "lib").is_some());
    }

    #[test]
    fn dot_output_lists_nodes_and_edges() {
        let (files, g) = graph(&[("a.rs", "fn leaf() {}\nfn root() { leaf(); }\n")]);
        let dot = g.to_dot(&files);
        assert!(dot.starts_with("digraph calls {"));
        assert!(dot.contains("\"root\" -> \"leaf\";"));
    }
}
