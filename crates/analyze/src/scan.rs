//! Source model for the lint engine.
//!
//! The lints in this crate are line/token-level: they never build a full
//! AST, but they must not fire on text inside comments, string literals,
//! `#[cfg(test)]` items, or `macro_rules!` bodies. [`SourceFile`]
//! precomputes exactly that: a *masked* copy of every line (comment and
//! literal contents blanked out, delimiters kept) plus per-line region
//! flags, so each lint is a simple substring scan over clean input.

/// One parsed source file, ready for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Original source lines (used for doc-comment detection and for
    /// diagnostic snippets).
    pub raw: Vec<String>,
    /// Lines with comments and string/char literal *contents* replaced by
    /// spaces. Quote delimiters survive so token shapes stay intact.
    pub masked: Vec<String>,
    /// Whether the line belongs to a `#[cfg(test)]` item (attribute line
    /// included).
    pub in_test: Vec<bool>,
    /// Whether the line is inside a `macro_rules!` body.
    pub in_macro: Vec<bool>,
}

impl SourceFile {
    /// Parses `content` into the masked + region-annotated model.
    pub fn parse(path: &str, content: &str) -> SourceFile {
        let raw: Vec<String> = content.lines().map(str::to_owned).collect();
        let masked = mask(content);
        debug_assert_eq!(raw.len(), masked.len());
        let in_test = block_regions(&masked, RegionKind::CfgTest);
        let in_macro = block_regions(&masked, RegionKind::MacroRules);
        SourceFile {
            path: path.to_owned(),
            raw,
            masked,
            in_test,
            in_macro,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

/// Collapses runs of whitespace to single spaces and trims: the canonical
/// form used for allowlist snippet matching, tolerant of re-indentation.
pub fn normalize_ws(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Whether `needle` occurs in `haystack` delimited by non-identifier
/// characters on both sides.
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(is_ident_char);
        let after = at + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[derive(Clone, Copy)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blanks comment text and string/char literal contents, preserving line
/// structure and delimiter characters.
fn mask(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for line in content.lines() {
        // Line comments never span lines.
        if matches!(mode, Mode::LineComment) {
            mode = Mode::Code;
        }
        let chars: Vec<char> = line.chars().collect();
        let mut masked = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        masked.push(' ');
                        masked.push(' ');
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        masked.push(' ');
                        masked.push(' ');
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        masked.push('"');
                        i += 1;
                    }
                    'r' | 'b' if raw_str_hashes(&chars, i).is_some() => {
                        // r"..", r#".."#, br".." etc.
                        let (hashes, skip) = raw_str_hashes(&chars, i).unwrap_or((0, 1));
                        mode = Mode::RawStr(hashes);
                        for _ in 0..skip {
                            masked.push(' ');
                        }
                        masked.push('"');
                        i += skip + 1;
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                        let is_char = match next {
                            Some('\\') => true,
                            Some(n) if is_ident_char(n) => chars.get(i + 2) == Some(&'\''),
                            Some(_) => true, // e.g. '(' — punctuation char literal
                            None => false,
                        };
                        if is_char {
                            mode = Mode::Char;
                            masked.push('\'');
                        } else {
                            masked.push('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        masked.push(c);
                        i += 1;
                    }
                },
                Mode::LineComment => {
                    masked.push(' ');
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        masked.push(' ');
                        masked.push(' ');
                        i += 2;
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment(depth - 1);
                        }
                    } else if c == '/' && next == Some('*') {
                        masked.push(' ');
                        masked.push(' ');
                        i += 2;
                        mode = Mode::BlockComment(depth + 1);
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => {
                        masked.push(' ');
                        if next.is_some() {
                            masked.push(' ');
                            i += 2;
                        } else {
                            i += 1; // line-continuation escape
                        }
                    }
                    '"' => {
                        mode = Mode::Code;
                        masked.push('"');
                        i += 1;
                    }
                    _ => {
                        masked.push(' ');
                        i += 1;
                    }
                },
                Mode::RawStr(hashes) => {
                    if c == '"' && closing_hashes(&chars, i + 1) >= hashes {
                        masked.push('"');
                        for _ in 0..hashes {
                            masked.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
                Mode::Char => match c {
                    '\\' => {
                        masked.push(' ');
                        if next.is_some() {
                            masked.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '\'' => {
                        mode = Mode::Code;
                        masked.push('\'');
                        i += 1;
                    }
                    _ => {
                        masked.push(' ');
                        i += 1;
                    }
                },
            }
        }
        // A char literal never spans lines; a stray quote means we
        // misparsed a lifetime — recover rather than poison the file.
        if matches!(mode, Mode::Char) {
            mode = Mode::Code;
        }
        out.push(masked);
    }
    out
}

/// If `chars[i..]` starts a raw-string opener (`r"`, `r#"`, `br"`, ...),
/// returns `(hash_count, chars_before_quote)`.
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    // Only treat as a raw string if `r`/`br` begins a token: the previous
    // char must not be part of an identifier (`for r in ..` vs `parser"`).
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

fn closing_hashes(chars: &[char], from: usize) -> u32 {
    let mut n = 0;
    while chars.get(from + n as usize) == Some(&'#') {
        n += 1;
    }
    n
}

enum RegionKind {
    CfgTest,
    MacroRules,
}

/// Marks lines belonging to brace-delimited regions introduced by a
/// trigger line: a `#[cfg(test)]`-style attribute (the region is the next
/// item) or a `macro_rules!` definition (the region is its body).
fn block_regions(masked: &[String], kind: RegionKind) -> Vec<bool> {
    let mut out = Vec::with_capacity(masked.len());
    let mut depth: i64 = 0;
    // (depth at trigger, whether the region's block has been entered)
    let mut region: Option<(i64, bool)> = None;
    for line in masked {
        let trimmed = line.trim_start();
        let mut line_in = region.is_some();
        if region.is_none() {
            let triggered = match kind {
                RegionKind::CfgTest => cfg_test_trigger(trimmed),
                RegionKind::MacroRules => contains_word(trimmed, "macro_rules"),
            };
            if triggered {
                region = Some((depth, false));
                line_in = true;
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((d, entered)) = &mut region {
                        if !*entered && depth == *d + 1 {
                            *entered = true;
                        }
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some((d, entered)) = region {
                        if entered && depth == d {
                            line_in = true;
                            region = None;
                        }
                    }
                }
                ';' => {
                    if let Some((d, entered)) = region {
                        // Attribute applied to a block-less item
                        // (`#[cfg(test)] use foo;`): region ends here.
                        if !entered && depth == d {
                            region = None;
                        }
                    }
                }
                _ => {}
            }
        }
        out.push(line_in || region.is_some());
    }
    out
}

/// Whether a masked line starts a `#[cfg(test)]`-gated region. The
/// attribute may sit after other attributes on the same line
/// (`#[allow(dead_code)] #[cfg(test)]`), so this searches for `#[cfg(`
/// anywhere rather than only at the start; and `test` inside a
/// `not(..)` group (`#[cfg(not(test))]`, `#[cfg(all(not(test), ..))]`)
/// gates *non*-test code, so negated groups are stripped before the
/// word check while `any(test, ..)`/`all(test, ..)` still trigger.
fn cfg_test_trigger(line: &str) -> bool {
    let Some(start) = line.find("#[cfg(") else {
        return false;
    };
    contains_word(&strip_not_groups(&line[start..]), "test")
}

/// Removes every balanced `not(..)` group from `s`.
fn strip_not_groups(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let at_not = chars[i] == 'n'
            && chars.get(i + 1) == Some(&'o')
            && chars.get(i + 2) == Some(&'t')
            && chars.get(i + 3) == Some(&'(')
            && (i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_'));
        if at_not {
            let mut depth = 0i64;
            let mut j = i + 3;
            while j < chars.len() {
                if chars[j] == '(' {
                    depth += 1;
                } else if chars[j] == ')' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"panic!()\"; // .unwrap()\nlet b = 1; /* .expect( */ let c = 2;",
        );
        assert!(!f.masked[0].contains("panic"));
        assert!(!f.masked[0].contains("unwrap"));
        assert!(f.masked[1].contains("let c = 2;"));
        assert!(!f.masked[1].contains("expect"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = r#\"panic! \"# ; let c = '\\'' ; let lt: &'static str = \"\";",
        );
        assert!(!f.masked[0].contains("panic"));
        assert!(f.masked[0].contains("&'static str"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let f = SourceFile::parse("x.rs", "/*\n.unwrap()\n*/\nlet x = 1;");
        assert!(!f.masked[1].contains("unwrap"));
        assert!(f.masked[3].contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\npub fn c() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_test, vec![true, true, false]);
    }

    #[test]
    fn cfg_attr_is_not_a_test_region() {
        let src = "#[cfg_attr(test, derive(Debug))]\npub struct S;\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_test, vec![false, false]);
    }

    #[test]
    fn macro_rules_region_detected() {
        let src = "macro_rules! m {\n    () => { pub fn hidden() {} };\n}\npub fn real() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_macro, vec![true, true, true, false]);
    }

    #[test]
    fn nested_block_comments_mask_to_the_outer_close() {
        let src = "/* outer /* inner */ still.unwrap() */\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.masked[0].contains("unwrap"), "{:?}", f.masked[0]);
        assert!(f.masked[1].contains("let x = 1;"));
    }

    #[test]
    fn hashed_raw_strings_inside_macro_rules_do_not_derail_masking() {
        let src = "macro_rules! m {\n    () => { r##\"quote \" panic! }\"## };\n}\nfn real() { foo.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.masked[1].contains("panic"), "{:?}", f.masked[1]);
        // The `}` inside the raw string must not close the macro region.
        assert_eq!(f.in_macro, vec![true, true, true, false]);
        assert!(f.masked[3].contains(".unwrap()"));
    }

    #[test]
    fn cfg_test_after_other_attributes_on_one_line_is_a_region() {
        let src = "#[allow(dead_code)] #[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn real() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_test, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod prod {\n    fn a() {}\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.in_test, vec![false, false, false, false]);
    }

    #[test]
    fn cfg_any_and_all_with_test_still_trigger() {
        let f = SourceFile::parse("x.rs", "#[cfg(any(test, feature = \"x\"))]\nmod t {\n}\n");
        assert_eq!(f.in_test, vec![true, true, true]);
        let g = SourceFile::parse("x.rs", "#[cfg(all(test, unix))]\nmod t {\n}\n");
        assert_eq!(g.in_test, vec![true, true, true]);
        let h = SourceFile::parse("x.rs", "#[cfg(all(not(test), unix))]\nmod t {\n}\n");
        assert_eq!(h.in_test, vec![false, false, false]);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::sync::Mutex;", "Mutex"));
        assert!(!contains_word("MutexGuard", "Mutex"));
        assert!(!contains_word("latest", "test"));
        assert!(contains_word("cfg(test)", "test"));
    }

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize_ws("  a\t b   c "), "a b c");
    }
}
