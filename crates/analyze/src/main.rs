//! CLI for the workspace lint engine.
//!
//! ```text
//! cargo run -p mmcs-analyze -- check [--root DIR] [--emit-allow]
//! cargo run -p mmcs-analyze -- graph [--root DIR] [--dot DIR]
//! ```
//!
//! `check` scans the workspace, applies `analyze.allow`, and prints
//! `file:line: [lint] message` diagnostics. Exit code 0 means clean, 1
//! means violations / stale allowlist entries, 2 means usage or I/O
//! error. `--emit-allow` additionally prints ready-to-paste allowlist
//! lines (with `TODO justify` placeholders) for every open violation.
//!
//! `graph` builds the token-level IR and prints the intra-workspace
//! call graph and the static lock-order graph in Graphviz DOT format
//! (to stdout, separated by a blank line); `--dot DIR` writes them to
//! `DIR/callgraph.dot` and `DIR/lock_order.dot` instead — the CI
//! `analyze` job uploads those as artifacts.

use std::path::PathBuf;
use std::process::ExitCode;

use mmcs_analyze::{allowlist, check_workspace, graph_dot, ALLOWLIST_FILE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut emit_allow = false;
    let mut dot_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "graph" if command.is_none() => command = Some("graph"),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage("--root requires a directory"),
                }
            }
            "--emit-allow" => emit_allow = true,
            "--dot" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => dot_dir = Some(PathBuf::from(dir)),
                    None => return usage("--dot requires a directory"),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let Some(command) = command else {
        return usage("expected the `check` or `graph` subcommand");
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "mmcs-analyze: {} does not look like the workspace root (no Cargo.toml); \
             run from the repo root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    if command == "graph" {
        return run_graph(&root, dot_dir.as_deref());
    }

    let report = match check_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mmcs-analyze: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    for err in &report.allowlist_errors {
        println!("{ALLOWLIST_FILE}:{}: [allowlist-syntax] {}", err.line, err.message);
    }
    for entry in &report.stale {
        println!(
            "{ALLOWLIST_FILE}:{}: [stale-allowlist] entry matches nothing \
             (fixed or moved?): {} :: {} :: {}",
            entry.line, entry.lint, entry.path, entry.snippet
        );
    }
    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
        println!("    {}", v.snippet);
    }
    if emit_allow && !report.violations.is_empty() {
        println!("\n# --- allowlist lines for the violations above ---");
        for v in &report.violations {
            println!("{}", allowlist::render_entry(v));
        }
    }
    println!(
        "mmcs-analyze: {} files, {} violation(s), {} suppressed, {} stale allowlist entr{}",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_graph(root: &std::path::Path, dot_dir: Option<&std::path::Path>) -> ExitCode {
    let (calls, locks) = match graph_dot(root) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("mmcs-analyze: I/O error: {e}");
            return ExitCode::from(2);
        }
    };
    match dot_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join("callgraph.dot"), &calls))
                .and_then(|()| std::fs::write(dir.join("lock_order.dot"), &locks))
            {
                eprintln!("mmcs-analyze: I/O error writing DOT files: {e}");
                return ExitCode::from(2);
            }
            println!(
                "mmcs-analyze: wrote {} and {}",
                dir.join("callgraph.dot").display(),
                dir.join("lock_order.dot").display()
            );
        }
        None => {
            println!("{calls}");
            println!("{locks}");
        }
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mmcs-analyze: {problem}");
    eprintln!("usage: mmcs-analyze check [--root DIR] [--emit-allow]");
    eprintln!("       mmcs-analyze graph [--root DIR] [--dot DIR]");
    ExitCode::from(2)
}
