//! A lightweight item parser over the lexed token stream.
//!
//! This is not an AST: the passes only need to know **which functions
//! exist, what type they belong to, and which token range is their
//! body** — enough to build an intra-workspace call graph. The parser
//! walks the token stream once, tracking brace depth, the enclosing
//! `impl` type, and `macro_rules!` bodies (skipped entirely: macro
//! matchers are not Rust expressions), and records a [`FnDef`] per
//! function with a brace-matched body range.
//!
//! Resolution subtleties handled here:
//!
//! * `impl<'a> WireEvent<'a> { .. }` and `impl fmt::Display for Foo`
//!   both yield the *self type* (`WireEvent`, `Foo`) — the last
//!   identifier at angle-depth 0 before the opening brace.
//! * Trait method declarations without bodies (`fn f(&self);`) get no
//!   body range and therefore no call-graph edges.
//! * `const`/`static` item names are collected per file; the panic pass
//!   uses the workspace-wide set to tell constant-offset indexing
//!   (`frame[OFF_SEQ]`) from dynamic indexing (`links[target]`).

use std::ops::Range;

use crate::lexer::{lex, Tok, TokKind};
use crate::scan::SourceFile;

/// One function (or method) found in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` self type, if any (`BrokerNode` for methods).
    pub self_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` blocks
    /// (`Sub`, `Display`). The call-graph resolver uses this to keep
    /// operator-trait methods out of `.method(..)` name resolution.
    pub trait_name: Option<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, *excluding* the outer braces.
    /// Empty for bodiless declarations.
    pub body: Range<usize>,
    /// Whether the function sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// A file parsed to the function level: source model, token stream,
/// functions, and `const`/`static` item names.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// The line-level source model (path, raw lines, regions).
    pub src: SourceFile,
    /// The full token stream.
    pub toks: Vec<Tok>,
    /// Every function found, in source order.
    pub fns: Vec<FnDef>,
    /// Names of `const` and `static` items declared in this file.
    pub consts: Vec<String>,
}

/// Parses one file to the function level.
pub fn parse_file(src: SourceFile) -> ParsedFile {
    let source = src.raw.join("\n");
    let toks = lex(&source);
    let mut fns = Vec::new();
    let mut consts = Vec::new();

    // Stack of (brace depth *inside* the impl block, self type, trait).
    let mut impl_stack: Vec<(i64, Option<String>, Option<String>)> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct if t.text == "}" => {
                depth -= 1;
                while impl_stack.last().is_some_and(|(d, _, _)| *d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokKind::Ident if t.text == "macro_rules" && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) => {
                // Skip the whole definition: name, then the balanced
                // braces of the body.
                i += 2;
                while i < toks.len() && !toks[i].is_punct("{") {
                    i += 1;
                }
                i = skip_balanced(&toks, i, "{", "}");
            }
            TokKind::Ident if t.text == "impl" => {
                let (trait_name, self_type, at_brace) = parse_impl_header(&toks, i + 1);
                i = at_brace;
                if toks.get(i).is_some_and(|t| t.is_punct("{")) {
                    depth += 1;
                    impl_stack.push((depth, self_type, trait_name));
                    i += 1;
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let prev_is_ident = i > 0 && toks[i - 1].kind == TokKind::Ident;
                // `fn` as a type (`Fn`/`fn(u32)`) still reads as `fn` +
                // punct; a real item has an identifier name next.
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                // `pub const fn`, `unsafe fn` etc. all end with `fn name`.
                let _ = prev_is_ident;
                let name = name_tok.text.clone();
                let line = toks[i].line;
                let (has_self, after_params) = parse_params(&toks, i + 2);
                let body = fn_body_range(&toks, after_params);
                let is_test = src
                    .in_test
                    .get(line as usize - 1)
                    .copied()
                    .unwrap_or(false);
                fns.push(FnDef {
                    name,
                    self_type: impl_stack.last().and_then(|(_, t, _)| t.clone()),
                    trait_name: impl_stack.last().and_then(|(_, _, tr)| tr.clone()),
                    has_self,
                    line,
                    body: body.clone(),
                    is_test,
                });
                // Continue scanning *inside* the body so nested items
                // (rare, but possible) are still found; brace tracking
                // continues naturally.
                i += 2;
            }
            TokKind::Ident if (t.text == "const" || t.text == "static") => {
                // `const NAME: ...` / `static NAME: ...`; skip `const fn`
                // (handled by the `fn` arm) and `*const T` pointers.
                let prev_is_star = i > 0 && toks[i - 1].is_punct("*");
                if let Some(name_tok) = toks.get(i + 1) {
                    let next_is_item = name_tok.kind == TokKind::Ident
                        && name_tok.text != "fn"
                        && name_tok.text != "mut"
                        && !prev_is_star;
                    if next_is_item && toks.get(i + 2).is_some_and(|t| t.is_punct(":")) {
                        consts.push(name_tok.text.clone());
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    ParsedFile {
        src,
        toks,
        fns,
        consts,
    }
}

/// Parses tokens after `impl`: skips generics, then finds the self type
/// — the last identifier at angle-depth 0 before the opening brace
/// (after `for`, if present) — and, for `impl Trait for Type`, the
/// trait name (the last identifier before `for`). Returns
/// `(trait_name, self_type, index_of_brace)`.
fn parse_impl_header(toks: &[Tok], mut i: usize) -> (Option<String>, Option<String>, usize) {
    let mut angle: i64 = 0;
    let mut last_ident: Option<String> = None;
    let mut trait_name: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => angle -= 1,
            TokKind::Punct if t.text == "{" && angle <= 0 => break,
            TokKind::Punct if t.text == ";" => break, // `impl Trait for T;`? defensive
            TokKind::Ident if angle <= 0 && t.text == "for" => {
                trait_name = last_ident.take();
            }
            TokKind::Ident if angle <= 0 && t.text != "where" => {
                last_ident = Some(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (trait_name, last_ident, i)
}

/// Scans a parameter list starting at (or just before) its `(`. Returns
/// whether the first parameter is a `self` receiver and the index just
/// past the closing `)`.
fn parse_params(toks: &[Tok], mut i: usize) -> (bool, usize) {
    // Skip generics between the name and `(`.
    let mut angle: i64 = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("(") && angle <= 0 {
            break;
        } else if (t.is_punct("{") || t.is_punct(";")) && angle <= 0 {
            return (false, i); // malformed; bail before the body
        }
        i += 1;
    }
    let open = i;
    let close = skip_balanced(toks, open, "(", ")");
    // `self` appears before the first top-level comma iff this is a
    // method (`&self`, `&'a mut self`, `self`, `mut self: Pin<..>`).
    let mut has_self = false;
    let mut depth = 0i64;
    for t in toks.iter().take(close.saturating_sub(1)).skip(open + 1) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            break;
        } else if t.kind == TokKind::Ident && t.text == "self" {
            has_self = true;
            break;
        }
    }
    (has_self, close)
}

/// From the end of a parameter list, finds the body braces (skipping a
/// return type and `where` clause) and returns the inner token range.
/// A `;` first means no body.
fn fn_body_range(toks: &[Tok], mut i: usize) -> Range<usize> {
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            let close = skip_balanced(toks, i, "{", "}");
            return (i + 1)..close.saturating_sub(1);
        }
        if t.is_punct(";") {
            return 0..0;
        }
        i += 1;
    }
    0..0
}

/// Given `toks[open]` is `open_text`, returns the index just past the
/// matching close token.
fn skip_balanced(toks: &[Tok], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(open_text) {
            depth += 1;
        } else if t.is_punct(close_text) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> ParsedFile {
        parse_file(SourceFile::parse(path, src))
    }

    #[test]
    fn free_fns_and_methods_are_classified() {
        let f = parse(
            "x.rs",
            "fn free(a: u32) -> u32 { a }\n\
             struct S;\n\
             impl S {\n    fn method(&self) {}\n    fn assoc() -> S { S }\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n}\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = f
            .fns
            .iter()
            .map(|d| (d.name.as_str(), d.self_type.as_deref(), d.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("method", Some("S"), true),
                ("assoc", Some("S"), false),
                ("fmt", Some("S"), true),
            ]
        );
        assert_eq!(f.fns[3].trait_name.as_deref(), Some("Display"));
        assert_eq!(f.fns[1].trait_name, None);
    }

    #[test]
    fn impl_header_with_generics_and_for() {
        let f = parse(
            "x.rs",
            "impl<'a, T: Clone> Wrapper<'a, T> {\n    fn get(&self) {}\n}\n\
             impl<T> From<T> for Box<T> {\n    fn from(t: T) -> Box<T> { Box::new(t) }\n}\n",
        );
        assert_eq!(f.fns[0].self_type.as_deref(), Some("Wrapper"));
        assert_eq!(f.fns[1].self_type.as_deref(), Some("Box"));
    }

    #[test]
    fn body_ranges_are_brace_matched() {
        let f = parse(
            "x.rs",
            "fn outer() {\n    if x { y(); } else { z(); }\n}\nfn next() {}\n",
        );
        let outer = &f.fns[0];
        let body: Vec<&str> = f.toks[outer.body.clone()].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"y"));
        assert!(body.contains(&"z"));
        assert!(!body.contains(&"next"));
    }

    #[test]
    fn bodiless_trait_methods_have_empty_bodies() {
        let f = parse("x.rs", "trait T {\n    fn must(&self) -> u32;\n    fn has(&self) -> u32 { 1 }\n}\n");
        assert!(f.fns[0].body.is_empty());
        assert!(!f.fns[1].body.is_empty());
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let f = parse(
            "x.rs",
            "macro_rules! m {\n    () => { fn phantom() {} };\n}\nfn real() {}\n",
        );
        let names: Vec<&str> = f.fns.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn const_and_static_names_collected() {
        let f = parse(
            "x.rs",
            "pub const OFF_SEQ: usize = 16;\nstatic HITS: u64 = 0;\nconst fn not_an_item() {}\nfn f(p: *const u8) {}\n",
        );
        assert_eq!(f.consts, vec!["OFF_SEQ", "HITS"]);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let f = parse(
            "x.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
    }
}
