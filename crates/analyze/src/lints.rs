//! The project-specific lints.
//!
//! Every lint is a pure function from the parsed [`SourceFile`] set to a
//! list of [`Violation`]s. Scoping rules (which crates a lint covers) live
//! here, next to the lint logic, so the engine stays generic.

use crate::scan::{contains_word, normalize_ws, SourceFile};

/// One diagnostic produced by a lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable lint name, e.g. `no-std-sync-locks`.
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Whitespace-normalized source line, used for allowlist matching.
    pub snippet: String,
}

impl Violation {
    pub(crate) fn new(lint: &'static str, file: &SourceFile, idx: usize, message: String) -> Violation {
        Violation {
            lint,
            path: file.path.clone(),
            line: idx + 1,
            message,
            snippet: normalize_ws(&file.raw[idx]),
        }
    }
}

/// Crates whose public items must be documented (`pub-item-doc-coverage`).
pub const DOC_COVERED_CRATES: &[&str] = &["broker", "telemetry", "xgsp"];

/// Per-packet hot-path modules (`no-hot-path-payload-copy`): every file
/// listed here sits on the path a media packet takes through the system,
/// where a payload copy is a per-packet allocator hit. Exact paths, not
/// whole crates, so cold control-plane modules keep their freedom.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/broker/src/event.rs",
    "crates/broker/src/network.rs",
    "crates/broker/src/node.rs",
    "crates/broker/src/reliable.rs",
    "crates/broker/src/rtpproxy.rs",
    "crates/broker/src/sharded.rs",
    "crates/broker/src/threaded.rs",
    "crates/broker/src/wire.rs",
    "crates/rtp/src/packet.rs",
    "crates/streaming/src/helix.rs",
    "crates/streaming/src/producer.rs",
];

/// All lint names, in reporting order. The first three are the
/// call-graph passes in [`crate::passes`]; the rest are line lints.
pub const LINT_NAMES: &[&str] = &[
    "panic-reachable-hot-path",
    "lock-order-cycle",
    "blocking-in-shard-worker",
    "no-std-sync-locks",
    "no-direct-instant-now",
    "no-hot-path-payload-copy",
    "pub-item-doc-coverage",
    "shim-api-drift",
];

fn in_crate_src(path: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn is_shim(path: &str) -> bool {
    path.starts_with("crates/shims/")
}

/// Library source of any first-party crate (shims excluded), plus the
/// workspace facade crate under `src/`.
fn is_first_party_lib(path: &str) -> bool {
    !is_shim(path) && (path.starts_with("crates/") || path.starts_with("src/")) && {
        path.starts_with("src/") || path.contains("/src/")
    }
}

/// Runs every lint over the parsed files, returning diagnostics sorted by
/// path, line, lint.
pub fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        no_std_sync_locks(file, &mut out);
        no_direct_instant_now(file, &mut out);
        no_hot_path_payload_copy(file, &mut out);
        pub_item_doc_coverage(file, &mut out);
    }
    shim_api_drift(files, &mut out);
    out.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.lint.cmp(b.lint))
    });
    out
}

/// `no-std-sync-locks`: first-party code must use the instrumented
/// `parking_lot` shim, never `std::sync` locks — otherwise the deadlock
/// detector is blind to the acquisition.
fn no_std_sync_locks(file: &SourceFile, out: &mut Vec<Violation>) {
    if !is_first_party_lib(&file.path) {
        return;
    }
    for (i, line) in file.masked.iter().enumerate() {
        if !line.contains("std::sync::") {
            continue;
        }
        for primitive in ["Mutex", "RwLock", "Condvar"] {
            if contains_word(line, primitive) {
                out.push(Violation::new(
                    "no-std-sync-locks",
                    file,
                    i,
                    format!(
                        "std::sync::{primitive} bypasses the instrumented parking_lot \
                         shim (lock-order deadlock detection); use parking_lot::{primitive}"
                    ),
                ));
            }
        }
    }
}

/// `no-direct-instant-now`: wall-clock reads outside `util::time` break
/// the deterministic-simulation contract; only the virtual clock (and the
/// vendored shims) may consult the OS.
fn no_direct_instant_now(file: &SourceFile, out: &mut Vec<Violation>) {
    if !is_first_party_lib(&file.path) || file.path == "crates/util/src/time.rs" {
        return;
    }
    for (i, line) in file.masked.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for clock in ["Instant::now", "SystemTime::now"] {
            if line.contains(clock) {
                out.push(Violation::new(
                    "no-direct-instant-now",
                    file,
                    i,
                    format!(
                        "{clock}() in library code; simulation determinism requires \
                         mmcs_util::time (allowlist only for real-time drivers)"
                    ),
                ));
            }
        }
    }
}

/// `no-hot-path-payload-copy`: in the modules a media packet actually
/// traverses ([`HOT_PATH_MODULES`]), `.to_vec()` and `Vec<Vec<u8>>` put
/// a payload copy (or a per-fragment allocation pattern) on the
/// per-packet cost path. Use pooled buffers (`mmcs_util::pool`) or
/// `Bytes::slice` views instead; a deliberate copy needs an allowlist
/// entry with a justification.
fn no_hot_path_payload_copy(file: &SourceFile, out: &mut Vec<Violation>) {
    if !HOT_PATH_MODULES.contains(&file.path.as_str()) {
        return;
    }
    for (i, line) in file.masked.iter().enumerate() {
        if file.in_test[i] || file.in_macro[i] {
            continue;
        }
        if line.contains(".to_vec()") {
            out.push(Violation::new(
                "no-hot-path-payload-copy",
                file,
                i,
                "`.to_vec()` copies the payload on a per-packet hot path; use a \
                 pooled buffer or a `Bytes::slice` view (or allowlist with a \
                 justification)"
                    .to_owned(),
            ));
        }
        if line.replace(' ', "").contains("Vec<Vec<u8>>") {
            out.push(Violation::new(
                "no-hot-path-payload-copy",
                file,
                i,
                "`Vec<Vec<u8>>` allocates per fragment on a per-packet hot path; \
                 use a single pooled frame or `Vec<Bytes>` slices (or allowlist \
                 with a justification)"
                    .to_owned(),
            ));
        }
    }
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// If the masked line declares a `pub` item, returns the item keyword.
/// `pub use` and restricted visibility (`pub(crate)` etc.) are skipped.
fn pub_item_keyword(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let mut tokens = rest.split_whitespace().peekable();
    // Skip modifiers: `pub const fn`, `pub unsafe fn`, `pub async fn`,
    // `pub extern "C" fn`. A modifier keyword followed by a non-keyword
    // token is itself the item (`pub const MAX: usize`).
    let mut current = tokens.next()?;
    loop {
        match current {
            "use" => return None,
            "const" | "static" | "unsafe" | "async" | "extern" => {
                let next = tokens.next()?;
                if ITEM_KEYWORDS.contains(&next) {
                    current = next;
                } else if current == "extern" {
                    // `pub extern "C" fn name` — the ABI string was masked
                    // to `" "`; keep scanning.
                    current = next;
                    continue;
                } else {
                    return ITEM_KEYWORDS
                        .iter()
                        .find(|k| **k == current)
                        .copied();
                }
            }
            kw if ITEM_KEYWORDS.contains(&kw) => {
                return ITEM_KEYWORDS.iter().find(|k| **k == kw).copied()
            }
            _ => return None,
        }
    }
}

/// Extracts the identifier following the item keyword on a declaration
/// line, e.g. `fn` in `pub fn name<T>(..)` yields `name`.
fn item_name<'a>(trimmed: &'a str, keyword: &str) -> Option<&'a str> {
    let kw_pos = trimmed.find(&format!("{keyword} "))?;
    let after = &trimmed[kw_pos + keyword.len() + 1..];
    let name: &str = after
        .trim_start()
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .next()?;
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `pub-item-doc-coverage`: every public item in the broker and XGSP
/// crates carries a `///` doc comment (these are the paper's two core
/// protocol surfaces; their rustdoc is the reference for integrators).
fn pub_item_doc_coverage(file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_crate_src(&file.path, DOC_COVERED_CRATES) {
        return;
    }
    for (i, line) in file.masked.iter().enumerate() {
        if file.in_test[i] || file.in_macro[i] {
            continue;
        }
        let trimmed = line.trim_start();
        let Some(keyword) = pub_item_keyword(trimmed) else {
            continue;
        };
        // Walk up over attribute lines to the line that should be a doc
        // comment.
        let mut j = i;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let above = file.raw[j].trim_start();
            if above.starts_with("#[") || above.starts_with("#!") {
                continue;
            }
            // Multi-line attributes: a masked line that closes an
            // attribute bracket, e.g. `)]`.
            if file.masked[j].trim_end().ends_with(")]") {
                continue;
            }
            break above.starts_with("///")
                || above.starts_with("#[doc")
                || above.starts_with("/**")
                || above.ends_with("*/");
        };
        if !documented {
            let name = item_name(trimmed, keyword).unwrap_or("<unnamed>");
            out.push(Violation::new(
                "pub-item-doc-coverage",
                file,
                i,
                format!("public {keyword} `{name}` has no doc comment"),
            ));
        }
    }
}

/// `shim-api-drift`: the vendored shims under `crates/shims/` exist only
/// to satisfy the workspace's use of the real crates' APIs. Any `pub`
/// name a shim exports that nothing outside the shim uses is drift —
/// untested surface pretending to be the real crate.
fn shim_api_drift(files: &[SourceFile], out: &mut Vec<Violation>) {
    // Collect exports per shim crate.
    struct Export {
        shim_prefix: String, // "crates/shims/<name>/"
        file_idx: usize,
        line_idx: usize,
        name: String,
        keyword: &'static str,
    }
    let mut exports: Vec<Export> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_shim(&file.path) {
            continue;
        }
        let Some(shim_prefix) = shim_prefix(&file.path) else {
            continue;
        };
        for (i, line) in file.masked.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let trimmed = line.trim_start();
            // The `macro_rules!` trigger line is itself inside the macro
            // region, so handle it before the region skip.
            if trimmed.starts_with("macro_rules!") && was_macro_exported(file, i) {
                if let Some(name) = item_name(trimmed, "macro_rules!") {
                    exports.push(Export {
                        shim_prefix: shim_prefix.clone(),
                        file_idx: fi,
                        line_idx: i,
                        name: name.to_owned(),
                        keyword: "macro",
                    });
                }
                continue;
            }
            if file.in_macro[i] {
                continue;
            }
            if let Some(keyword) = pub_item_keyword(trimmed) {
                if let Some(name) = item_name(trimmed, keyword) {
                    exports.push(Export {
                        shim_prefix: shim_prefix.clone(),
                        file_idx: fi,
                        line_idx: i,
                        name: name.to_owned(),
                        keyword,
                    });
                }
            } else if trimmed.starts_with("pub use ") {
                for name in reexported_names(trimmed) {
                    exports.push(Export {
                        shim_prefix: shim_prefix.clone(),
                        file_idx: fi,
                        line_idx: i,
                        name,
                        keyword: "use",
                    });
                }
            }
        }
    }
    // Deduplicate: a `pub use` re-exporting a `pub struct` is one name.
    exports.sort_by(|a, b| {
        (&a.shim_prefix, &a.name)
            .cmp(&(&b.shim_prefix, &b.name))
            .then(a.line_idx.cmp(&b.line_idx))
    });
    exports.dedup_by(|a, b| a.shim_prefix == b.shim_prefix && a.name == b.name);

    for export in &exports {
        let used = files.iter().any(|f| {
            !f.path.starts_with(&export.shim_prefix)
                && f.raw.iter().any(|l| contains_word(l, &export.name))
        });
        if !used {
            let file = &files[export.file_idx];
            out.push(Violation::new(
                "shim-api-drift",
                file,
                export.line_idx,
                format!(
                    "shim export `{}` ({}) is used nowhere outside {}; \
                     shims may only mirror API the workspace exercises",
                    export.name,
                    export.keyword,
                    export.shim_prefix.trim_end_matches('/'),
                ),
            ));
        }
    }
}

/// `macro_rules!` at line `i` is exported if the preceding attribute
/// lines include `#[macro_export]`.
fn was_macro_exported(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = file.raw[j].trim_start();
        if above.starts_with("#[") {
            if above.contains("macro_export") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// `crates/shims/<name>/...` → `crates/shims/<name>/`.
fn shim_prefix(path: &str) -> Option<String> {
    let rest = path.strip_prefix("crates/shims/")?;
    let name = rest.split('/').next()?;
    Some(format!("crates/shims/{name}/"))
}

/// Names introduced by a `pub use` line: last path segment of each leaf,
/// honoring `as` renames; glob re-exports contribute nothing.
fn reexported_names(trimmed: &str) -> Vec<String> {
    let Some(rest) = trimmed.strip_prefix("pub use ") else {
        return Vec::new();
    };
    let rest = rest.trim_end().trim_end_matches(';');
    let mut names = Vec::new();
    let leaves: Vec<&str> = if let Some(open) = rest.find('{') {
        let inner = rest[open + 1..].trim_end_matches('}');
        inner.split(',').collect()
    } else {
        vec![rest]
    };
    for leaf in leaves {
        let leaf = leaf.trim();
        if leaf.is_empty() || leaf.ends_with('*') {
            continue;
        }
        let name = if let Some((_, renamed)) = leaf.split_once(" as ") {
            renamed.trim()
        } else {
            leaf.rsplit("::").next().unwrap_or(leaf).trim()
        };
        if !name.is_empty() && name != "self" {
            names.push(name.to_owned());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    fn lints_of(v: &[Violation]) -> Vec<(&'static str, usize)> {
        v.iter().map(|x| (x.lint, x.line)).collect()
    }

    #[test]
    fn std_sync_lock_flagged_including_import_lists() {
        let f = parse(
            "crates/util/src/x.rs",
            "use std::sync::{Arc, Mutex};\nuse std::sync::Arc;\nlet l = std::sync::RwLock::new(0);\n",
        );
        let mut out = Vec::new();
        no_std_sync_locks(&f, &mut out);
        assert_eq!(
            lints_of(&out),
            vec![("no-std-sync-locks", 1), ("no-std-sync-locks", 3)]
        );
    }

    #[test]
    fn instant_now_flagged_outside_util_time() {
        let f = parse("crates/rtp/src/x.rs", "fn f() { let t = Instant::now(); }\n");
        let mut out = Vec::new();
        no_direct_instant_now(&f, &mut out);
        assert_eq!(lints_of(&out), vec![("no-direct-instant-now", 1)]);
        let exempt = parse("crates/util/src/time.rs", "fn f() { Instant::now(); }\n");
        out.clear();
        no_direct_instant_now(&exempt, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn shims_exempt_from_clock_and_lock_lints() {
        let f = parse(
            "crates/shims/criterion/src/lib.rs",
            "fn f() { Instant::now(); std::sync::Mutex::new(0); }\n",
        );
        let mut out = Vec::new();
        no_direct_instant_now(&f, &mut out);
        no_std_sync_locks(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn undocumented_pub_item_flagged() {
        let f = parse(
            "crates/xgsp/src/x.rs",
            "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n#[derive(Debug)]\npub struct AlsoBad;\n",
        );
        let mut out = Vec::new();
        pub_item_doc_coverage(&f, &mut out);
        assert_eq!(
            lints_of(&out),
            vec![("pub-item-doc-coverage", 4), ("pub-item-doc-coverage", 6)]
        );
        assert!(out[0].message.contains("`bad`"));
        assert!(out[1].message.contains("`AlsoBad`"));
    }

    #[test]
    fn doc_above_attributes_is_honored() {
        let f = parse(
            "crates/broker/src/x.rs",
            "/// Docs.\n#[derive(Debug, Clone)]\npub struct Fine;\n",
        );
        let mut out = Vec::new();
        pub_item_doc_coverage(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pub_crate_items_skipped() {
        let f = parse(
            "crates/broker/src/x.rs",
            "pub(crate) fn internal() {}\npub use foo::Bar;\n",
        );
        let mut out = Vec::new();
        pub_item_doc_coverage(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn shim_drift_detects_unused_export() {
        let shim = parse(
            "crates/shims/fake/src/lib.rs",
            "pub fn used_fn() {}\npub fn orphan_fn() {}\npub struct UsedType;\n",
        );
        let user = parse(
            "crates/broker/src/y.rs",
            "fn f() { fake::used_fn(); let _: UsedType = todo(); }\n",
        );
        let mut out = Vec::new();
        shim_api_drift(&[shim, user], &mut out);
        assert_eq!(lints_of(&out), vec![("shim-api-drift", 2)]);
        assert!(out[0].message.contains("orphan_fn"));
    }

    #[test]
    fn shim_drift_reexports_and_renames() {
        let shim = parse(
            "crates/shims/fake/src/lib.rs",
            "pub use inner::{Alpha, Beta as Gamma};\n",
        );
        let user = parse("src/lib.rs", "use fake::{Alpha, Gamma};\n");
        let mut out = Vec::new();
        shim_api_drift(&[shim.clone(), user], &mut out);
        assert!(out.is_empty());
        let loner = parse("src/lib.rs", "use fake::Alpha;\n");
        out.clear();
        shim_api_drift(&[shim, loner], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Gamma"));
    }

    #[test]
    fn hot_path_copies_flagged_by_exact_path() {
        let src = "fn f(b: &Bytes) { let v = b.to_vec(); }\n\
                   fn g() -> Vec<Vec<u8>> { Vec::new() }\n\
                   fn h() -> Vec< Vec<u8> > { Vec::new() }\n";
        let f = parse("crates/rtp/src/packet.rs", src);
        let mut out = Vec::new();
        no_hot_path_payload_copy(&f, &mut out);
        assert_eq!(
            lints_of(&out),
            vec![
                ("no-hot-path-payload-copy", 1),
                ("no-hot-path-payload-copy", 2),
                ("no-hot-path-payload-copy", 3),
            ]
        );
        // The same crate, a module off the hot path: silent.
        let cold = parse("crates/rtp/src/jitter.rs", src);
        out.clear();
        no_hot_path_payload_copy(&cold, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hot_path_copy_skips_tests_and_near_misses() {
        let src = "fn f(b: &[u8]) { b.to_vec_like(); into_vec(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t(b: &[u8]) { b.to_vec(); }\n}\n";
        let f = parse("crates/broker/src/wire.rs", src);
        let mut out = Vec::new();
        no_hot_path_payload_copy(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn pub_item_keyword_parses_modifiers() {
        assert_eq!(pub_item_keyword("pub fn f()"), Some("fn"));
        assert_eq!(pub_item_keyword("pub const fn f()"), Some("fn"));
        assert_eq!(pub_item_keyword("pub const MAX: usize = 1;"), Some("const"));
        assert_eq!(pub_item_keyword("pub unsafe fn f()"), Some("fn"));
        assert_eq!(pub_item_keyword("pub use foo::Bar;"), None);
        assert_eq!(pub_item_keyword("pub(crate) fn f()"), None);
        assert_eq!(pub_item_keyword("pub struct S;"), Some("struct"));
    }
}
