//! `mmcs-analyze` — project-specific static analysis for the Global-MMCS
//! workspace.
//!
//! The broker network is a long-running concurrent service; the paper's
//! deployment story ("serve heavy traffic from millions of users") makes
//! two whole classes of defect unacceptable: **panics in library code**
//! and **lock-order inversions**. This crate is the static half of the
//! defense (the dynamic half is the instrumented `parking_lot` shim):
//!
//! | lint | guarantees |
//! |------|------------|
//! | `panic-reachable-hot-path` | no `.unwrap()`/`.expect()`/`panic!`/dynamic indexing reachable from the hot-path roots |
//! | `lock-order-cycle` | the static lock acquisition-order graph is acyclic |
//! | `blocking-in-shard-worker` | no blocking call reachable from a shard-worker loop outside the ingress drain |
//! | `no-std-sync-locks` | every lock goes through the instrumented `parking_lot` shim |
//! | `no-direct-instant-now` | no wall-clock reads outside `util::time` (determinism) |
//! | `pub-item-doc-coverage` | `broker` and `xgsp` public items are documented |
//! | `shim-api-drift` | vendored shims export nothing the workspace does not use |
//!
//! The engine is deliberately dependency-free and has two layers. The
//! line layer is a masking scanner ([`scan`]) that blanks
//! comments/strings and computes `#[cfg(test)]` and `macro_rules!`
//! regions; each line lint ([`lints`]) is a scoped substring scan over
//! that clean view. The token layer is a hand-rolled Rust lexer
//! ([`lexer`]), a function-level parser ([`parse`]), and an
//! intra-workspace call graph ([`callgraph`]); the call-graph passes
//! ([`passes`]) judge *reachability* over that IR instead of lines in
//! isolation. Deliberate violations live in a checked-in [`allowlist`]
//! (`analyze.allow`) whose entries require a justification and go stale
//! (error) the moment the code they cover changes.
//!
//! Run it as `cargo run -p mmcs-analyze -- check`; `-- graph --dot`
//! emits the call graph and the static lock-order graph in Graphviz
//! format.

pub mod allowlist;
pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod passes;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allowlist::Entry;
use lints::Violation;
use scan::SourceFile;

/// Default allowlist file name, resolved against the workspace root.
pub const ALLOWLIST_FILE: &str = "analyze.allow";

/// Outcome of a full workspace check.
#[derive(Debug)]
pub struct Report {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations suppressed by allowlist entries.
    pub suppressed: Vec<Violation>,
    /// Allowlist entries that matched nothing (errors).
    pub stale: Vec<Entry>,
    /// Problems parsing the allowlist file itself.
    pub allowlist_errors: Vec<allowlist::ParseError>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the check passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// Lints a set of in-memory `(path, content)` sources — the same pipeline
/// `check_workspace` runs on disk files. Used by the fixture tests and
/// usable by other tooling.
pub fn lint_sources(sources: &[(&str, &str)]) -> Vec<Violation> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, content)| SourceFile::parse(path, content))
        .collect();
    run_lints_and_passes(&files)
}

/// Runs the line lints and the call-graph passes over one file set,
/// merged and sorted by path, line, lint.
fn run_lints_and_passes(files: &[SourceFile]) -> Vec<Violation> {
    let mut violations = lints::run_all(files);
    violations.extend(passes::run_all(files));
    violations.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.lint.cmp(b.lint))
    });
    violations
}

/// Applies an allowlist (by text) to a violation set, returning
/// `(kept, suppressed, stale_entries, parse_errors)`.
pub fn apply_allowlist(
    allow_text: &str,
    violations: Vec<Violation>,
) -> (
    Vec<Violation>,
    Vec<Violation>,
    Vec<Entry>,
    Vec<allowlist::ParseError>,
) {
    let (entries, errors) = allowlist::parse(allow_text);
    let (kept, suppressed, stale_idx) = allowlist::apply(&entries, violations);
    let stale = stale_idx.into_iter().map(|i| entries[i].clone()).collect();
    (kept, suppressed, stale, errors)
}

/// Runs every lint over the workspace rooted at `root`, applying the
/// allowlist at `root/analyze.allow` if present.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let files = load_workspace(root)?;
    let violations = run_lints_and_passes(&files);
    let allow_path = root.join(ALLOWLIST_FILE);
    let allow_text = if allow_path.is_file() {
        fs::read_to_string(&allow_path)?
    } else {
        String::new()
    };
    let (kept, suppressed, stale, allowlist_errors) = apply_allowlist(&allow_text, violations);
    Ok(Report {
        violations: kept,
        suppressed,
        stale,
        allowlist_errors,
        files_scanned: files.len(),
    })
}

/// Reads every workspace `.rs` file under `root` into [`SourceFile`]s,
/// in sorted path order (the same file set `check_workspace` lints).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let content = fs::read_to_string(path)?;
        let rel = relative_slash(root, path);
        files.push(SourceFile::parse(&rel, &content));
    }
    Ok(files)
}

/// Builds the call graph and the static lock-order graph for the
/// workspace at `root` and returns their Graphviz DOT renderings as
/// `(call_graph, lock_order_graph)`.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn graph_dot(root: &Path) -> io::Result<(String, String)> {
    let sources = load_workspace(root)?;
    let ws = passes::Workspace::build(&sources);
    let lock = passes::lock_order::build(&ws.files, &ws.graph);
    Ok((ws.graph.to_dot(&ws.files), lock.to_dot(&ws.files)))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` directories hold deliberately-bad lint inputs
            // (e.g. crates/analyze/tests/fixtures); they are data, not
            // workspace code.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
