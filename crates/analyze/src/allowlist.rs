//! The checked-in violation allowlist.
//!
//! Format (`analyze.allow` at the workspace root): one entry per line,
//! four fields separated by ` :: `:
//!
//! ```text
//! <lint> :: <path> :: <normalized snippet> :: <justification>
//! ```
//!
//! * The snippet is the offending source line with runs of whitespace
//!   collapsed, so re-indenting a file never stales an entry, while any
//!   semantic edit to the line does.
//! * An entry suppresses **every** occurrence of that exact line in that
//!   file under that lint.
//! * The justification is mandatory: an allowlist entry is a reviewed
//!   decision, not an escape hatch.
//! * Entries that match nothing are *stale* and reported as errors, so
//!   the file can only shrink as violations get fixed.
//!
//! `#`-prefixed lines and blank lines are comments.

use crate::lints::Violation;
use crate::scan::normalize_ws;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// Lint name the entry suppresses.
    pub lint: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Whitespace-normalized source line it matches.
    pub snippet: String,
    /// Why the violation is acceptable.
    pub justification: String,
}

/// A parse problem in the allowlist file itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// Parses the allowlist text. Malformed lines are collected as errors
/// rather than silently skipped: a typo must not un-suppress into CI
/// noise *or* silently suppress the wrong thing.
pub fn parse(text: &str) -> (Vec<Entry>, Vec<ParseError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((lint, rest)) = trimmed.split_once(" :: ") else {
            errors.push(ParseError {
                line,
                message: "expected `lint :: path :: snippet :: justification`".to_owned(),
            });
            continue;
        };
        let Some((path, rest)) = rest.split_once(" :: ") else {
            errors.push(ParseError {
                line,
                message: "missing path field".to_owned(),
            });
            continue;
        };
        // The snippet may itself contain `::` (it is Rust source); the
        // justification is everything after the *last* separator.
        let Some((snippet, justification)) = rest.rsplit_once(" :: ") else {
            errors.push(ParseError {
                line,
                message: "missing justification field (entries must say why)".to_owned(),
            });
            continue;
        };
        if justification.trim().is_empty() {
            errors.push(ParseError {
                line,
                message: "empty justification".to_owned(),
            });
            continue;
        }
        entries.push(Entry {
            line,
            lint: lint.trim().to_owned(),
            path: path.trim().to_owned(),
            snippet: normalize_ws(snippet),
            justification: justification.trim().to_owned(),
        });
    }
    (entries, errors)
}

/// Splits `violations` into (unsuppressed, suppressed) and returns the
/// indices of stale entries (entries that matched nothing).
pub fn apply(
    entries: &[Entry],
    violations: Vec<Violation>,
) -> (Vec<Violation>, Vec<Violation>, Vec<usize>) {
    let mut matched = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for violation in violations {
        let hit = entries.iter().enumerate().find(|(_, e)| {
            e.lint == violation.lint
                && e.path == violation.path
                && e.snippet == violation.snippet
        });
        match hit {
            Some((i, _)) => {
                matched[i] = true;
                suppressed.push(violation);
            }
            None => kept.push(violation),
        }
    }
    let stale = matched
        .iter()
        .enumerate()
        .filter_map(|(i, m)| (!m).then_some(i))
        .collect();
    (kept, suppressed, stale)
}

/// Renders a violation as a ready-to-paste allowlist line (with a
/// placeholder justification the author must replace).
pub fn render_entry(v: &Violation) -> String {
    format!(
        "{} :: {} :: {} :: TODO justify",
        v.lint, v.path, v.snippet
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(lint: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            lint,
            path: path.to_owned(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_owned(),
        }
    }

    #[test]
    fn parses_and_applies() {
        let text = "# comment\n\
                    no-unwrap-in-lib :: crates/a/src/x.rs :: foo.unwrap(); :: known init invariant\n";
        let (entries, errors) = parse(text);
        assert!(errors.is_empty());
        assert_eq!(entries.len(), 1);
        let vs = vec![
            violation("no-unwrap-in-lib", "crates/a/src/x.rs", "foo.unwrap();"),
            violation("no-unwrap-in-lib", "crates/a/src/y.rs", "bar.unwrap();"),
        ];
        let (kept, suppressed, stale) = apply(&entries, vs);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/a/src/y.rs");
        assert_eq!(suppressed.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn snippet_may_contain_path_separators() {
        let text = "no-std-sync-locks :: src/l.rs :: let x = std::sync::Mutex::new(0); :: bootstrap only\n";
        let (entries, errors) = parse(text);
        assert!(errors.is_empty());
        assert_eq!(entries[0].snippet, "let x = std::sync::Mutex::new(0);");
        assert_eq!(entries[0].justification, "bootstrap only");
    }

    #[test]
    fn stale_entries_reported() {
        let text = "no-unwrap-in-lib :: crates/a/src/x.rs :: gone.unwrap(); :: was fixed\n";
        let (entries, _) = parse(text);
        let (_, _, stale) = apply(&entries, Vec::new());
        assert_eq!(stale, vec![0]);
    }

    #[test]
    fn malformed_lines_are_errors() {
        let (entries, errors) = parse("just some words\nlint :: path :: snippet\n");
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].line, 1);
        assert!(errors[1].message.contains("justification"));
    }

    #[test]
    fn round_trips_via_render() {
        let v = violation("pub-item-doc-coverage", "crates/broker/src/x.rs", "pub fn f() {");
        let rendered = render_entry(&v);
        let (entries, errors) = parse(&rendered);
        assert!(errors.is_empty());
        let (kept, suppressed, stale) = apply(&entries, vec![v]);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert!(stale.is_empty());
    }
}
