//! Call-graph passes over the token-level IR.
//!
//! Where the line lints in [`crate::lints`] judge each line in
//! isolation, the passes here parse every file to the function level
//! ([`crate::parse`]), build the intra-workspace call graph
//! ([`crate::callgraph`]), and judge *reachability*: a panic site is a
//! finding only if the warm publish path can reach it, a blocking call
//! only if a shard worker loop can, a lock acquisition only as part of
//! the global acquisition-order graph.
//!
//! The pass scope is first-party library code (`crates/*/src`, `src/`)
//! with `#[cfg(test)]` regions excluded: integration tests under
//! `tests/` — including the deliberately inverted
//! `tests/lock_order_inversion.rs` — are exercise rigs for the runtime
//! detector, not production code, and never produce pass findings.

pub mod blocking;
pub mod lock_order;
pub mod panic_reach;

use crate::callgraph::CallGraph;
use crate::lints::Violation;
use crate::parse::{parse_file, ParsedFile};
use crate::scan::SourceFile;

/// Whether a path is in scope for the call-graph passes: first-party
/// library code, excluding the vendored shims.
pub fn pass_scope(path: &str) -> bool {
    !path.starts_with("crates/shims/")
        && (path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/")))
}

/// The parsed workspace plus its call graph — the shared input of every
/// pass, built once per `check`.
pub struct Workspace {
    /// Every scanned file, parsed to the function level.
    pub files: Vec<ParsedFile>,
    /// Call graph over the in-scope, non-test functions.
    pub graph: CallGraph,
}

impl Workspace {
    /// Parses `sources` and builds the pass-scoped call graph.
    pub fn build(sources: &[SourceFile]) -> Workspace {
        let files: Vec<ParsedFile> = sources.iter().cloned().map(parse_file).collect();
        let graph = CallGraph::build(&files, |path, is_test| pass_scope(path) && !is_test);
        Workspace { files, graph }
    }
}

/// Runs the three call-graph passes and returns their findings
/// (unsorted; the caller merges them with the line lints and sorts).
pub fn run_all(sources: &[SourceFile]) -> Vec<Violation> {
    let ws = Workspace::build(sources);
    let mut out = Vec::new();
    lock_order::check(&ws, &mut out);
    panic_reach::check(&ws, &mut out);
    blocking::check(&ws, &mut out);
    out
}

/// The engine → application boundary: `Process` callback names the
/// reachability passes do not descend into. The sim engine's dispatch
/// invokes these through `dyn Process`, so the name-based resolver
/// links every implementation in the workspace; the callback bodies are
/// application code, covered by the line lints and by their own pass
/// roots rather than inheriting the engine's no-panic/no-block budget.
pub(crate) const PROCESS_CALLBACKS: &[&str] = &["on_start", "on_packet", "on_timer", "on_restart"];

/// Identifiers that never make an index expression dynamic: primitive
/// type names and cast keywords. Everything else outside the workspace
/// `const` set counts as a dynamic subscript.
pub(crate) const NON_DYNAMIC_IDENTS: &[&str] = &[
    "as", "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Keywords that can precede `[` without being an indexed expression
/// (`let [a, b] = ..`, `match x { [..] => .. }`).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "if", "else", "match", "move", "static",
    "const", "pub", "use", "as", "box", "dyn", "impl", "fn", "where", "for", "while", "loop",
];
