//! `panic-reachable-hot-path`: call-graph reachability of panicking
//! constructs from the declared hot-path roots.
//!
//! The old `no-unwrap-in-lib` lint judged every line of nine crates the
//! same way, which made cold startup code (`thread::Builder::spawn`)
//! pay the same tax as the per-packet path and pushed fifteen entries
//! into the allowlist. This pass instead declares the warm roots — the
//! broker dispatch, the shard-worker loop, the wire codec, the buffer
//! pool — and walks the call graph: a panic site is a finding only if
//! one of those roots can actually reach it. Panicking constructs are
//! `.unwrap()`, `.expect(..)`, the panicking macros (`panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`), and *dynamic* indexing —
//! a subscript containing any identifier that is not a workspace
//! `const` (so `frame[OFF_VERSION]` passes, `links[target]` does not).
//! `assert!`/`debug_assert!` are deliberately out of scope: an assert
//! states an invariant, the constructs above silently assume one.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::lints::Violation;
use crate::parse::ParsedFile;

use super::{Workspace, NON_DYNAMIC_IDENTS, NON_INDEX_KEYWORDS, PROCESS_CALLBACKS};

/// The lint name this pass reports under.
pub const LINT: &str = "panic-reachable-hot-path";

/// The hot-path roots: `(path suffix, fn name)`. Kept deliberately
/// short and reviewed in DESIGN.md §12 — adding a root widens the
/// no-panic guarantee, removing one narrows it.
pub const ROOTS: &[(&str, &str)] = &[
    ("crates/broker/src/node.rs", "handle_into"),
    ("crates/broker/src/sharded.rs", "run"),
    ("crates/broker/src/cluster.rs", "run"),
    ("crates/broker/src/sharded.rs", "process_batch"),
    ("crates/broker/src/wire.rs", "encode"),
    ("crates/broker/src/wire.rs", "encode_into"),
    ("crates/broker/src/wire.rs", "decode"),
    ("crates/broker/src/wire.rs", "decode_shared"),
    ("crates/broker/src/wire.rs", "parse"),
    ("crates/util/src/pool.rs", "acquire"),
    ("crates/util/src/pool.rs", "release"),
    ("crates/sim/src/parsim.rs", "run"),
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One panicking construct found in a function body.
#[derive(Debug)]
pub(crate) struct PanicSite {
    pub line: u32,
    pub what: &'static str,
}

/// The check pass: BFS from every declared root, then scan each
/// reachable body for panicking constructs. Diagnostics carry the call
/// chain from the nearest root so the reader can judge the path.
pub fn check(ws: &Workspace, out: &mut Vec<Violation>) {
    let consts = workspace_consts(&ws.files);
    let mut roots = Vec::new();
    for &(path, name) in ROOTS {
        roots.extend(ws.graph.find_all(&ws.files, path, name));
    }
    let parent = ws.graph.reach_bounded(&ws.files, &roots, PROCESS_CALLBACKS);
    let mut ids: Vec<_> = parent.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let node = &ws.graph.nodes[id];
        let file = &ws.files[node.file];
        for site in panic_sites(file, file.fns[node.def].body.clone(), &consts) {
            out.push(Violation::new(
                LINT,
                &file.src,
                site.line as usize - 1,
                format!(
                    "{} reachable from a hot-path root: {}",
                    site.what,
                    ws.graph.chain(&ws.files, &parent, id)
                ),
            ));
        }
    }
}

/// Every `const`/`static` item name in the workspace — subscripts built
/// only from these (plus literals and casts) are compile-time offsets,
/// not dynamic indexing.
pub(crate) fn workspace_consts(files: &[ParsedFile]) -> BTreeSet<String> {
    files
        .iter()
        .flat_map(|f| f.consts.iter().cloned())
        .collect()
}

/// Scans one token range for panicking constructs.
pub(crate) fn panic_sites(
    file: &ParsedFile,
    body: std::ops::Range<usize>,
    consts: &BTreeSet<String>,
) -> Vec<PanicSite> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in body {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let prev_dot = i >= 1 && toks[i - 1].is_punct(".");
            let next_open = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if t.text == "unwrap"
                && prev_dot
                && next_open
                && toks.get(i + 2).is_some_and(|n| n.is_punct(")"))
            {
                out.push(PanicSite { line: t.line, what: "`.unwrap()`" });
            } else if t.text == "expect" && prev_dot && next_open {
                out.push(PanicSite { line: t.line, what: "`.expect(..)`" });
            } else if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                out.push(PanicSite { line: t.line, what: "a panicking macro" });
            }
        } else if t.is_punct("[") {
            if let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) {
                let indexes_expr = (prev.kind == TokKind::Ident
                    && !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()))
                    || prev.is_punct(")")
                    || prev.is_punct("]");
                if indexes_expr && subscript_is_dynamic(file, i, consts) {
                    out.push(PanicSite { line: t.line, what: "dynamic indexing" });
                }
            }
        }
    }
    out
}

/// Whether the bracket group opening at `open` contains an identifier
/// that is not a workspace constant (and not a primitive-type cast):
/// such a subscript can be out of range at runtime.
fn subscript_is_dynamic(file: &ParsedFile, open: usize, consts: &BTreeSet<String>) -> bool {
    let toks = &file.toks;
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.kind == TokKind::Ident
            && !consts.contains(&t.text)
            && !NON_DYNAMIC_IDENTS.contains(&t.text.as_str())
        {
            return true;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes;
    use crate::scan::SourceFile;

    fn run(srcs: &[(&str, &str)]) -> Vec<(String, usize)> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out.into_iter().map(|v| (v.path, v.line)).collect()
    }

    #[test]
    fn unwrap_in_unreachable_fn_is_silent() {
        let hits = run(&[(
            "crates/broker/src/node.rs",
            "pub fn handle_into() {}\npub fn cold_setup() { None::<u32>.unwrap(); }\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unwrap_reachable_from_root_is_flagged_with_chain() {
        let hits = run(&[(
            "crates/broker/src/node.rs",
            "pub fn handle_into() { helper(); }\nfn helper() { None::<u32>.unwrap(); }\n",
        )]);
        assert_eq!(hits, vec![("crates/broker/src/node.rs".to_string(), 2)]);
    }

    #[test]
    fn const_offset_indexing_is_allowed_dynamic_is_not() {
        let hits = run(&[(
            "crates/broker/src/wire.rs",
            "const OFF: usize = 2;\npub fn parse(buf: &[u8], n: usize) -> u8 {\n    let a = buf[OFF];\n    let b = buf[n];\n    a + b\n}\n",
        )]);
        assert_eq!(hits, vec![("crates/broker/src/wire.rs".to_string(), 4)]);
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let hits = run(&[(
            "crates/broker/src/wire.rs",
            "pub fn decode(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn panics_behind_a_process_callback_are_silent() {
        let hits = run(&[(
            "crates/sim/src/parsim.rs",
            "pub fn run() { dispatch(); }\nfn dispatch() { on_timer(); }\nfn on_timer() { None::<u32>.unwrap(); }\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn sim_worker_loop_is_a_root() {
        let hits = run(&[(
            "crates/sim/src/parsim.rs",
            "pub fn run() { helper(); }\nfn helper() { None::<u32>.unwrap(); }\n",
        )]);
        assert_eq!(hits, vec![("crates/sim/src/parsim.rs".to_string(), 2)]);
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let hits = run(&[(
            "crates/broker/src/node.rs",
            "pub fn handle_into() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::handle_into(); None::<u32>.unwrap(); }\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn scope_is_first_party_lib_only() {
        assert!(passes::pass_scope("crates/broker/src/node.rs"));
        assert!(passes::pass_scope("src/lib.rs"));
        assert!(!passes::pass_scope("crates/shims/parking_lot/src/lib.rs"));
        assert!(!passes::pass_scope("tests/lock_order_inversion.rs"));
    }
}
