//! `blocking-in-shard-worker`: blocking operations reachable from a
//! shard-worker loop.
//!
//! A shard worker owns a slice of the topic space; anything that parks
//! its thread — a blocking channel receive, `thread::sleep`, a join, a
//! condvar wait, file IO — stalls every topic on the shard and shows up
//! as tail latency in the Figure-3 curves. The only sanctioned blocking
//! point is the worker's own ingress drain: the `.recv()` inside
//! `ShardWorker::run` that parks the worker when its queue is empty.
//! Everything else reachable from the loop body is a finding.
//!
//! The conservative-parallel sim worker (`SimWorker::run`) is a root
//! for the same reason: a blocked worker stalls its whole host shard
//! and, through the watermark, every other worker. Its barrier
//! `.wait()` is the protocol's synchronization point (a spin barrier,
//! not a kernel park) and is allowlisted rather than sanctioned here.

use crate::lexer::TokKind;
use crate::lints::Violation;

use super::{Workspace, PROCESS_CALLBACKS};

/// The lint name this pass reports under.
pub const LINT: &str = "blocking-in-shard-worker";

/// The worker-loop roots: `(path suffix, self type, fn name)`.
pub const ROOTS: &[(&str, &str, &str)] = &[
    ("crates/broker/src/sharded.rs", "ShardWorker", "run"),
    ("crates/broker/src/cluster.rs", "ClusterWorker", "run"),
    ("crates/sim/src/parsim.rs", "SimWorker", "run"),
];

/// The check pass: BFS from the worker loop, scan every reachable body
/// for blocking constructs, and skip the sanctioned ingress `.recv()`
/// in the root itself.
pub fn check(ws: &Workspace, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = (0..ws.graph.nodes.len())
        .filter(|&id| {
            let n = &ws.graph.nodes[id];
            let f = &ws.files[n.file];
            let d = &f.fns[n.def];
            ROOTS.iter().any(|&(path, ty, name)| {
                f.src.path.ends_with(path) && d.name == name && d.self_type.as_deref() == Some(ty)
            })
        })
        .collect();
    let parent = ws.graph.reach_bounded(&ws.files, &roots, PROCESS_CALLBACKS);
    let mut ids: Vec<_> = parent.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let node = &ws.graph.nodes[id];
        let file = &ws.files[node.file];
        let def = &file.fns[node.def];
        let is_root = roots.contains(&id);
        let toks = &file.toks;
        for i in def.body.clone() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev_dot = i >= 1 && toks[i - 1].is_punct(".");
            let prev_path = i >= 1 && toks[i - 1].is_punct("::");
            let next_open = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            let empty_args = next_open && toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
            let what: Option<&str> = match t.text.as_str() {
                // The sanctioned ingress drain: `self.ingress.recv()`
                // inside the worker loop itself parks the worker when
                // the shard is idle — that is the design, not a stall.
                "recv" if prev_dot && empty_args => {
                    if is_root {
                        None
                    } else {
                        Some("a blocking channel `.recv()`")
                    }
                }
                "recv_timeout" if prev_dot && next_open => {
                    Some("a blocking `.recv_timeout(..)`")
                }
                "sleep"
                    if prev_path && i >= 2 && toks[i - 2].is_ident("thread") =>
                {
                    Some("`thread::sleep`")
                }
                "join" if prev_dot && empty_args => Some("a thread `.join()`"),
                "wait" if prev_dot && next_open => Some("a condvar `.wait(..)`"),
                "fs" if toks.get(i + 1).is_some_and(|n| n.is_punct("::")) => {
                    Some("file IO (`fs::..`)")
                }
                _ => None,
            };
            if let Some(what) = what {
                out.push(Violation::new(
                    LINT,
                    &file.src,
                    t.line as usize - 1,
                    format!(
                        "{} reachable from the shard-worker loop: {} — a stalled \
                         worker stalls every topic on its shard",
                        what,
                        ws.graph.chain(&ws.files, &parent, id)
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn run(srcs: &[(&str, &str)]) -> Vec<usize> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out.into_iter().map(|v| v.line).collect()
    }

    #[test]
    fn ingress_recv_in_the_loop_is_sanctioned() {
        let hits = run(&[(
            "crates/broker/src/sharded.rs",
            "struct ShardWorker;\nimpl ShardWorker {\n    fn run(&self) {\n        self.ingress.recv();\n        self.ingress.try_recv();\n    }\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn sleep_reachable_from_the_loop_is_flagged() {
        let hits = run(&[(
            "crates/broker/src/sharded.rs",
            "struct ShardWorker;\nimpl ShardWorker {\n    fn run(&self) {\n        self.step();\n    }\n    fn step(&self) {\n        std::thread::sleep(std::time::Duration::from_millis(1));\n    }\n}\n",
        )]);
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn recv_outside_the_root_is_flagged() {
        let hits = run(&[(
            "crates/broker/src/sharded.rs",
            "struct ShardWorker;\nimpl ShardWorker {\n    fn run(&self) {\n        self.drain();\n    }\n    fn drain(&self) {\n        self.ingress.recv();\n    }\n}\n",
        )]);
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn blocking_behind_a_process_callback_is_silent() {
        // The dispatcher invokes `on_packet` across the engine →
        // application boundary; what the callback does is the app's
        // business (and its own roots'), not the sim worker's.
        let hits = run(&[(
            "crates/sim/src/parsim.rs",
            "struct SimWorker;\nimpl SimWorker {\n    fn run(&self) {\n        self.dispatch();\n    }\n    fn dispatch(&self) {\n        self.on_packet();\n    }\n    fn on_packet(&self) {\n        std::thread::sleep(std::time::Duration::from_millis(1));\n    }\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn sim_worker_loop_is_a_root() {
        let hits = run(&[(
            "crates/sim/src/parsim.rs",
            "struct SimWorker;\nimpl SimWorker {\n    fn run(&self) {\n        self.merge();\n    }\n    fn merge(&self) {\n        self.handle.join();\n    }\n}\n",
        )]);
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn unreachable_blocking_code_is_silent() {
        let hits = run(&[(
            "crates/broker/src/sharded.rs",
            "struct ShardWorker;\nimpl ShardWorker {\n    fn run(&self) {}\n}\nfn shutdown(h: std::thread::JoinHandle<()>) {\n    h.join();\n}\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
