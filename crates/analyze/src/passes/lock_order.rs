//! `lock-order-cycle`: static acquisition-order analysis.
//!
//! Every `Mutex`/`RwLock` in the workspace is assigned a *lock class*
//! keyed by `(file, binding name)` — field declarations, `let`
//! bindings, and struct-literal constructor sites all feed the same
//! class, and `Arc::clone` aliases (including tuple destructures)
//! resolve back to it. Each function body is then simulated linearly:
//! guards are considered held until their enclosing block closes (an
//! over-approximation of real guard lifetimes — which is the safe
//! direction: the runtime detector can only ever observe a subset of
//! the static edges), a blocking acquisition while other classes are
//! held records `held -> acquired` edges, and `try_*` acquisitions
//! record the hold but no incoming edge, mirroring the runtime
//! detector's `on_try_acquire`. Nesting propagates through the call
//! graph: at each call site, every class the callee may blocking-acquire
//! (transitively) gets an edge from every class held at the call.
//! A cycle in the resulting class graph is a potential deadlock,
//! reported at analysis time — before any interleaving runs it.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::lints::Violation;
use crate::parse::ParsedFile;

use super::Workspace;

/// The lint name this pass reports under.
pub const LINT: &str = "lock-order-cycle";

const BLOCKING_METHODS: &[&str] = &["lock", "read", "write"];
const TRY_METHODS: &[&str] = &["try_lock", "try_read", "try_write"];
const WRAPPERS: &[&str] = &["Arc", "Box", "Rc"];

/// One lock class: every `Mutex`/`RwLock` bound to `name` in `file`.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Binding, field, or parameter name the lock lives under.
    pub name: String,
    /// 1-based lines of `Mutex::new`/`RwLock::new` constructor sites.
    pub ctor_lines: Vec<u32>,
}

/// The static acquisition-order graph.
#[derive(Debug)]
pub struct LockGraph {
    /// All lock classes, in discovery order.
    pub classes: Vec<LockClass>,
    /// `held -> acquired` edges with one representative site
    /// `(file index, line)` — the acquisition or call that created it.
    pub edges: BTreeMap<(usize, usize), (usize, u32)>,
}

impl LockGraph {
    /// Edges as `(from, to)` class indices, in stable order.
    pub fn edge_pairs(&self) -> Vec<(usize, usize)> {
        self.edges.keys().copied().collect()
    }

    /// Every edge expanded to constructor-site pairs rendered as
    /// `path:line` — the same shape the runtime detector's
    /// `deadlock::edges()` reports, so the subset cross-check is a
    /// direct set comparison.
    pub fn site_edges(&self, files: &[ParsedFile]) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        for &(from, to) in self.edges.keys() {
            let f = &self.classes[from];
            let t = &self.classes[to];
            for &fl in &f.ctor_lines {
                for &tl in &t.ctor_lines {
                    out.insert((
                        format!("{}:{}", files[f.file].src.path, fl),
                        format!("{}:{}", files[t.file].src.path, tl),
                    ));
                }
            }
        }
        out
    }

    /// Detects cycles in the class graph. Each cycle is returned once as
    /// a class-index path `[a, b, .., a]`.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in self.edges.keys() {
            adj.entry(a).or_default().push(b);
        }
        let mut color: HashMap<usize, u8> = HashMap::new(); // 1 = on stack, 2 = done
        let mut cycles = Vec::new();
        let mut reported: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for &start in adj.keys() {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Iterative DFS with an explicit path stack.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            let mut path: Vec<usize> = vec![start];
            color.insert(start, 1);
            while let Some(&(node, next)) = stack.last() {
                let succs = adj.get(&node).cloned().unwrap_or_default();
                if next < succs.len() {
                    let s = succs[next];
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    match color.get(&s).copied().unwrap_or(0) {
                        1 => {
                            // Back edge: the cycle is the path suffix from s.
                            if let Some(pos) = path.iter().position(|&p| p == s) {
                                let mut cyc: Vec<usize> = path[pos..].to_vec();
                                cyc.push(s);
                                let key: BTreeSet<usize> = cyc.iter().copied().collect();
                                if reported.insert(key) {
                                    cycles.push(cyc);
                                }
                            }
                        }
                        0 => {
                            color.insert(s, 1);
                            stack.push((s, 0));
                            path.push(s);
                        }
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
        cycles
    }

    /// Graphviz DOT rendering of the class graph.
    pub fn to_dot(&self, files: &[ParsedFile]) -> String {
        let label = |c: &LockClass| format!("{} ({})", c.name, files[c.file].src.path);
        let mut out =
            String::from("digraph lock_order {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n");
        for c in &self.classes {
            out.push_str(&format!("  \"{}\";\n", label(c)));
        }
        for (&(a, b), &(_, line)) in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"line {}\"];\n",
                label(&self.classes[a]),
                label(&self.classes[b]),
                line
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the static lock-order graph over `files` using `graph` for
/// transitive acquisition propagation.
pub fn build(files: &[ParsedFile], graph: &CallGraph) -> LockGraph {
    let mut classes: Vec<LockClass> = Vec::new();
    let mut index: HashMap<(usize, String), usize> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        discover_classes(fi, file, &mut classes, &mut index);
    }

    // Per-node event streams, resolved to class ids.
    let events: Vec<Vec<Event>> = (0..graph.nodes.len())
        .map(|id| node_events(files, graph, id, &index))
        .collect();

    // Transitive blocking-acquisition sets: star[n] = classes `n` or any
    // callee may blocking-acquire. Fixpoint iteration handles recursion.
    let mut star: Vec<BTreeSet<usize>> = events
        .iter()
        .map(|evs| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Acquire { class, try_: false, .. } => Some(*class),
                    _ => None,
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..graph.nodes.len() {
            let mut add: BTreeSet<usize> = BTreeSet::new();
            for (_, targets) in &graph.nodes[id].calls {
                for &t in targets {
                    for &c in &star[t] {
                        if !star[id].contains(&c) {
                            add.insert(c);
                        }
                    }
                }
            }
            if !add.is_empty() {
                star[id].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Linear simulation per node.
    let mut edges: BTreeMap<(usize, usize), (usize, u32)> = BTreeMap::new();
    for (id, evs) in events.iter().enumerate() {
        let file = graph.nodes[id].file;
        let mut held: Vec<(usize, i64)> = Vec::new();
        let mut depth: i64 = 0;
        for e in evs {
            match e {
                Event::Open => depth += 1,
                Event::Close => {
                    depth -= 1;
                    held.retain(|&(_, d)| d <= depth);
                }
                Event::Acquire { class, try_, line } => {
                    if !try_ {
                        for &(h, _) in &held {
                            if h != *class {
                                edges.entry((h, *class)).or_insert((file, *line));
                            }
                        }
                    }
                    held.push((*class, depth));
                }
                Event::Call { targets, line } => {
                    for &t in targets {
                        for &c in &star[t] {
                            for &(h, _) in &held {
                                if h != c {
                                    edges.entry((h, c)).or_insert((file, *line));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    LockGraph { classes, edges }
}

/// The check pass: build the graph over the workspace and report every
/// acquisition-order cycle.
pub fn check(ws: &Workspace, out: &mut Vec<Violation>) {
    let lg = build(&ws.files, &ws.graph);
    for cyc in lg.cycles() {
        let names: Vec<String> = cyc
            .iter()
            .map(|&c| {
                format!(
                    "{} ({})",
                    lg.classes[c].name, ws.files[lg.classes[c].file].src.path
                )
            })
            .collect();
        // Anchor the report at the edge closing the cycle.
        let (&a, &b) = (&cyc[cyc.len() - 2], &cyc[cyc.len() - 1]);
        let Some(&(file, line)) = lg.edges.get(&(a, b)) else {
            continue;
        };
        out.push(Violation::new(
            LINT,
            &ws.files[file].src,
            line as usize - 1,
            format!(
                "static lock-order cycle: {} — a thread interleaving exists that \
                 deadlocks; acquire these locks in one global order",
                names.join(" -> ")
            ),
        ));
    }
}

#[derive(Debug)]
enum Event {
    Open,
    Close,
    Acquire { class: usize, try_: bool, line: u32 },
    Call { targets: Vec<usize>, line: u32 },
}

fn is_lock_type(t: &Tok) -> bool {
    t.kind == TokKind::Ident && (t.text == "Mutex" || t.text == "RwLock")
}

/// Finds lock classes in one file: field/parameter declarations
/// (`name: Mutex<..>`, possibly behind `Arc<..>` or a module path) and
/// constructor sites (`Mutex::new(..)`) walked back to their binding.
fn discover_classes(
    fi: usize,
    file: &ParsedFile,
    classes: &mut Vec<LockClass>,
    index: &mut HashMap<(usize, String), usize>,
) {
    let toks = &file.toks;
    fn class_of(
        fi: usize,
        name: &str,
        classes: &mut Vec<LockClass>,
        index: &mut HashMap<(usize, String), usize>,
    ) -> usize {
        *index.entry((fi, name.to_string())).or_insert_with(|| {
            classes.push(LockClass {
                file: fi,
                name: name.to_string(),
                ctor_lines: Vec::new(),
            });
            classes.len() - 1
        })
    }

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Declaration: `name : [&] [Wrapper <|path ::]* (Mutex|RwLock) <`.
        if toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let mut j = i + 2;
            while toks.get(j).is_some_and(|t| t.is_punct("&") || t.kind == TokKind::Lifetime) {
                j += 1;
            }
            // Skip `Wrapper <` layers and `path ::` segments alike: both
            // are an Ident followed by an opener we step over.
            while toks.get(j).is_some_and(|tj| {
                tj.kind == TokKind::Ident
                    && ((WRAPPERS.contains(&tj.text.as_str())
                        && toks.get(j + 1).is_some_and(|n| n.is_punct("<")))
                        || toks.get(j + 1).is_some_and(|n| n.is_punct("::")))
            }) {
                j += 2;
            }
            if toks.get(j).is_some_and(is_lock_type)
                && toks.get(j + 1).is_some_and(|n| n.is_punct("<"))
            {
                class_of(fi, &t.text, classes, index);
            }
        }
        // Constructor: `(Mutex|RwLock) :: new (` — walk back to the binding.
        if is_lock_type(t)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("new"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            if let Some(name) = binding_for_ctor(toks, i) {
                let c = class_of(fi, &name, classes, index);
                classes[c].ctor_lines.push(t.line);
            }
        }
    }
}

/// Walks back from a `Mutex::new` token to the name it is bound to:
/// a struct-literal field (`pending: Mutex::new(..)`), a plain `let`
/// or assignment (`let a = Arc::new(Mutex::new(..))`), or an element of
/// a tuple destructure (`let (a, b) = (Mutex::new(..), Mutex::new(..))`).
fn binding_for_ctor(toks: &[Tok], ctor: usize) -> Option<String> {
    let mut k = ctor;
    while k > 0 {
        let p = &toks[k - 1];
        let skip = p.is_punct("(")
            || p.is_punct("::")
            || (p.kind == TokKind::Ident
                && (p.text == "new" || WRAPPERS.contains(&p.text.as_str())));
        if !skip {
            break;
        }
        k -= 1;
    }
    if k == 0 {
        return None;
    }
    let before = &toks[k - 1];
    if before.is_punct(":") && k >= 2 && toks[k - 2].kind == TokKind::Ident {
        return Some(toks[k - 2].text.clone());
    }
    if before.is_punct(",") || before.is_punct("(") {
        // Possibly an element of a tuple RHS: find the `=` before the
        // tuple open paren and match LHS idents positionally.
        return tuple_binding(toks, ctor);
    }
    if before.is_punct("=") {
        let mut n = k - 2;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n = n.checked_sub(1)?;
        }
        if toks[n].kind == TokKind::Ident {
            return Some(toks[n].text.clone());
        }
        if toks[n].is_punct(")") {
            return tuple_binding(toks, ctor);
        }
    }
    None
}

/// Resolves `let (x, y) = (.., ..)` destructures: which LHS ident does
/// the expression containing token `at` bind to?
fn tuple_binding(toks: &[Tok], at: usize) -> Option<String> {
    // Walk back to the `=` at paren depth 0 relative to `at`.
    let mut depth = 0i64;
    let mut eq = None;
    let mut k = at;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            if depth == 0 {
                // Opening paren of the RHS tuple; `=` must precede it.
                if k > 0 && toks[k - 1].is_punct("=") {
                    eq = Some(k - 1);
                }
                break;
            }
            depth -= 1;
        } else if t.is_punct(";") || t.is_punct("{") {
            break;
        }
    }
    let eq = eq?;
    // Count top-level commas between the RHS `(` and `at`.
    let mut elem = 0usize;
    let mut d = 0i64;
    for t in &toks[eq + 2..at] {
        if t.is_punct("(") || t.is_punct("[") {
            d += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            d -= 1;
        } else if t.is_punct(",") && d == 0 {
            elem += 1;
        }
    }
    // LHS: `( x , y )` immediately before the `=`.
    if eq == 0 || !toks[eq - 1].is_punct(")") {
        return None;
    }
    let mut lhs: Vec<String> = Vec::new();
    let mut k = eq - 1;
    let mut d = 0i64;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(")") {
            d += 1;
        } else if t.is_punct("(") {
            if d == 0 {
                break;
            }
            d -= 1;
        } else if t.kind == TokKind::Ident && d == 0 && t.text != "mut" {
            lhs.push(t.text.clone());
        }
    }
    lhs.reverse();
    lhs.get(elem).cloned()
}

/// Builds the event stream for one call-graph node: block opens/closes,
/// resolved lock acquisitions, and call sites — in token order. The
/// alias map (`let a1 = Arc::clone(&a)`) is threaded linearly, so
/// shadowing and forward use behave like the borrow of the real code.
fn node_events(
    files: &[ParsedFile],
    graph: &CallGraph,
    id: usize,
    index: &HashMap<(usize, String), usize>,
) -> Vec<Event> {
    let node = &graph.nodes[id];
    let file = &files[node.file];
    let toks = &file.toks;
    let body = file.fns[node.def].body.clone();
    let mut aliases: HashMap<String, usize> = HashMap::new();
    let resolve = |name: &str, aliases: &HashMap<String, usize>| -> Option<usize> {
        aliases
            .get(name)
            .copied()
            .or_else(|| index.get(&(node.file, name.to_string())).copied())
    };
    let mut calls = node.calls.iter().peekable();
    let mut events = Vec::new();
    for i in body {
        // Interleave resolved call sites at their token position.
        while calls.peek().is_some_and(|(ti, _)| *ti <= i) {
            let (ti, targets) = calls.next().unwrap();
            if *ti == i {
                events.push(Event::Call {
                    targets: targets.clone(),
                    line: toks[*ti].line,
                });
            }
        }
        let t = &toks[i];
        if t.is_punct("{") {
            events.push(Event::Open);
        } else if t.is_punct("}") {
            events.push(Event::Close);
        } else if t.is_ident("let") {
            record_aliases(toks, i, node.file, index, &mut aliases);
        } else if t.kind == TokKind::Ident
            && (BLOCKING_METHODS.contains(&t.text.as_str())
                || TRY_METHODS.contains(&t.text.as_str()))
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks[i - 2].kind == TokKind::Ident
        {
            if let Some(class) = resolve(&toks[i - 2].text, &aliases) {
                events.push(Event::Acquire {
                    class,
                    try_: TRY_METHODS.contains(&t.text.as_str()),
                    line: t.line,
                });
            }
        }
    }
    events
}

/// Handles `let X = Arc::clone(&Y)`, `let X = Y.clone()`, and the tuple
/// forms (`let (x1, y1) = (Arc::clone(&x), Arc::clone(&y))`), recording
/// `X -> class(Y)` aliases.
fn record_aliases(
    toks: &[Tok],
    let_at: usize,
    fi: usize,
    index: &HashMap<(usize, String), usize>,
    aliases: &mut HashMap<String, usize>,
) {
    let resolve = |name: &str, aliases: &HashMap<String, usize>| -> Option<usize> {
        aliases
            .get(name)
            .copied()
            .or_else(|| index.get(&(fi, name.to_string())).copied())
    };
    let mut i = let_at + 1;
    if toks.get(i).is_some_and(|t| t.is_ident("mut")) {
        i += 1;
    }
    // Single binding: `let X [: ty] = RHS ;`
    if toks.get(i).is_some_and(|t| t.kind == TokKind::Ident) {
        let name = toks[i].text.clone();
        // Find `=` before `;` at depth 0.
        let mut j = i + 1;
        let mut d = 0i64;
        while let Some(t) = toks.get(j) {
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                d -= 1;
            } else if (t.is_punct(";") || t.is_punct("{")) && d <= 0 {
                return;
            } else if t.is_punct("=") && d <= 0 {
                if let Some(src) = clone_source(toks, j + 1) {
                    if let Some(c) = resolve(&src, aliases) {
                        aliases.insert(name, c);
                    }
                }
                return;
            }
            j += 1;
        }
        return;
    }
    // Tuple binding: `let ( x1 , x2 ) = ( RHS1 , RHS2 ) ;`
    if !toks.get(i).is_some_and(|t| t.is_punct("(")) {
        return;
    }
    let mut lhs: Vec<String> = Vec::new();
    let mut j = i + 1;
    while let Some(t) = toks.get(j) {
        if t.is_punct(")") {
            break;
        }
        if t.kind == TokKind::Ident && t.text != "mut" {
            lhs.push(t.text.clone());
        }
        j += 1;
    }
    if !toks.get(j + 1).is_some_and(|t| t.is_punct("=")) || !toks.get(j + 2).is_some_and(|t| t.is_punct("(")) {
        return;
    }
    // Split RHS elements at top-level commas.
    let mut elem_start = j + 3;
    let mut d = 0i64;
    let mut elem = 0usize;
    let mut k = j + 3;
    while let Some(t) = toks.get(k) {
        if t.is_punct("(") || t.is_punct("[") {
            d += 1;
        } else if t.is_punct("]") {
            d -= 1;
        } else if t.is_punct(")") {
            if d == 0 {
                if let (Some(name), Some(src)) = (lhs.get(elem), clone_source(toks, elem_start)) {
                    if let Some(c) = resolve(&src, aliases) {
                        aliases.insert(name.clone(), c);
                    }
                }
                break;
            }
            d -= 1;
        } else if t.is_punct(",") && d == 0 {
            if let (Some(name), Some(src)) = (lhs.get(elem), clone_source(toks, elem_start)) {
                if let Some(c) = resolve(&src, aliases) {
                    aliases.insert(name.clone(), c);
                }
            }
            elem += 1;
            elem_start = k + 1;
        }
        k += 1;
    }
}

/// If the expression starting at `i` is `Arc::clone(&Y)` / `Y.clone()`,
/// returns `Y`.
fn clone_source(toks: &[Tok], i: usize) -> Option<String> {
    // `Arc :: clone ( & Y )`
    if toks.get(i).is_some_and(|t| t.is_ident("Arc"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("clone"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
        && toks.get(i + 4).is_some_and(|t| t.is_punct("&"))
        && toks.get(i + 5).is_some_and(|t| t.kind == TokKind::Ident)
    {
        return Some(toks[i + 5].text.clone());
    }
    // `Y . clone ( )`
    if toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
        && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("clone"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
    {
        return Some(toks[i].text.clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::SourceFile;

    fn lock_graph(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, LockGraph) {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(p, s)| parse_file(SourceFile::parse(p, s)))
            .collect();
        let graph = CallGraph::build(&files, |_, _| true);
        let lg = build(&files, &graph);
        (files, lg)
    }

    fn named_edges(_files: &[ParsedFile], lg: &LockGraph) -> Vec<(String, String)> {
        lg.edge_pairs()
            .into_iter()
            .map(|(a, b)| (lg.classes[a].name.clone(), lg.classes[b].name.clone()))
            .collect()
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "use parking_lot::Mutex;\nfn f() {\n    let a = Mutex::new(0u32);\n    let b = Mutex::new(0u32);\n    let ga = a.lock();\n    let gb = b.lock();\n}\n",
        )]);
        assert_eq!(named_edges(&files, &lg), vec![("a".into(), "b".into())]);
        assert!(lg.cycles().is_empty());
    }

    #[test]
    fn inverted_orders_form_a_cycle() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "fn one(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let _x = a.lock();\n    let _y = b.lock();\n}\n\
             fn two(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let _y = b.lock();\n    let _x = a.lock();\n}\n",
        )]);
        let edges = named_edges(&files, &lg);
        assert!(edges.contains(&("a".into(), "b".into())));
        assert!(edges.contains(&("b".into(), "a".into())));
        assert_eq!(lg.cycles().len(), 1);
    }

    #[test]
    fn guards_release_at_block_close() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n    {\n        let _x = a.lock();\n    }\n    let _y = b.lock();\n}\n",
        )]);
        assert!(named_edges(&files, &lg).is_empty());
    }

    #[test]
    fn try_lock_holds_but_adds_no_incoming_edge() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>, c: &Mutex<u32>) {\n    let _x = a.try_lock();\n    let _y = b.lock();\n    let _z = c.try_lock();\n}\n",
        )]);
        // a -> b (a held via try when b blocks); nothing into a or c.
        assert_eq!(named_edges(&files, &lg), vec![("a".into(), "b".into())]);
    }

    #[test]
    fn arc_clone_aliases_resolve_to_the_origin_class() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "fn f() {\n    let a = Arc::new(Mutex::new(0u32));\n    let b = Arc::new(Mutex::new(0u32));\n    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));\n    let _x = a1.lock();\n    let _y = b1.lock();\n}\n",
        )]);
        assert_eq!(named_edges(&files, &lg), vec![("a".into(), "b".into())]);
        assert_eq!(lg.classes.iter().filter(|c| !c.ctor_lines.is_empty()).count(), 2);
    }

    #[test]
    fn nesting_propagates_through_calls() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n    fn inner(&self) {\n        let _g = self.b.lock();\n    }\n    fn outer(&self) {\n        let _g = self.a.lock();\n        self.inner();\n    }\n}\n",
        )]);
        assert_eq!(named_edges(&files, &lg), vec![("a".into(), "b".into())]);
    }

    #[test]
    fn struct_literal_ctor_sites_attach_to_the_field_class() {
        let (files, lg) = lock_graph(&[(
            "a.rs",
            "struct S { pending: Mutex<u32> }\nimpl S {\n    fn new() -> S {\n        S { pending: Mutex::new(0) }\n    }\n}\n",
        )]);
        let c = lg.classes.iter().find(|c| c.name == "pending").unwrap();
        assert_eq!(c.ctor_lines, vec![4]);
        let _ = files;
    }
}
