//! SOAP 1.1 and the web-services plumbing of Global-MMCS.
//!
//! "Through SOAP connection, the XGSP Web Server can invoke web-services
//! provided by other communities" (§3.2). This crate provides the
//! envelope model, fault handling, and a service registry/dispatcher
//! that binds WSDL-CI operations to handlers. Transport is a string in,
//! string out exchange (the simulated HTTP POST body).
//!
//! * [`envelope`] — SOAP envelope/body/fault encode + decode.
//! * [`rpc`] — RPC-style calls: operation name + `(name, value)` parts.
//! * [`service`] — [`service::SoapServer`], dispatching envelopes to
//!   registered operation handlers, and [`service::SoapClient`] building
//!   matched requests.

pub mod envelope;
pub mod rpc;
pub mod service;

pub use envelope::{Envelope, SoapFault};
pub use rpc::RpcCall;
pub use service::{SoapClient, SoapServer};
