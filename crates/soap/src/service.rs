//! SOAP service dispatch.
//!
//! [`SoapServer`] holds named operation handlers; feeding it a request
//! document returns a response document (a `...Response` payload or a
//! fault). [`SoapClient`] builds matching request documents and decodes
//! responses. Both ends speak strings — the simulated HTTP POST body —
//! so any transport (in-process, the simulator, the broker) can carry
//! them.

use std::collections::HashMap;

use crate::envelope::{Envelope, SoapFault};
use crate::rpc::RpcCall;

/// An operation handler: parts in, parts out (or a fault).
pub type Handler = Box<dyn FnMut(&[(String, String)]) -> Result<Vec<(String, String)>, SoapFault>>;

/// A SOAP endpoint dispatching RPC calls to handlers.
#[derive(Default)]
pub struct SoapServer {
    handlers: HashMap<String, Handler>,
}

impl SoapServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) an operation handler.
    pub fn register<F>(&mut self, operation: impl Into<String>, handler: F)
    where
        F: FnMut(&[(String, String)]) -> Result<Vec<(String, String)>, SoapFault> + 'static,
    {
        self.handlers.insert(operation.into(), Box::new(handler));
    }

    /// Registered operation names.
    pub fn operations(&self) -> impl Iterator<Item = &str> {
        self.handlers.keys().map(String::as_str)
    }

    /// Handles one request document; always returns a response document
    /// (faults included).
    pub fn handle(&mut self, request_xml: &str) -> String {
        let envelope = match Envelope::parse(request_xml) {
            Ok(envelope) => envelope,
            Err(err) => return Envelope::fault("Client", err.to_string()).to_xml(),
        };
        let Some(call) = RpcCall::from_envelope(&envelope) else {
            return Envelope::fault("Client", "request is a fault envelope").to_xml();
        };
        let Some(handler) = self.handlers.get_mut(&call.operation) else {
            return Envelope::fault(
                "Client",
                format!("unknown operation {:?}", call.operation),
            )
            .to_xml();
        };
        match handler(&call.parts) {
            Ok(parts) => {
                let mut response = RpcCall::new(call.response_name());
                response.parts = parts;
                response.to_envelope().to_xml()
            }
            Err(fault) => Envelope::fault(fault.code, fault.reason).to_xml(),
        }
    }
}

impl std::fmt::Debug for SoapServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoapServer")
            .field("operations", &self.handlers.len())
            .finish()
    }
}

/// Client-side helpers for RPC exchanges.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoapClient;

impl SoapClient {
    /// Builds a request document.
    pub fn request(operation: &str, parts: &[(&str, &str)]) -> String {
        let mut call = RpcCall::new(operation);
        for (name, value) in parts {
            call = call.with_part(*name, *value);
        }
        call.to_envelope().to_xml()
    }

    /// Decodes a response document into result parts.
    ///
    /// # Errors
    ///
    /// Returns the [`SoapFault`] when the response is a fault, and a
    /// synthesized `Client` fault when it is unparseable or mismatched.
    pub fn decode_response(
        operation: &str,
        response_xml: &str,
    ) -> Result<Vec<(String, String)>, SoapFault> {
        let envelope = Envelope::parse(response_xml).map_err(|e| SoapFault {
            code: "Client".into(),
            reason: format!("bad response: {e}"),
        })?;
        if let Some(fault) = envelope.fault {
            return Err(fault);
        }
        let call = RpcCall::from_envelope(&envelope).ok_or_else(|| SoapFault {
            code: "Client".into(),
            reason: "empty response".into(),
        })?;
        if call.operation != format!("{operation}Response") {
            return Err(SoapFault {
                code: "Client".into(),
                reason: format!(
                    "response {:?} does not match operation {operation:?}",
                    call.operation
                ),
            });
        }
        Ok(call.parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> SoapServer {
        let mut server = SoapServer::new();
        server.register("echo", |parts| Ok(parts.to_vec()));
        server.register("fail", |_| {
            Err(SoapFault {
                code: "Server".into(),
                reason: "deliberate".into(),
            })
        });
        server
    }

    #[test]
    fn request_response_cycle() {
        let mut server = echo_server();
        let request = SoapClient::request("echo", &[("a", "1"), ("b", "two")]);
        let response = server.handle(&request);
        let parts = SoapClient::decode_response("echo", &response).unwrap();
        assert_eq!(
            parts,
            vec![("a".to_owned(), "1".to_owned()), ("b".to_owned(), "two".to_owned())]
        );
    }

    #[test]
    fn handler_fault_propagates() {
        let mut server = echo_server();
        let response = server.handle(&SoapClient::request("fail", &[]));
        let err = SoapClient::decode_response("fail", &response).unwrap_err();
        assert_eq!(err.code, "Server");
        assert_eq!(err.reason, "deliberate");
    }

    #[test]
    fn unknown_operation_faults() {
        let mut server = echo_server();
        let response = server.handle(&SoapClient::request("levitate", &[]));
        let err = SoapClient::decode_response("levitate", &response).unwrap_err();
        assert!(err.reason.contains("unknown operation"));
    }

    #[test]
    fn malformed_request_faults() {
        let mut server = echo_server();
        let response = server.handle("not xml");
        assert!(Envelope::parse(&response).unwrap().is_fault());
    }

    #[test]
    fn mismatched_response_name_detected() {
        let mut server = echo_server();
        let response = server.handle(&SoapClient::request("echo", &[]));
        let err = SoapClient::decode_response("other", &response).unwrap_err();
        assert!(err.reason.contains("does not match"));
    }

    #[test]
    fn stateful_handlers_work() {
        let mut server = SoapServer::new();
        let mut counter = 0u32;
        server.register("count", move |_| {
            counter += 1;
            Ok(vec![("n".to_owned(), counter.to_string())])
        });
        let r1 = server.handle(&SoapClient::request("count", &[]));
        let r2 = server.handle(&SoapClient::request("count", &[]));
        assert_eq!(
            SoapClient::decode_response("count", &r1).unwrap()[0].1,
            "1"
        );
        assert_eq!(
            SoapClient::decode_response("count", &r2).unwrap()[0].1,
            "2"
        );
        assert_eq!(server.operations().count(), 1);
    }
}
