//! RPC-style SOAP calls: an operation name plus `(name, value)` parts.
//!
//! This matches how the 2003 Java toolkits (Apache SOAP / Axis in
//! RPC/encoded style) exposed WSDL operations, and is the calling
//! convention WSDL-CI uses.

use mmcs_util::xml::Element;

use crate::envelope::Envelope;

/// One RPC call or response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcCall {
    /// Operation name (`establishSession`, `getRendezvous`, …).
    pub operation: String,
    /// Parameter / result parts in order.
    pub parts: Vec<(String, String)>,
}

impl RpcCall {
    /// Creates a call with no parts.
    pub fn new(operation: impl Into<String>) -> Self {
        Self {
            operation: operation.into(),
            parts: Vec::new(),
        }
    }

    /// Adds a part, builder style.
    pub fn with_part(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.parts.push((name.into(), value.into()));
        self
    }

    /// Looks a part up by name.
    pub fn part(&self, name: &str) -> Option<&str> {
        self.parts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Wraps the call in an envelope.
    pub fn to_envelope(&self) -> Envelope {
        let mut payload = Element::new(&self.operation);
        for (name, value) in &self.parts {
            payload.push_child(Element::new(name).with_text(value));
        }
        Envelope::new(payload)
    }

    /// Extracts a call from an envelope's payload.
    ///
    /// Returns `None` for fault envelopes.
    pub fn from_envelope(envelope: &Envelope) -> Option<RpcCall> {
        let payload = envelope.body.as_ref()?;
        let parts = payload
            .child_elements()
            .map(|el| (el.name().to_owned(), el.text()))
            .collect();
        Some(RpcCall {
            operation: payload.name().to_owned(),
            parts,
        })
    }

    /// The conventional response payload name (`<op>Response`).
    pub fn response_name(&self) -> String {
        format!("{}Response", self.operation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_round_trips_through_envelope() {
        let call = RpcCall::new("establishSession")
            .with_part("sessionId", "7")
            .with_part("name", "weekly sync");
        let envelope = call.to_envelope();
        let xml = envelope.to_xml();
        let parsed = RpcCall::from_envelope(&Envelope::parse(&xml).unwrap()).unwrap();
        assert_eq!(parsed, call);
        assert_eq!(parsed.part("sessionId"), Some("7"));
        assert_eq!(parsed.part("missing"), None);
        assert_eq!(parsed.response_name(), "establishSessionResponse");
    }

    #[test]
    fn fault_envelope_yields_no_call() {
        let envelope = Envelope::fault("Server", "boom");
        assert_eq!(RpcCall::from_envelope(&envelope), None);
    }

    #[test]
    fn empty_parts_are_fine() {
        let call = RpcCall::new("ping");
        let parsed =
            RpcCall::from_envelope(&Envelope::parse(&call.to_envelope().to_xml()).unwrap())
                .unwrap();
        assert!(parsed.parts.is_empty());
    }
}
