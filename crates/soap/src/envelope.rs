//! The SOAP 1.1 envelope.

use core::fmt;

use mmcs_util::xml::Element;

/// The SOAP 1.1 envelope namespace.
pub const SOAP_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// A SOAP fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapFault {
    /// Fault code (`Client`, `Server`, …).
    pub code: String,
    /// Human-readable fault string.
    pub reason: String,
}

impl fmt::Display for SoapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soap fault {}: {}", self.code, self.reason)
    }
}

impl std::error::Error for SoapFault {}

/// A SOAP envelope wrapping one body element or a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The body payload (`None` only for fault envelopes).
    pub body: Option<Element>,
    /// The fault, if this is a fault envelope.
    pub fault: Option<SoapFault>,
}

impl Envelope {
    /// Wraps a payload element.
    pub fn new(body: Element) -> Self {
        Self {
            body: Some(body),
            fault: None,
        }
    }

    /// Builds a fault envelope.
    pub fn fault(code: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            body: None,
            fault: Some(SoapFault {
                code: code.into(),
                reason: reason.into(),
            }),
        }
    }

    /// Whether this envelope carries a fault.
    pub fn is_fault(&self) -> bool {
        self.fault.is_some()
    }

    /// Renders the full XML document.
    pub fn to_xml(&self) -> String {
        let mut body = Element::new("soap:Body");
        if let Some(fault) = &self.fault {
            body.push_child(
                Element::new("soap:Fault")
                    .with_child(Element::new("faultcode").with_text(format!("soap:{}", fault.code)))
                    .with_child(Element::new("faultstring").with_text(&fault.reason)),
            );
        } else if let Some(payload) = &self.body {
            body.push_child(payload.clone());
        }
        Element::new("soap:Envelope")
            .with_attr("xmlns:soap", SOAP_NS)
            .with_child(body)
            .to_document()
    }

    /// Parses an envelope from XML.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEnvelopeError`] on malformed XML or a missing
    /// Envelope/Body structure.
    pub fn parse(xml: &str) -> Result<Envelope, ParseEnvelopeError> {
        let root = Element::parse(xml).map_err(|e| ParseEnvelopeError::Xml(e.to_string()))?;
        if root.name() != "soap:Envelope" && root.name() != "Envelope" {
            return Err(ParseEnvelopeError::NotAnEnvelope(root.name().to_owned()));
        }
        let body = root
            .child("soap:Body")
            .or_else(|| root.child("Body"))
            .ok_or(ParseEnvelopeError::MissingBody)?;
        if let Some(fault_el) = body.child("soap:Fault").or_else(|| body.child("Fault")) {
            let code = fault_el
                .child_text("faultcode")
                .unwrap_or_default()
                .trim_start_matches("soap:")
                .to_owned();
            let reason = fault_el.child_text("faultstring").unwrap_or_default();
            return Ok(Envelope {
                body: None,
                fault: Some(SoapFault { code, reason }),
            });
        }
        let payload = body
            .child_elements()
            .next()
            .cloned()
            .ok_or(ParseEnvelopeError::EmptyBody)?;
        Ok(Envelope::new(payload))
    }
}

/// Error parsing a SOAP envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEnvelopeError {
    /// The XML was malformed.
    Xml(String),
    /// The root element was not an Envelope.
    NotAnEnvelope(String),
    /// No Body element.
    MissingBody,
    /// Body had no payload element.
    EmptyBody,
}

impl fmt::Display for ParseEnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEnvelopeError::Xml(e) => write!(f, "malformed xml: {e}"),
            ParseEnvelopeError::NotAnEnvelope(root) => {
                write!(f, "root <{root}> is not a soap envelope")
            }
            ParseEnvelopeError::MissingBody => write!(f, "envelope has no body"),
            ParseEnvelopeError::EmptyBody => write!(f, "envelope body is empty"),
        }
    }
}

impl std::error::Error for ParseEnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips() {
        let payload = Element::new("getRendezvous")
            .with_attr("session", "7")
            .with_child(Element::new("community").with_text("admire.cn"));
        let envelope = Envelope::new(payload.clone());
        let xml = envelope.to_xml();
        assert!(xml.starts_with("<?xml"));
        let parsed = Envelope::parse(&xml).unwrap();
        assert!(!parsed.is_fault());
        assert_eq!(parsed.body, Some(payload));
    }

    #[test]
    fn fault_round_trips() {
        let envelope = Envelope::fault("Client", "no such session");
        let parsed = Envelope::parse(&envelope.to_xml()).unwrap();
        assert!(parsed.is_fault());
        let fault = parsed.fault.unwrap();
        assert_eq!(fault.code, "Client");
        assert_eq!(fault.reason, "no such session");
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Envelope::parse("<notsoap/>"),
            Err(ParseEnvelopeError::NotAnEnvelope(_))
        ));
        assert!(matches!(
            Envelope::parse("<soap:Envelope xmlns:soap=\"x\"/>"),
            Err(ParseEnvelopeError::MissingBody)
        ));
        assert!(matches!(
            Envelope::parse("<soap:Envelope xmlns:soap=\"x\"><soap:Body/></soap:Envelope>"),
            Err(ParseEnvelopeError::EmptyBody)
        ));
        assert!(matches!(
            Envelope::parse("garbage"),
            Err(ParseEnvelopeError::Xml(_))
        ));
    }

    #[test]
    fn unprefixed_envelopes_accepted() {
        let xml = "<Envelope><Body><op/></Body></Envelope>";
        let parsed = Envelope::parse(xml).unwrap();
        assert_eq!(parsed.body.unwrap().name(), "op");
    }
}
