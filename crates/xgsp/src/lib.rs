//! XGSP — the XML-based General Session Protocol.
//!
//! XGSP is the paper's central idea: **one neutral session protocol** that
//! every community's signaling (H.323, SIP, Admire, Access Grid) is
//! translated into, so one session server can run a conference spanning
//! all of them. This crate implements:
//!
//! * [`message`] — the XGSP message set with its XML codec
//!   ([`message::XgspMessage`]): create/terminate session, join/leave,
//!   invite, media control, floor control, application session data.
//! * [`media`] — media descriptions ([`media::MediaDescription`]) shared
//!   by messages and session state.
//! * [`session`] — one conference's state ([`session::Session`]):
//!   membership, roles, media streams and their broker topics.
//! * [`floor`] — the floor-control state machine ([`floor::Floor`]).
//! * [`server`] — the XGSP session server ([`server::SessionServer`]):
//!   a sans-IO state machine mapping XGSP requests to replies,
//!   member notifications and broker topic commands.
//! * [`wsdl_ci`] — the WSDL Collaboration Interface
//!   ([`wsdl_ci::CollaborationServer`]): the trait any third-party
//!   collaboration server implements so the session server can schedule
//!   it into a meeting.
//! * [`calendar`] — scheduled-mode reservations ([`calendar::Calendar`]).
//!
//! # Examples
//!
//! ```
//! use mmcs_xgsp::message::XgspMessage;
//!
//! let join = XgspMessage::Join {
//!     session: 7.into(),
//!     user: "alice".into(),
//!     terminal: 3.into(),
//!     media: vec![],
//! };
//! let xml = join.to_xml();
//! assert_eq!(XgspMessage::parse(&xml)?, join);
//! # Ok::<(), mmcs_xgsp::message::ParseXgspError>(())
//! ```

/// Scheduled-mode session reservations and their calendar.
pub mod calendar;
/// Floor control: who may speak/present, queueing and grants.
pub mod floor;
/// Media kinds carried by a session and their per-kind defaults.
pub mod media;
/// The XGSP wire messages and their XML encoding.
pub mod message;
/// Telemetry instrument bundle for the session server.
pub mod metrics;
/// The session server: owns sessions, turns messages into effects.
pub mod server;
/// One collaboration session: members, streams, floor and lifecycle.
pub mod session;
/// WSDL-CI, the WSDL Collaboration Interface to the session server.
pub mod wsdl_ci;

pub use message::XgspMessage;
pub use server::SessionServer;
pub use session::Session;
