//! WSDL-CI — the WSDL Collaboration Interface.
//!
//! WSDL-CI "gives an interface definition of any collaboration server"
//! (§2.2): a third-party MCU, the Admire conference server, a streaming
//! server — anything the XGSP session server should be able to schedule
//! into a meeting. The trait below is that interface; the descriptor
//! renders as a (simplified) WSDL document so communities can publish
//! their services, and the session server only ever talks to a
//! `dyn CollaborationServer`.

use core::fmt;

use mmcs_util::id::{SessionId, TerminalId};
use mmcs_util::xml::Element;

/// One operation a collaboration server exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDescriptor {
    /// Operation name (`establishSession`, `addMember`, …).
    pub name: String,
    /// Input message part names.
    pub inputs: Vec<String>,
    /// Output message part names.
    pub outputs: Vec<String>,
}

/// The self-description a collaboration server publishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescriptor {
    /// Service name (`AdmireConferenceService`).
    pub service: String,
    /// The community operating it (`admire.cn`, `h323.example`).
    pub community: String,
    /// The endpoint URL the SOAP binding targets.
    pub endpoint: String,
    /// Operations beyond the mandatory session ones.
    pub operations: Vec<OperationDescriptor>,
}

impl ServiceDescriptor {
    /// The operations every WSDL-CI service must implement.
    pub fn mandatory_operations() -> Vec<OperationDescriptor> {
        [
            ("establishSession", vec!["sessionId", "name"], vec!["status"]),
            (
                "addMember",
                vec!["sessionId", "user", "terminal"],
                vec!["status"],
            ),
            ("removeMember", vec!["sessionId", "user"], vec!["status"]),
            ("control", vec!["sessionId", "operation", "args"], vec!["result"]),
            ("teardownSession", vec!["sessionId"], vec!["status"]),
        ]
        .into_iter()
        .map(|(name, inputs, outputs)| OperationDescriptor {
            name: name.to_owned(),
            inputs: inputs.into_iter().map(str::to_owned).collect(),
            outputs: outputs.into_iter().map(str::to_owned).collect(),
        })
        .collect()
    }

    /// Renders a simplified WSDL document for this service (definitions,
    /// portType with one operation element each, service/port with the
    /// SOAP address).
    pub fn to_wsdl(&self) -> Element {
        let mut port_type = Element::new("wsdl:portType")
            .with_attr("name", format!("{}PortType", self.service));
        for op in Self::mandatory_operations().iter().chain(&self.operations) {
            let mut op_el = Element::new("wsdl:operation").with_attr("name", &op.name);
            op_el.push_child(
                Element::new("wsdl:input").with_attr("message", op.inputs.join(" ")),
            );
            op_el.push_child(
                Element::new("wsdl:output").with_attr("message", op.outputs.join(" ")),
            );
            port_type.push_child(op_el);
        }
        let service = Element::new("wsdl:service")
            .with_attr("name", &self.service)
            .with_child(
                Element::new("wsdl:port")
                    .with_attr("name", format!("{}Port", self.service))
                    .with_child(Element::new("soap:address").with_attr("location", &self.endpoint)),
            );
        Element::new("wsdl:definitions")
            .with_attr("name", &self.service)
            .with_attr("targetNamespace", format!("urn:globalmmcs:{}", self.community))
            .with_child(port_type)
            .with_child(service)
    }
}

/// Error from a collaboration server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CiError {
    /// The server does not know this session.
    UnknownSession(SessionId),
    /// The member is unknown within that session.
    UnknownMember(String),
    /// The control operation is unsupported.
    UnsupportedOperation(String),
    /// The server refused the request (community-specific reason).
    Refused(String),
}

impl fmt::Display for CiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiError::UnknownSession(s) => write!(f, "unknown session {s}"),
            CiError::UnknownMember(u) => write!(f, "unknown member {u}"),
            CiError::UnsupportedOperation(op) => write!(f, "unsupported operation {op:?}"),
            CiError::Refused(why) => write!(f, "refused: {why}"),
        }
    }
}

impl std::error::Error for CiError {}

/// The WSDL-CI contract every schedulable collaboration server
/// implements. Object-safe: the session server holds
/// `Box<dyn CollaborationServer>` per community.
pub trait CollaborationServer {
    /// The service's self-description.
    fn descriptor(&self) -> ServiceDescriptor;

    /// Mirror an XGSP session into this community.
    ///
    /// # Errors
    ///
    /// [`CiError::Refused`] when the community cannot host the session.
    fn establish_session(&mut self, session: SessionId, name: &str) -> Result<(), CiError>;

    /// Add a member (already joined on the XGSP side) to the mirrored
    /// session.
    ///
    /// # Errors
    ///
    /// [`CiError::UnknownSession`] when the session was never established.
    fn add_member(
        &mut self,
        session: SessionId,
        user: &str,
        terminal: TerminalId,
    ) -> Result<(), CiError>;

    /// Remove a member.
    ///
    /// # Errors
    ///
    /// [`CiError::UnknownSession`] / [`CiError::UnknownMember`].
    fn remove_member(&mut self, session: SessionId, user: &str) -> Result<(), CiError>;

    /// Community-specific control (e.g. `"rendezvous"` for Admire,
    /// `"selectVideo"` for an MCU). Arguments and results are string
    /// pairs, as the SOAP binding carries them.
    ///
    /// # Errors
    ///
    /// [`CiError::UnsupportedOperation`] for unknown operations.
    fn control(
        &mut self,
        session: SessionId,
        operation: &str,
        args: &[(String, String)],
    ) -> Result<Vec<(String, String)>, CiError>;

    /// Tear the mirrored session down.
    ///
    /// # Errors
    ///
    /// [`CiError::UnknownSession`] when the session was never established.
    fn teardown_session(&mut self, session: SessionId) -> Result<(), CiError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A minimal in-memory WSDL-CI implementation for trait-level tests.
    #[derive(Default)]
    struct FakeMcu {
        sessions: HashMap<SessionId, Vec<String>>,
    }

    impl CollaborationServer for FakeMcu {
        fn descriptor(&self) -> ServiceDescriptor {
            ServiceDescriptor {
                service: "FakeMcu".into(),
                community: "test".into(),
                endpoint: "http://mcu.test/soap".into(),
                operations: vec![OperationDescriptor {
                    name: "selectVideo".into(),
                    inputs: vec!["sessionId".into(), "user".into()],
                    outputs: vec!["status".into()],
                }],
            }
        }

        fn establish_session(&mut self, session: SessionId, _name: &str) -> Result<(), CiError> {
            self.sessions.insert(session, Vec::new());
            Ok(())
        }

        fn add_member(
            &mut self,
            session: SessionId,
            user: &str,
            _terminal: TerminalId,
        ) -> Result<(), CiError> {
            self.sessions
                .get_mut(&session)
                .ok_or(CiError::UnknownSession(session))?
                .push(user.to_owned());
            Ok(())
        }

        fn remove_member(&mut self, session: SessionId, user: &str) -> Result<(), CiError> {
            let members = self
                .sessions
                .get_mut(&session)
                .ok_or(CiError::UnknownSession(session))?;
            let pos = members
                .iter()
                .position(|m| m == user)
                .ok_or_else(|| CiError::UnknownMember(user.to_owned()))?;
            members.remove(pos);
            Ok(())
        }

        fn control(
            &mut self,
            _session: SessionId,
            operation: &str,
            _args: &[(String, String)],
        ) -> Result<Vec<(String, String)>, CiError> {
            if operation == "selectVideo" {
                Ok(vec![("status".into(), "ok".into())])
            } else {
                Err(CiError::UnsupportedOperation(operation.to_owned()))
            }
        }

        fn teardown_session(&mut self, session: SessionId) -> Result<(), CiError> {
            self.sessions
                .remove(&session)
                .map(|_| ())
                .ok_or(CiError::UnknownSession(session))
        }
    }

    #[test]
    fn mandatory_operations_are_complete() {
        let names: Vec<String> = ServiceDescriptor::mandatory_operations()
            .into_iter()
            .map(|o| o.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "establishSession",
                "addMember",
                "removeMember",
                "control",
                "teardownSession"
            ]
        );
    }

    #[test]
    fn wsdl_document_structure() {
        let mcu = FakeMcu::default();
        let wsdl = mcu.descriptor().to_wsdl();
        assert_eq!(wsdl.name(), "wsdl:definitions");
        let port_type = wsdl.child("wsdl:portType").unwrap();
        // 5 mandatory + 1 extra operation.
        assert_eq!(port_type.children_named("wsdl:operation").count(), 6);
        let address = wsdl
            .child("wsdl:service")
            .and_then(|s| s.child("wsdl:port"))
            .and_then(|p| p.child("soap:address"))
            .unwrap();
        assert_eq!(address.attr("location"), Some("http://mcu.test/soap"));
        // The document parses back.
        let reparsed = Element::parse(&wsdl.to_document()).unwrap();
        assert_eq!(reparsed, wsdl);
    }

    #[test]
    fn trait_object_lifecycle() {
        let mut server: Box<dyn CollaborationServer> = Box::<FakeMcu>::default();
        let session = SessionId::from_raw(4);
        server.establish_session(session, "demo").unwrap();
        server
            .add_member(session, "alice", TerminalId::from_raw(1))
            .unwrap();
        assert_eq!(
            server.remove_member(session, "bob"),
            Err(CiError::UnknownMember("bob".into()))
        );
        let result = server.control(session, "selectVideo", &[]).unwrap();
        assert_eq!(result[0].1, "ok");
        assert_eq!(
            server.control(session, "levitate", &[]),
            Err(CiError::UnsupportedOperation("levitate".into()))
        );
        server.teardown_session(session).unwrap();
        assert_eq!(
            server.teardown_session(session),
            Err(CiError::UnknownSession(session))
        );
    }
}
