//! Floor control.
//!
//! A session has one *floor* (the right to address the conference — in
//! A/V terms, to have your video selected and your audio unmuted by the
//! mixer). Members request it, the chair grants it, holders release it;
//! waiting requesters queue in FIFO order, as H.323's conference control
//! and the Access Grid's informal practice both did.

use std::collections::VecDeque;

/// The floor state machine for one session.
///
/// Members are identified by their directory names (`String`), matching
/// the XGSP messages.
///
/// # Examples
///
/// ```
/// use mmcs_xgsp::floor::Floor;
///
/// let mut floor = Floor::new();
/// floor.request("alice".into());
/// floor.request("bob".into());
/// assert_eq!(floor.grant_next(), Some("alice".to_owned()));
/// assert_eq!(floor.holder(), Some("alice"));
/// assert!(floor.release("alice"));
/// assert_eq!(floor.grant_next(), Some("bob".to_owned()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Floor {
    holder: Option<String>,
    queue: VecDeque<String>,
}

impl Floor {
    /// Creates an empty floor (no holder, no queue).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current holder, if any.
    pub fn holder(&self) -> Option<&str> {
        self.holder.as_deref()
    }

    /// Members waiting, in grant order.
    pub fn queue(&self) -> impl Iterator<Item = &str> {
        self.queue.iter().map(String::as_str)
    }

    /// Enqueues a request. Duplicate requests (already holding or already
    /// queued) are ignored; returns whether the request was enqueued.
    pub fn request(&mut self, user: String) -> bool {
        if self.holder.as_deref() == Some(user.as_str()) || self.queue.contains(&user) {
            return false;
        }
        self.queue.push_back(user);
        true
    }

    /// Grants the floor to the next queued member, if the floor is free.
    /// Returns the new holder.
    pub fn grant_next(&mut self) -> Option<String> {
        if self.holder.is_some() {
            return None;
        }
        let next = self.queue.pop_front()?;
        self.holder = Some(next.clone());
        Some(next)
    }

    /// Grants the floor directly to `user` (chair override), bumping them
    /// past the queue. Fails if someone else holds the floor.
    pub fn grant_to(&mut self, user: &str) -> bool {
        if self.holder.is_some() {
            return false;
        }
        self.queue.retain(|u| u != user);
        self.holder = Some(user.to_owned());
        true
    }

    /// Releases the floor if `user` holds it; returns whether it was
    /// released.
    pub fn release(&mut self, user: &str) -> bool {
        if self.holder.as_deref() == Some(user) {
            self.holder = None;
            true
        } else {
            false
        }
    }

    /// Removes a departing member from holder/queue. Returns `true` if
    /// they held the floor (the caller should then grant the next).
    pub fn remove_member(&mut self, user: &str) -> bool {
        self.queue.retain(|u| u != user);
        self.release(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_respected() {
        let mut floor = Floor::new();
        for user in ["a", "b", "c"] {
            assert!(floor.request(user.into()));
        }
        assert_eq!(floor.grant_next().as_deref(), Some("a"));
        // Floor busy: no double grant.
        assert_eq!(floor.grant_next(), None);
        floor.release("a");
        assert_eq!(floor.grant_next().as_deref(), Some("b"));
        assert_eq!(floor.queue().collect::<Vec<_>>(), vec!["c"]);
    }

    #[test]
    fn duplicate_requests_are_ignored() {
        let mut floor = Floor::new();
        assert!(floor.request("a".into()));
        assert!(!floor.request("a".into()));
        floor.grant_next();
        assert!(!floor.request("a".into())); // already holds
        assert_eq!(floor.queue().count(), 0);
    }

    #[test]
    fn only_holder_can_release() {
        let mut floor = Floor::new();
        floor.request("a".into());
        floor.grant_next();
        assert!(!floor.release("b"));
        assert!(floor.release("a"));
        assert!(!floor.release("a")); // already free
    }

    #[test]
    fn chair_override_skips_queue() {
        let mut floor = Floor::new();
        floor.request("a".into());
        floor.request("b".into());
        assert!(floor.grant_to("b"));
        assert_eq!(floor.holder(), Some("b"));
        // "b" was removed from the queue; "a" still waits.
        floor.release("b");
        assert_eq!(floor.grant_next().as_deref(), Some("a"));
        assert_eq!(floor.grant_next(), None);
    }

    #[test]
    fn chair_override_fails_when_held() {
        let mut floor = Floor::new();
        floor.request("a".into());
        floor.grant_next();
        assert!(!floor.grant_to("b"));
    }

    #[test]
    fn departing_holder_frees_the_floor() {
        let mut floor = Floor::new();
        floor.request("a".into());
        floor.request("b".into());
        floor.grant_next();
        assert!(floor.remove_member("a"));
        assert_eq!(floor.holder(), None);
        assert_eq!(floor.grant_next().as_deref(), Some("b"));
    }

    #[test]
    fn departing_waiter_leaves_queue() {
        let mut floor = Floor::new();
        floor.request("a".into());
        floor.request("b".into());
        assert!(!floor.remove_member("b"));
        floor.grant_next();
        floor.release("a");
        assert_eq!(floor.grant_next(), None);
    }
}
