//! The XGSP session server.
//!
//! The session server is the heart of Global-MMCS: it owns every active
//! session, accepts XGSP messages (from whichever gateway translated
//! them), and emits replies, member notifications and broker topic
//! commands. Like every protocol core in this workspace it is sans-IO:
//! `handle(from, message) -> Vec<ServerOutput>`; the `global-mmcs` crate
//! wires the outputs to endpoints and to the NaradaBrokering network.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use mmcs_util::id::{IdAllocator, SessionId};

use crate::media::MediaKind;
use crate::message::{FloorOp, MediaOp, SessionMode, XgspMessage};
use crate::metrics::XgspMetrics;
use crate::session::{Session, SessionError};

/// A topic-management command for the broker network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerCommand {
    /// Ensure a topic exists (informational — NaradaBrokering topics are
    /// implicit, but RTP proxies and recorders key off this).
    CreateTopic(String),
    /// A session's topic is gone; tear down proxies/recorders.
    RemoveTopic(String),
}

/// One effect of handling an XGSP message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerOutput {
    /// Send this message back to the requester.
    Reply(XgspMessage),
    /// Send this message to a member's endpoint.
    Notify {
        /// The member to notify.
        user: String,
        /// The message.
        message: XgspMessage,
    },
    /// Deliver an invitation to a (possibly not-yet-member) user.
    Invite {
        /// The invited user.
        to: String,
        /// The invite message.
        message: XgspMessage,
    },
    /// Manage broker topics.
    Broker(BrokerCommand),
}

/// Per-session bookkeeping the server keeps beyond [`Session`] itself.
#[derive(Debug, Clone)]
struct SessionRecord {
    session: Session,
    mode: SessionMode,
}

/// The XGSP session server. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SessionServer {
    sessions: HashMap<SessionId, SessionRecord>,
    ids: IdAllocator<SessionId>,
    metrics: Option<XgspMetrics>,
}

impl SessionServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the telemetry bundle; lifecycle and membership
    /// operations update it from then on.
    pub fn set_metrics(&mut self, metrics: XgspMetrics) {
        self.metrics = Some(metrics);
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Borrows a session.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id).map(|r| &r.session)
    }

    /// The mode a session was created in.
    pub fn mode(&self, id: SessionId) -> Option<SessionMode> {
        self.sessions.get(&id).map(|r| r.mode)
    }

    /// Iterates over all live session ids.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.sessions.keys().copied()
    }

    /// Handles one XGSP message.
    ///
    /// `from` is the authenticated directory name of the requester, when
    /// the transport knows it (gateways always do); authorization checks
    /// (chair-only operations) use it. Errors come back as
    /// [`ServerOutput::Reply`] carrying [`XgspMessage::Error`] — gateways
    /// translate them into their community's failure signaling.
    pub fn handle(&mut self, from: Option<&str>, message: XgspMessage) -> Vec<ServerOutput> {
        let outputs = self.handle_inner(from, message);
        if let Some(m) = &self.metrics {
            let errors = outputs
                .iter()
                .filter(|o| matches!(o, ServerOutput::Reply(XgspMessage::Error { .. })))
                .count() as u64;
            m.errors.add(errors);
            m.active_sessions.set(self.sessions.len() as i64);
        }
        outputs
    }

    fn handle_inner(&mut self, from: Option<&str>, message: XgspMessage) -> Vec<ServerOutput> {
        match message {
            XgspMessage::CreateSession { name, mode, media } => {
                let id = self.ids.next();
                let session = Session::new(id, name.clone(), &media);
                let mut outputs: Vec<ServerOutput> = session
                    .streams()
                    .iter()
                    .map(|s| ServerOutput::Broker(BrokerCommand::CreateTopic(s.topic.clone())))
                    .collect();
                self.sessions.insert(id, SessionRecord { session, mode });
                if let Some(m) = &self.metrics {
                    m.sessions_created.inc();
                }
                outputs.push(ServerOutput::Reply(XgspMessage::SessionCreated {
                    session: id,
                    name,
                }));
                outputs
            }
            XgspMessage::TerminateSession { session } => {
                // Occupied-entry dance: check permission on the borrowed
                // record, then remove through the same entry, so there is
                // no second lookup that could (impossibly) miss.
                let Entry::Occupied(mut occupied) = self.sessions.entry(session) else {
                    return vec![unknown_session(session)];
                };
                if let Err(err) = occupied.get_mut().session.terminate(from) {
                    return vec![session_error(err)];
                }
                let record = occupied.remove();
                if let Some(m) = &self.metrics {
                    m.sessions_terminated.inc();
                }
                let mut outputs = Vec::new();
                for stream in record.session.streams() {
                    outputs.push(ServerOutput::Broker(BrokerCommand::RemoveTopic(
                        stream.topic.clone(),
                    )));
                }
                outputs
            }
            XgspMessage::Join {
                session,
                user,
                terminal,
                media,
            } => {
                let Some(record) = self.sessions.get_mut(&session) else {
                    return vec![unknown_session(session)];
                };
                let before: Vec<String> = record
                    .session
                    .streams()
                    .iter()
                    .map(|s| s.topic.clone())
                    .collect();
                let members_before: Vec<String> = record
                    .session
                    .members()
                    .map(|m| m.user.clone())
                    .collect();
                match record.session.join(user.clone(), terminal, media) {
                    Ok(topics) => {
                        if let Some(m) = &self.metrics {
                            m.joins.inc();
                        }
                        let mut outputs = Vec::new();
                        for stream in record.session.streams() {
                            if !before.contains(&stream.topic) {
                                outputs.push(ServerOutput::Broker(BrokerCommand::CreateTopic(
                                    stream.topic.clone(),
                                )));
                            }
                        }
                        outputs.push(ServerOutput::Reply(XgspMessage::JoinAck {
                            session,
                            topics,
                        }));
                        for member in members_before {
                            outputs.push(ServerOutput::Notify {
                                user: member,
                                message: XgspMessage::Notify {
                                    session,
                                    what: "joined".into(),
                                    user: user.clone(),
                                },
                            });
                        }
                        outputs
                    }
                    Err(err) => vec![session_error(err)],
                }
            }
            XgspMessage::Leave { session, user } => {
                let Some(record) = self.sessions.get_mut(&session) else {
                    return vec![unknown_session(session)];
                };
                if let Err(err) = record.session.leave(&user) {
                    return vec![session_error(err)];
                }
                if let Some(m) = &self.metrics {
                    m.leaves.inc();
                }
                let mut outputs: Vec<ServerOutput> = record
                    .session
                    .members()
                    .map(|m| ServerOutput::Notify {
                        user: m.user.clone(),
                        message: XgspMessage::Notify {
                            session,
                            what: "left".into(),
                            user: user.clone(),
                        },
                    })
                    .collect();
                // Ad-hoc rooms evaporate when the last member leaves;
                // scheduled rooms persist until their reservation ends.
                if record.session.member_count() == 0 && record.mode == SessionMode::AdHoc {
                    if let Some(record) = self.sessions.remove(&session) {
                        if let Some(m) = &self.metrics {
                            m.sessions_terminated.inc();
                        }
                        for stream in record.session.streams() {
                            outputs.push(ServerOutput::Broker(BrokerCommand::RemoveTopic(
                                stream.topic.clone(),
                            )));
                        }
                    }
                }
                outputs
            }
            XgspMessage::Invite { session, from: inviter, to } => {
                let Some(record) = self.sessions.get(&session) else {
                    return vec![unknown_session(session)];
                };
                if record.session.member(&inviter).is_none() {
                    return vec![session_error(SessionError::NotMember(inviter))];
                }
                vec![ServerOutput::Invite {
                    to: to.clone(),
                    message: XgspMessage::Invite {
                        session,
                        from: inviter,
                        to,
                    },
                }]
            }
            XgspMessage::Floor { session, op, user } => {
                self.handle_floor(from, session, op, user)
            }
            XgspMessage::MediaControl {
                session,
                user,
                op,
                kind,
            } => {
                let Some(record) = self.sessions.get_mut(&session) else {
                    return vec![unknown_session(session)];
                };
                let Some(kind) = MediaKind::from_str_opt(&kind) else {
                    return vec![ServerOutput::Reply(XgspMessage::Error {
                        code: "bad-media".into(),
                        detail: format!("unknown media kind {kind:?}"),
                    })];
                };
                let result = match op {
                    MediaOp::Mute => record.session.set_muted(&user, kind, true),
                    MediaOp::Unmute => record.session.set_muted(&user, kind, false),
                    MediaOp::Select => {
                        if record.session.member(&user).is_none() {
                            Err(SessionError::NotMember(user.clone()))
                        } else {
                            Ok(())
                        }
                    }
                };
                if let Err(err) = result {
                    return vec![session_error(err)];
                }
                let what = match op {
                    MediaOp::Mute => "muted",
                    MediaOp::Unmute => "unmuted",
                    MediaOp::Select => "video-selected",
                };
                record
                    .session
                    .members()
                    .map(|m| ServerOutput::Notify {
                        user: m.user.clone(),
                        message: XgspMessage::Notify {
                            session,
                            what: what.into(),
                            user: user.clone(),
                        },
                    })
                    .collect()
            }
            XgspMessage::AppData { session, user, body } => {
                let Some(record) = self.sessions.get(&session) else {
                    return vec![unknown_session(session)];
                };
                if record.session.member(&user).is_none() {
                    return vec![session_error(SessionError::NotMember(user))];
                }
                record
                    .session
                    .members()
                    .filter(|m| m.user != user)
                    .map(|m| ServerOutput::Notify {
                        user: m.user.clone(),
                        message: XgspMessage::AppData {
                            session,
                            user: user.clone(),
                            body: body.clone(),
                        },
                    })
                    .collect()
            }
            // Server-emitted message kinds are not valid requests.
            XgspMessage::SessionCreated { .. }
            | XgspMessage::JoinAck { .. }
            | XgspMessage::Notify { .. }
            | XgspMessage::Error { .. } => vec![ServerOutput::Reply(XgspMessage::Error {
                code: "not-a-request".into(),
                detail: "message type is server-emitted only".into(),
            })],
        }
    }

    fn handle_floor(
        &mut self,
        from: Option<&str>,
        session: SessionId,
        op: FloorOp,
        user: String,
    ) -> Vec<ServerOutput> {
        let Some(record) = self.sessions.get_mut(&session) else {
            return vec![unknown_session(session)];
        };
        if record.session.member(&user).is_none() {
            return vec![session_error(SessionError::NotMember(user))];
        }
        let chair = record.session.chair().map(str::to_owned);
        let notify_all = |record: &SessionRecord, what: &str, user: &str| -> Vec<ServerOutput> {
            record
                .session
                .members()
                .map(|m| ServerOutput::Notify {
                    user: m.user.clone(),
                    message: XgspMessage::Notify {
                        session,
                        what: what.into(),
                        user: user.to_owned(),
                    },
                })
                .collect()
        };
        match op {
            FloorOp::Request => {
                record.session.floor_mut().request(user.clone());
                // Auto-grant when free, as the paper's informal ad-hoc
                // collaborations expect.
                if let Some(granted) = record.session.floor_mut().grant_next() {
                    notify_all(record, "floor-granted", &granted)
                } else {
                    notify_all(record, "floor-requested", &user)
                }
            }
            FloorOp::Grant => {
                // Chair-only.
                if from.is_some() && from != chair.as_deref() {
                    return vec![session_error(SessionError::NotChair(
                        from.unwrap_or_default().to_owned(),
                    ))];
                }
                // Pre-empt the current holder if any.
                if let Some(holder) = record.session.floor().holder().map(str::to_owned) {
                    record.session.floor_mut().release(&holder);
                }
                record.session.floor_mut().grant_to(&user);
                notify_all(record, "floor-granted", &user)
            }
            FloorOp::Release => {
                let requester = from.unwrap_or(user.as_str());
                if requester != user && Some(requester) != chair.as_deref() {
                    return vec![session_error(SessionError::NotChair(requester.to_owned()))];
                }
                if !record.session.floor_mut().release(&user) {
                    return vec![ServerOutput::Reply(XgspMessage::Error {
                        code: "not-holder".into(),
                        detail: format!("{user} does not hold the floor"),
                    })];
                }
                let mut outputs = notify_all(record, "floor-released", &user);
                if let Some(next) = record.session.floor_mut().grant_next() {
                    outputs.extend(notify_all(record, "floor-granted", &next));
                }
                outputs
            }
        }
    }
}

fn unknown_session(session: SessionId) -> ServerOutput {
    ServerOutput::Reply(XgspMessage::Error {
        code: "unknown-session".into(),
        detail: format!("session {session} does not exist"),
    })
}

fn session_error(err: SessionError) -> ServerOutput {
    let code = match err {
        SessionError::Terminated => "terminated",
        SessionError::AlreadyMember(_) => "already-member",
        SessionError::NotMember(_) => "not-member",
        SessionError::NotChair(_) => "not-chair",
    };
    ServerOutput::Reply(XgspMessage::Error {
        code: code.into(),
        detail: err.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaDescription;
    use mmcs_util::id::TerminalId;

    fn create(server: &mut SessionServer, mode: SessionMode) -> SessionId {
        let outputs = server.handle(
            None,
            XgspMessage::CreateSession {
                name: "weekly".into(),
                mode,
                media: vec![
                    MediaDescription::new(MediaKind::Audio, "PCMU"),
                    MediaDescription::new(MediaKind::Video, "H263"),
                ],
            },
        );
        let Some(ServerOutput::Reply(XgspMessage::SessionCreated { session, .. })) =
            outputs.last()
        else {
            panic!("expected SessionCreated, got {outputs:?}");
        };
        *session
    }

    fn join(server: &mut SessionServer, session: SessionId, user: &str) -> Vec<ServerOutput> {
        server.handle(
            Some(user),
            XgspMessage::Join {
                session,
                user: user.into(),
                terminal: TerminalId::from_raw(1),
                media: vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
            },
        )
    }

    #[test]
    fn create_emits_topics_and_reply() {
        let mut server = SessionServer::new();
        let outputs = server.handle(
            None,
            XgspMessage::CreateSession {
                name: "demo".into(),
                mode: SessionMode::AdHoc,
                media: vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
            },
        );
        assert_eq!(outputs.len(), 2);
        assert!(matches!(
            &outputs[0],
            ServerOutput::Broker(BrokerCommand::CreateTopic(t)) if t.ends_with("/audio")
        ));
        assert_eq!(server.session_count(), 1);
    }

    #[test]
    fn join_acks_with_topics_and_notifies_others() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::Scheduled);
        let outputs = join(&mut server, session, "alice");
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Reply(XgspMessage::JoinAck { topics, .. }) if topics.len() == 1
        )));
        let outputs = join(&mut server, session, "bob");
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Notify { user, message: XgspMessage::Notify { what, .. } }
                if user == "alice" && what == "joined"
        )));
    }

    #[test]
    fn join_unknown_session_errors() {
        let mut server = SessionServer::new();
        let outputs = join(&mut server, SessionId::from_raw(99), "alice");
        assert!(matches!(
            &outputs[0],
            ServerOutput::Reply(XgspMessage::Error { code, .. }) if code == "unknown-session"
        ));
    }

    #[test]
    fn adhoc_session_evaporates_when_empty() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::AdHoc);
        join(&mut server, session, "alice");
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::Leave {
                session,
                user: "alice".into(),
            },
        );
        assert!(outputs
            .iter()
            .any(|o| matches!(o, ServerOutput::Broker(BrokerCommand::RemoveTopic(_)))));
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn scheduled_session_persists_when_empty() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::Scheduled);
        join(&mut server, session, "alice");
        server.handle(
            Some("alice"),
            XgspMessage::Leave {
                session,
                user: "alice".into(),
            },
        );
        assert_eq!(server.session_count(), 1);
    }

    #[test]
    fn floor_request_auto_grants_then_queues() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::Scheduled);
        join(&mut server, session, "alice");
        join(&mut server, session, "bob");
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::Floor {
                session,
                op: FloorOp::Request,
                user: "alice".into(),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Notify { message: XgspMessage::Notify { what, user, .. }, .. }
                if what == "floor-granted" && user == "alice"
        )));
        let outputs = server.handle(
            Some("bob"),
            XgspMessage::Floor {
                session,
                op: FloorOp::Request,
                user: "bob".into(),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Notify { message: XgspMessage::Notify { what, .. }, .. }
                if what == "floor-requested"
        )));
        // Release by alice grants bob.
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::Floor {
                session,
                op: FloorOp::Release,
                user: "alice".into(),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Notify { message: XgspMessage::Notify { what, user, .. }, .. }
                if what == "floor-granted" && user == "bob"
        )));
    }

    #[test]
    fn floor_grant_is_chair_only() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::Scheduled);
        join(&mut server, session, "alice"); // chair
        join(&mut server, session, "bob");
        join(&mut server, session, "carol");
        let outputs = server.handle(
            Some("bob"),
            XgspMessage::Floor {
                session,
                op: FloorOp::Grant,
                user: "carol".into(),
            },
        );
        assert!(matches!(
            &outputs[0],
            ServerOutput::Reply(XgspMessage::Error { code, .. }) if code == "not-chair"
        ));
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::Floor {
                session,
                op: FloorOp::Grant,
                user: "carol".into(),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Notify { message: XgspMessage::Notify { what, user, .. }, .. }
                if what == "floor-granted" && user == "carol"
        )));
    }

    #[test]
    fn invite_routes_to_target() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::AdHoc);
        join(&mut server, session, "alice");
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::Invite {
                session,
                from: "alice".into(),
                to: "bob".into(),
            },
        );
        assert!(matches!(
            &outputs[0],
            ServerOutput::Invite { to, .. } if to == "bob"
        ));
        // Non-members cannot invite.
        let outputs = server.handle(
            Some("mallory"),
            XgspMessage::Invite {
                session,
                from: "mallory".into(),
                to: "bob".into(),
            },
        );
        assert!(matches!(
            &outputs[0],
            ServerOutput::Reply(XgspMessage::Error { code, .. }) if code == "not-member"
        ));
    }

    #[test]
    fn app_data_relays_to_everyone_else() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::AdHoc);
        join(&mut server, session, "alice");
        join(&mut server, session, "bob");
        join(&mut server, session, "carol");
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::AppData {
                session,
                user: "alice".into(),
                body: "stroke".into(),
            },
        );
        let recipients: Vec<&str> = outputs
            .iter()
            .filter_map(|o| match o {
                ServerOutput::Notify { user, .. } => Some(user.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(recipients, vec!["bob", "carol"]);
    }

    #[test]
    fn terminate_requires_chair_and_cleans_topics() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::Scheduled);
        join(&mut server, session, "alice");
        join(&mut server, session, "bob");
        let outputs = server.handle(Some("bob"), XgspMessage::TerminateSession { session });
        assert!(matches!(
            &outputs[0],
            ServerOutput::Reply(XgspMessage::Error { code, .. }) if code == "not-chair"
        ));
        let outputs = server.handle(Some("alice"), XgspMessage::TerminateSession { session });
        let topic_removals = outputs
            .iter()
            .filter(|o| matches!(o, ServerOutput::Broker(BrokerCommand::RemoveTopic(_))))
            .count();
        assert_eq!(topic_removals, 2);
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn server_emitted_types_are_rejected_as_requests() {
        let mut server = SessionServer::new();
        let outputs = server.handle(
            None,
            XgspMessage::Error {
                code: "x".into(),
                detail: "y".into(),
            },
        );
        assert!(matches!(
            &outputs[0],
            ServerOutput::Reply(XgspMessage::Error { code, .. }) if code == "not-a-request"
        ));
    }

    #[test]
    fn telemetry_tracks_session_lifecycle() {
        let mut server = SessionServer::new();
        let registry = mmcs_telemetry::Registry::new();
        let metrics = XgspMetrics::register(&registry, "xgsp");
        server.set_metrics(metrics.clone());

        let session = create(&mut server, SessionMode::AdHoc);
        join(&mut server, session, "alice");
        join(&mut server, session, "bob");
        assert_eq!(metrics.sessions_created.get(), 1);
        assert_eq!(metrics.joins.get(), 2);
        assert_eq!(metrics.active_sessions.get(), 1);

        // Unknown-session join is an error, not a join.
        join(&mut server, SessionId::from_raw(99), "mallory");
        assert_eq!(metrics.joins.get(), 2);
        assert_eq!(metrics.errors.get(), 1);

        for user in ["alice", "bob"] {
            server.handle(
                Some(user),
                XgspMessage::Leave {
                    session,
                    user: user.into(),
                },
            );
        }
        assert_eq!(metrics.leaves.get(), 2);
        // Ad-hoc evaporation counts as a termination.
        assert_eq!(metrics.sessions_terminated.get(), 1);
        assert_eq!(metrics.active_sessions.get(), 0);
    }

    #[test]
    fn media_control_mute_notifies() {
        let mut server = SessionServer::new();
        let session = create(&mut server, SessionMode::AdHoc);
        join(&mut server, session, "alice");
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::MediaControl {
                session,
                user: "alice".into(),
                op: MediaOp::Mute,
                kind: "audio".into(),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Notify { message: XgspMessage::Notify { what, .. }, .. }
                if what == "muted"
        )));
        assert!(server
            .session(session)
            .unwrap()
            .member("alice")
            .unwrap()
            .muted_audio);
        // Unknown media kind errors.
        let outputs = server.handle(
            Some("alice"),
            XgspMessage::MediaControl {
                session,
                user: "alice".into(),
                op: MediaOp::Mute,
                kind: "holograms".into(),
            },
        );
        assert!(matches!(
            &outputs[0],
            ServerOutput::Reply(XgspMessage::Error { code, .. }) if code == "bad-media"
        ));
    }
}
