//! Media descriptions shared across XGSP messages and session state.

use core::fmt;

use mmcs_util::xml::Element;

/// The kind of a media stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaKind {
    /// Audio.
    Audio,
    /// Video.
    Video,
    /// Shared-application/data channel (whiteboard, shared browser, …).
    Application,
}

impl MediaKind {
    /// The XML tag / topic segment for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
            MediaKind::Application => "app",
        }
    }

    /// Parses a kind from its tag name.
    pub fn from_str_opt(s: &str) -> Option<MediaKind> {
        match s {
            "audio" => Some(MediaKind::Audio),
            "video" => Some(MediaKind::Video),
            "app" => Some(MediaKind::Application),
            _ => None,
        }
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One media stream a terminal offers or a session carries.
///
/// # Examples
///
/// ```
/// use mmcs_xgsp::media::{MediaDescription, MediaKind};
///
/// let m = MediaDescription::new(MediaKind::Video, "H263");
/// let xml = m.to_element();
/// assert_eq!(MediaDescription::from_element(&xml).unwrap(), m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MediaDescription {
    /// Audio/video/application.
    pub kind: MediaKind,
    /// Codec name (PCMU, GSM, H261, H263, …).
    pub codec: String,
    /// Target bitrate in bits per second, if constrained.
    pub bitrate_bps: Option<u64>,
}

impl MediaDescription {
    /// Creates a description with no bitrate constraint.
    pub fn new(kind: MediaKind, codec: impl Into<String>) -> Self {
        Self {
            kind,
            codec: codec.into(),
            bitrate_bps: None,
        }
    }

    /// Sets a bitrate constraint, builder style.
    pub fn with_bitrate(mut self, bps: u64) -> Self {
        self.bitrate_bps = Some(bps);
        self
    }

    /// Renders as an XGSP XML element (`<audio codec="PCMU"/>` etc.).
    pub fn to_element(&self) -> Element {
        let mut element = Element::new(self.kind.as_str()).with_attr("codec", &self.codec);
        if let Some(bps) = self.bitrate_bps {
            element.set_attr("bitrate", bps.to_string());
        }
        element
    }

    /// Parses from an XGSP XML element; `None` when the tag is not a
    /// media kind or required attributes are missing.
    pub fn from_element(element: &Element) -> Option<MediaDescription> {
        let kind = MediaKind::from_str_opt(element.name())?;
        let codec = element.attr("codec")?.to_owned();
        let bitrate_bps = match element.attr("bitrate") {
            Some(raw) => Some(raw.parse().ok()?),
            None => None,
        };
        Some(MediaDescription {
            kind,
            codec,
            bitrate_bps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips() {
        for kind in [MediaKind::Audio, MediaKind::Video, MediaKind::Application] {
            assert_eq!(MediaKind::from_str_opt(kind.as_str()), Some(kind));
        }
        assert_eq!(MediaKind::from_str_opt("smellovision"), None);
    }

    #[test]
    fn description_round_trips_with_bitrate() {
        let m = MediaDescription::new(MediaKind::Video, "H263").with_bitrate(600_000);
        let element = m.to_element();
        assert_eq!(element.attr("bitrate"), Some("600000"));
        assert_eq!(MediaDescription::from_element(&element), Some(m));
    }

    #[test]
    fn description_rejects_bad_elements() {
        let bad = Element::new("audio"); // missing codec
        assert_eq!(MediaDescription::from_element(&bad), None);
        let bad_kind = Element::new("telepathy").with_attr("codec", "x");
        assert_eq!(MediaDescription::from_element(&bad_kind), None);
        let bad_bitrate = Element::new("audio")
            .with_attr("codec", "PCMU")
            .with_attr("bitrate", "lots");
        assert_eq!(MediaDescription::from_element(&bad_bitrate), None);
    }
}
