//! The XGSP message set and its XML codec.
//!
//! Every gateway (H.323, SIP, Admire, streaming, IM) translates its
//! community's signaling into these messages; the session server speaks
//! nothing else. The wire form is a single `<xgsp>` element whose `type`
//! attribute selects the variant — deliberately simple XML, as the 2002
//! XGSP framework paper sketched.

use core::fmt;

use mmcs_util::id::{SessionId, TerminalId};
use mmcs_util::xml::Element;

use crate::media::MediaDescription;

/// How a session came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionMode {
    /// Created on the spot from an IM conversation or a direct call.
    AdHoc,
    /// Reserved ahead of time through the meeting calendar.
    Scheduled,
}

impl SessionMode {
    fn as_str(self) -> &'static str {
        match self {
            SessionMode::AdHoc => "adhoc",
            SessionMode::Scheduled => "scheduled",
        }
    }

    fn parse(s: &str) -> Option<SessionMode> {
        match s {
            "adhoc" => Some(SessionMode::AdHoc),
            "scheduled" => Some(SessionMode::Scheduled),
            _ => None,
        }
    }
}

/// Floor-control operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloorOp {
    /// A member asks for the floor.
    Request,
    /// The chair grants the floor to a member.
    Grant,
    /// The holder (or chair) releases the floor.
    Release,
}

impl FloorOp {
    fn as_str(self) -> &'static str {
        match self {
            FloorOp::Request => "request",
            FloorOp::Grant => "grant",
            FloorOp::Release => "release",
        }
    }

    fn parse(s: &str) -> Option<FloorOp> {
        match s {
            "request" => Some(FloorOp::Request),
            "grant" => Some(FloorOp::Grant),
            "release" => Some(FloorOp::Release),
            _ => None,
        }
    }
}

/// Media-control operations a member can apply to a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaOp {
    /// Stop sending the stream.
    Mute,
    /// Resume sending.
    Unmute,
    /// Ask the A/V service to make this the selected (broadcast) video.
    Select,
}

impl MediaOp {
    fn as_str(self) -> &'static str {
        match self {
            MediaOp::Mute => "mute",
            MediaOp::Unmute => "unmute",
            MediaOp::Select => "select",
        }
    }

    fn parse(s: &str) -> Option<MediaOp> {
        match s {
            "mute" => Some(MediaOp::Mute),
            "unmute" => Some(MediaOp::Unmute),
            "select" => Some(MediaOp::Select),
            _ => None,
        }
    }
}

/// An XGSP protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum XgspMessage {
    /// Create a new session.
    CreateSession {
        /// Human-readable session name.
        name: String,
        /// Ad-hoc or scheduled.
        mode: SessionMode,
        /// Media the session will carry.
        media: Vec<MediaDescription>,
    },
    /// Server reply: the session now exists.
    SessionCreated {
        /// The new session's id.
        session: SessionId,
        /// The session name, echoed.
        name: String,
    },
    /// Tear a session down.
    TerminateSession {
        /// The session to terminate.
        session: SessionId,
    },
    /// A user joins a session with a terminal.
    Join {
        /// Target session.
        session: SessionId,
        /// Joining user (directory name).
        user: String,
        /// The media terminal they join with.
        terminal: TerminalId,
        /// Media the terminal offers.
        media: Vec<MediaDescription>,
    },
    /// Server reply to a successful join: the topics to use.
    JoinAck {
        /// The session joined.
        session: SessionId,
        /// Broker topics for each accepted media, as `kind=topic` pairs.
        topics: Vec<(String, String)>,
    },
    /// A user leaves.
    Leave {
        /// The session.
        session: SessionId,
        /// The leaving user.
        user: String,
    },
    /// Invite another user into a session.
    Invite {
        /// The session.
        session: SessionId,
        /// Who invites.
        from: String,
        /// Who is invited.
        to: String,
    },
    /// Floor control.
    Floor {
        /// The session.
        session: SessionId,
        /// The operation.
        op: FloorOp,
        /// The member the operation concerns.
        user: String,
    },
    /// Media control.
    MediaControl {
        /// The session.
        session: SessionId,
        /// The member issuing the control.
        user: String,
        /// The operation.
        op: MediaOp,
        /// The media kind affected (`audio`, `video`, `app`).
        kind: String,
    },
    /// Opaque shared-application payload relayed to all members.
    AppData {
        /// The session.
        session: SessionId,
        /// The sending member.
        user: String,
        /// Application-defined body (kept as an XML text blob).
        body: String,
    },
    /// A membership/state notification fanned out to members.
    Notify {
        /// The session.
        session: SessionId,
        /// What happened (`joined`, `left`, `floor-granted`, …).
        what: String,
        /// The member concerned.
        user: String,
    },
    /// An error reply.
    Error {
        /// Machine-readable code (`unknown-session`, `not-member`, …).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl XgspMessage {
    /// The `type` attribute value for this variant.
    pub fn type_name(&self) -> &'static str {
        match self {
            XgspMessage::CreateSession { .. } => "create-session",
            XgspMessage::SessionCreated { .. } => "session-created",
            XgspMessage::TerminateSession { .. } => "terminate-session",
            XgspMessage::Join { .. } => "join",
            XgspMessage::JoinAck { .. } => "join-ack",
            XgspMessage::Leave { .. } => "leave",
            XgspMessage::Invite { .. } => "invite",
            XgspMessage::Floor { .. } => "floor",
            XgspMessage::MediaControl { .. } => "media-control",
            XgspMessage::AppData { .. } => "app-data",
            XgspMessage::Notify { .. } => "notify",
            XgspMessage::Error { .. } => "error",
        }
    }

    /// Renders the message as its XML wire form.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Renders the message as an XML element.
    pub fn to_element(&self) -> Element {
        let mut root = Element::new("xgsp").with_attr("type", self.type_name());
        match self {
            XgspMessage::CreateSession { name, mode, media } => {
                root.set_attr("mode", mode.as_str());
                root.push_child(Element::new("name").with_text(name));
                let mut media_el = Element::new("media");
                for m in media {
                    media_el.push_child(m.to_element());
                }
                root.push_child(media_el);
            }
            XgspMessage::SessionCreated { session, name } => {
                root.set_attr("session", session.value().to_string());
                root.push_child(Element::new("name").with_text(name));
            }
            XgspMessage::TerminateSession { session } => {
                root.set_attr("session", session.value().to_string());
            }
            XgspMessage::Join {
                session,
                user,
                terminal,
                media,
            } => {
                root.set_attr("session", session.value().to_string());
                root.push_child(Element::new("user").with_text(user));
                root.push_child(
                    Element::new("terminal").with_text(terminal.value().to_string()),
                );
                let mut media_el = Element::new("media");
                for m in media {
                    media_el.push_child(m.to_element());
                }
                root.push_child(media_el);
            }
            XgspMessage::JoinAck { session, topics } => {
                root.set_attr("session", session.value().to_string());
                for (kind, topic) in topics {
                    root.push_child(
                        Element::new("topic")
                            .with_attr("media", kind)
                            .with_text(topic),
                    );
                }
            }
            XgspMessage::Leave { session, user } => {
                root.set_attr("session", session.value().to_string());
                root.push_child(Element::new("user").with_text(user));
            }
            XgspMessage::Invite { session, from, to } => {
                root.set_attr("session", session.value().to_string());
                root.push_child(Element::new("from").with_text(from));
                root.push_child(Element::new("to").with_text(to));
            }
            XgspMessage::Floor { session, op, user } => {
                root.set_attr("session", session.value().to_string());
                root.set_attr("op", op.as_str());
                root.push_child(Element::new("user").with_text(user));
            }
            XgspMessage::MediaControl {
                session,
                user,
                op,
                kind,
            } => {
                root.set_attr("session", session.value().to_string());
                root.set_attr("op", op.as_str());
                root.set_attr("media", kind);
                root.push_child(Element::new("user").with_text(user));
            }
            XgspMessage::AppData {
                session,
                user,
                body,
            } => {
                root.set_attr("session", session.value().to_string());
                root.push_child(Element::new("user").with_text(user));
                root.push_child(Element::new("body").with_text(body));
            }
            XgspMessage::Notify {
                session,
                what,
                user,
            } => {
                root.set_attr("session", session.value().to_string());
                root.set_attr("what", what);
                root.push_child(Element::new("user").with_text(user));
            }
            XgspMessage::Error { code, detail } => {
                root.set_attr("code", code);
                root.push_child(Element::new("detail").with_text(detail));
            }
        }
        root
    }

    /// Parses a message from its XML wire form.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXgspError`] on malformed XML, an unknown `type`, or
    /// missing required fields.
    pub fn parse(xml: &str) -> Result<XgspMessage, ParseXgspError> {
        let root = Element::parse(xml).map_err(|e| ParseXgspError::Xml(e.to_string()))?;
        XgspMessage::from_element(&root)
    }

    /// Parses a message from an already-parsed element.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXgspError`] as for [`XgspMessage::parse`].
    pub fn from_element(root: &Element) -> Result<XgspMessage, ParseXgspError> {
        if root.name() != "xgsp" {
            return Err(ParseXgspError::NotXgsp(root.name().to_owned()));
        }
        let type_name = root
            .attr("type")
            .ok_or(ParseXgspError::Missing("type"))?
            .to_owned();
        let session = || -> Result<SessionId, ParseXgspError> {
            let raw = root.attr("session").ok_or(ParseXgspError::Missing("session"))?;
            raw.parse::<u64>()
                .map(SessionId::from_raw)
                .map_err(|_| ParseXgspError::Invalid("session"))
        };
        let child_text = |name: &'static str| -> Result<String, ParseXgspError> {
            root.child_text(name).ok_or(ParseXgspError::Missing(name))
        };
        let media_list = || -> Result<Vec<MediaDescription>, ParseXgspError> {
            let Some(media_el) = root.child("media") else {
                return Ok(Vec::new());
            };
            media_el
                .child_elements()
                .map(|el| {
                    MediaDescription::from_element(el).ok_or(ParseXgspError::Invalid("media"))
                })
                .collect()
        };

        match type_name.as_str() {
            "create-session" => Ok(XgspMessage::CreateSession {
                name: child_text("name")?,
                mode: SessionMode::parse(
                    root.attr("mode").ok_or(ParseXgspError::Missing("mode"))?,
                )
                .ok_or(ParseXgspError::Invalid("mode"))?,
                media: media_list()?,
            }),
            "session-created" => Ok(XgspMessage::SessionCreated {
                session: session()?,
                name: child_text("name")?,
            }),
            "terminate-session" => Ok(XgspMessage::TerminateSession { session: session()? }),
            "join" => Ok(XgspMessage::Join {
                session: session()?,
                user: child_text("user")?,
                terminal: child_text("terminal")?
                    .parse::<u64>()
                    .map(TerminalId::from_raw)
                    .map_err(|_| ParseXgspError::Invalid("terminal"))?,
                media: media_list()?,
            }),
            "join-ack" => {
                let topics = root
                    .children_named("topic")
                    .map(|el| {
                        let media = el
                            .attr("media")
                            .ok_or(ParseXgspError::Missing("media"))?
                            .to_owned();
                        Ok((media, el.text()))
                    })
                    .collect::<Result<Vec<_>, ParseXgspError>>()?;
                Ok(XgspMessage::JoinAck {
                    session: session()?,
                    topics,
                })
            }
            "leave" => Ok(XgspMessage::Leave {
                session: session()?,
                user: child_text("user")?,
            }),
            "invite" => Ok(XgspMessage::Invite {
                session: session()?,
                from: child_text("from")?,
                to: child_text("to")?,
            }),
            "floor" => Ok(XgspMessage::Floor {
                session: session()?,
                op: FloorOp::parse(root.attr("op").ok_or(ParseXgspError::Missing("op"))?)
                    .ok_or(ParseXgspError::Invalid("op"))?,
                user: child_text("user")?,
            }),
            "media-control" => Ok(XgspMessage::MediaControl {
                session: session()?,
                user: child_text("user")?,
                op: MediaOp::parse(root.attr("op").ok_or(ParseXgspError::Missing("op"))?)
                    .ok_or(ParseXgspError::Invalid("op"))?,
                kind: root
                    .attr("media")
                    .ok_or(ParseXgspError::Missing("media"))?
                    .to_owned(),
            }),
            "app-data" => Ok(XgspMessage::AppData {
                session: session()?,
                user: child_text("user")?,
                body: child_text("body")?,
            }),
            "notify" => Ok(XgspMessage::Notify {
                session: session()?,
                what: root
                    .attr("what")
                    .ok_or(ParseXgspError::Missing("what"))?
                    .to_owned(),
                user: child_text("user")?,
            }),
            "error" => Ok(XgspMessage::Error {
                code: root
                    .attr("code")
                    .ok_or(ParseXgspError::Missing("code"))?
                    .to_owned(),
                detail: child_text("detail")?,
            }),
            other => Err(ParseXgspError::UnknownType(other.to_owned())),
        }
    }
}

impl fmt::Display for XgspMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Error parsing an XGSP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseXgspError {
    /// The XML itself was malformed.
    Xml(String),
    /// The root element was not `<xgsp>`.
    NotXgsp(String),
    /// The `type` attribute named no known message.
    UnknownType(String),
    /// A required attribute/child was missing.
    Missing(&'static str),
    /// A field was present but unparseable.
    Invalid(&'static str),
}

impl fmt::Display for ParseXgspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseXgspError::Xml(e) => write!(f, "malformed xml: {e}"),
            ParseXgspError::NotXgsp(root) => write!(f, "root element <{root}> is not <xgsp>"),
            ParseXgspError::UnknownType(t) => write!(f, "unknown xgsp message type {t:?}"),
            ParseXgspError::Missing(what) => write!(f, "missing xgsp field {what:?}"),
            ParseXgspError::Invalid(what) => write!(f, "invalid xgsp field {what:?}"),
        }
    }
}

impl std::error::Error for ParseXgspError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{MediaDescription, MediaKind};

    fn round_trip(message: XgspMessage) {
        let xml = message.to_xml();
        let parsed = XgspMessage::parse(&xml)
            .unwrap_or_else(|e| panic!("failed to reparse {xml}: {e}"));
        assert_eq!(parsed, message, "wire form: {xml}");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(XgspMessage::CreateSession {
            name: "Distance Seminar <CS>".into(),
            mode: SessionMode::Scheduled,
            media: vec![
                MediaDescription::new(MediaKind::Audio, "PCMU"),
                MediaDescription::new(MediaKind::Video, "H263").with_bitrate(600_000),
            ],
        });
        round_trip(XgspMessage::SessionCreated {
            session: 42.into(),
            name: "Distance Seminar".into(),
        });
        round_trip(XgspMessage::TerminateSession { session: 42.into() });
        round_trip(XgspMessage::Join {
            session: 42.into(),
            user: "alice@anl.gov".into(),
            terminal: 7.into(),
            media: vec![MediaDescription::new(MediaKind::Audio, "GSM")],
        });
        round_trip(XgspMessage::JoinAck {
            session: 42.into(),
            topics: vec![
                ("audio".into(), "globalmmcs/session-42/audio".into()),
                ("video".into(), "globalmmcs/session-42/video".into()),
            ],
        });
        round_trip(XgspMessage::Leave {
            session: 42.into(),
            user: "alice@anl.gov".into(),
        });
        round_trip(XgspMessage::Invite {
            session: 42.into(),
            from: "alice".into(),
            to: "bob".into(),
        });
        for op in [FloorOp::Request, FloorOp::Grant, FloorOp::Release] {
            round_trip(XgspMessage::Floor {
                session: 1.into(),
                op,
                user: "carol".into(),
            });
        }
        for op in [MediaOp::Mute, MediaOp::Unmute, MediaOp::Select] {
            round_trip(XgspMessage::MediaControl {
                session: 1.into(),
                user: "dave".into(),
                op,
                kind: "video".into(),
            });
        }
        round_trip(XgspMessage::AppData {
            session: 3.into(),
            user: "erin".into(),
            body: "<whiteboard stroke='1'/>".into(),
        });
        round_trip(XgspMessage::Notify {
            session: 3.into(),
            what: "joined".into(),
            user: "frank".into(),
        });
        round_trip(XgspMessage::Error {
            code: "unknown-session".into(),
            detail: "session session-9 does not exist".into(),
        });
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            XgspMessage::parse("<not-xgsp/>"),
            Err(ParseXgspError::NotXgsp(_))
        ));
        assert!(matches!(
            XgspMessage::parse("<xgsp type=\"teleport\"/>"),
            Err(ParseXgspError::UnknownType(_))
        ));
        assert!(matches!(
            XgspMessage::parse("<xgsp/>"),
            Err(ParseXgspError::Missing("type"))
        ));
        assert!(matches!(
            XgspMessage::parse("<xgsp type=\"join\" session=\"x\"><user>a</user><terminal>1</terminal></xgsp>"),
            Err(ParseXgspError::Invalid("session"))
        ));
        assert!(matches!(
            XgspMessage::parse("not xml at all"),
            Err(ParseXgspError::Xml(_))
        ));
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(
            XgspMessage::TerminateSession { session: 1.into() }.type_name(),
            "terminate-session"
        );
        let xml = XgspMessage::TerminateSession { session: 1.into() }.to_xml();
        assert!(xml.contains("type=\"terminate-session\""));
        assert!(xml.contains("session=\"1\""));
    }

    #[test]
    fn app_data_body_survives_escaping() {
        let message = XgspMessage::AppData {
            session: 1.into(),
            user: "u".into(),
            body: "<x a=\"1\">&</x>".into(),
        };
        round_trip(message);
    }
}
