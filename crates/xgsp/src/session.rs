//! Conference (session) state.
//!
//! A [`Session`] is one meeting: its mode, life-cycle state, members
//! (each bound to a media terminal, per the paper's user/terminal
//! directory design), the media streams it carries with their broker
//! topics, and the floor.

use core::fmt;
use std::collections::BTreeMap;

use mmcs_util::id::{SessionId, StreamId, TerminalId};

use crate::floor::Floor;
use crate::media::{MediaDescription, MediaKind};

/// Life-cycle of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Created, no members yet.
    Created,
    /// At least one member present.
    Active,
    /// Terminated; rejects all operations.
    Terminated,
}

/// A member's role in a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Convener; may grant the floor and terminate the session.
    Chair,
    /// Ordinary participant.
    Participant,
}

/// One member of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    /// Directory user name.
    pub user: String,
    /// The terminal they joined with.
    pub terminal: TerminalId,
    /// Chair or participant.
    pub role: Role,
    /// Media the member's terminal offers.
    pub media: Vec<MediaDescription>,
    /// Whether each kind is currently muted (`true` = not sending).
    pub muted_audio: bool,
    /// Whether video sending is muted.
    pub muted_video: bool,
}

/// One media stream the session carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaStream {
    /// Stream id within the session.
    pub id: StreamId,
    /// Audio/video/application.
    pub kind: MediaKind,
    /// The broker topic carrying it.
    pub topic: String,
}

/// Error from session operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The session is terminated.
    Terminated,
    /// The user is already a member.
    AlreadyMember(String),
    /// The user is not a member.
    NotMember(String),
    /// The operation requires the chair role.
    NotChair(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Terminated => write!(f, "session is terminated"),
            SessionError::AlreadyMember(u) => write!(f, "user {u} is already a member"),
            SessionError::NotMember(u) => write!(f, "user {u} is not a member"),
            SessionError::NotChair(u) => write!(f, "user {u} is not the chair"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One meeting's full state. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Session {
    id: SessionId,
    name: String,
    state: SessionState,
    /// BTreeMap so iteration (and thus notification order) is stable.
    members: BTreeMap<String, Member>,
    streams: Vec<MediaStream>,
    floor: Floor,
    next_stream: u64,
}

impl Session {
    /// Creates a session carrying the given media kinds; topics follow
    /// the `globalmmcs/session-<id>/<kind>` convention.
    pub fn new(id: SessionId, name: impl Into<String>, media: &[MediaDescription]) -> Self {
        let mut session = Self {
            id,
            name: name.into(),
            state: SessionState::Created,
            members: BTreeMap::new(),
            streams: Vec::new(),
            floor: Floor::new(),
            next_stream: 1,
        };
        for m in media {
            session.add_stream(m.kind);
        }
        session
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current life-cycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The floor state machine.
    pub fn floor(&self) -> &Floor {
        &self.floor
    }

    /// Mutable access to the floor (used by the session server).
    pub fn floor_mut(&mut self) -> &mut Floor {
        &mut self.floor
    }

    /// The media streams this session carries.
    pub fn streams(&self) -> &[MediaStream] {
        &self.streams
    }

    /// The topic for a media kind, if the session carries one.
    pub fn topic_for(&self, kind: MediaKind) -> Option<&str> {
        self.streams
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.topic.as_str())
    }

    /// Adds a stream of the given kind (idempotent per kind) and returns
    /// its topic.
    pub fn add_stream(&mut self, kind: MediaKind) -> &str {
        if !self.streams.iter().any(|s| s.kind == kind) {
            let id = StreamId::from_raw(self.next_stream);
            self.next_stream += 1;
            let topic = format!("globalmmcs/session-{}/{}", self.id.value(), kind.as_str());
            self.streams.push(MediaStream { id, kind, topic });
        }
        // The stream exists by now; the fallback arm is unreachable but
        // keeps this total (no indexing/unwrap on the hot path).
        self.streams
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.topic.as_str())
            .unwrap_or("")
    }

    /// Members in stable (name) order.
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.members.values()
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Looks up one member.
    pub fn member(&self, user: &str) -> Option<&Member> {
        self.members.get(user)
    }

    /// Adds a member; the first joiner becomes chair. Returns the topics
    /// (kind, topic) for the media the member offered and the session
    /// carries.
    ///
    /// # Errors
    ///
    /// [`SessionError::Terminated`] or [`SessionError::AlreadyMember`].
    pub fn join(
        &mut self,
        user: impl Into<String>,
        terminal: TerminalId,
        media: Vec<MediaDescription>,
    ) -> Result<Vec<(String, String)>, SessionError> {
        if self.state == SessionState::Terminated {
            return Err(SessionError::Terminated);
        }
        let user = user.into();
        if self.members.contains_key(&user) {
            return Err(SessionError::AlreadyMember(user));
        }
        let role = if self.members.is_empty() {
            Role::Chair
        } else {
            Role::Participant
        };
        // The session carries any media kind some member offers.
        let mut topics = Vec::new();
        for m in &media {
            let topic = self.add_stream(m.kind).to_owned();
            topics.push((m.kind.as_str().to_owned(), topic));
        }
        self.members.insert(
            user.clone(),
            Member {
                user,
                terminal,
                role,
                media,
                muted_audio: false,
                muted_video: false,
            },
        );
        self.state = SessionState::Active;
        Ok(topics)
    }

    /// Removes a member; frees the floor if they held it. The chair role
    /// passes to the (alphabetically) first remaining member.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotMember`] if they were not present.
    pub fn leave(&mut self, user: &str) -> Result<(), SessionError> {
        if self.members.remove(user).is_none() {
            return Err(SessionError::NotMember(user.to_owned()));
        }
        self.floor.remove_member(user);
        if !self.members.values().any(|m| m.role == Role::Chair) {
            if let Some(first) = self.members.values_mut().next() {
                first.role = Role::Chair;
            }
        }
        Ok(())
    }

    /// A deterministic digest of the membership roster: user names in
    /// stable order with their terminal and role, FNV-1a hashed.
    ///
    /// The chaos harness compares a live server session against a model
    /// replayed from the delivered command trace; equal digests mean
    /// identical rosters without shipping the member list around.
    pub fn membership_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        for member in self.members.values() {
            mix(member.user.as_bytes());
            mix(&member.terminal.value().to_be_bytes());
            mix(&[match member.role {
                Role::Chair => 1,
                Role::Participant => 2,
            }]);
        }
        hash
    }

    /// The chair's user name, if the session has members.
    pub fn chair(&self) -> Option<&str> {
        self.members
            .values()
            .find(|m| m.role == Role::Chair)
            .map(|m| m.user.as_str())
    }

    /// Sets a member's mute state for a media kind.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotMember`] for unknown members.
    pub fn set_muted(&mut self, user: &str, kind: MediaKind, muted: bool) -> Result<(), SessionError> {
        let member = self
            .members
            .get_mut(user)
            .ok_or_else(|| SessionError::NotMember(user.to_owned()))?;
        match kind {
            MediaKind::Audio => member.muted_audio = muted,
            MediaKind::Video => member.muted_video = muted,
            MediaKind::Application => {}
        }
        Ok(())
    }

    /// Terminates the session; only the chair (or the server itself, by
    /// passing `None`) may do so.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotChair`] when a non-chair member tries.
    pub fn terminate(&mut self, by: Option<&str>) -> Result<(), SessionError> {
        if let Some(user) = by {
            if self.chair() != Some(user) {
                return Err(SessionError::NotChair(user.to_owned()));
            }
        }
        self.state = SessionState::Terminated;
        self.members.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaKind;

    fn audio_video() -> Vec<MediaDescription> {
        vec![
            MediaDescription::new(MediaKind::Audio, "PCMU"),
            MediaDescription::new(MediaKind::Video, "H263"),
        ]
    }

    fn session() -> Session {
        Session::new(SessionId::from_raw(7), "standup", &audio_video())
    }

    #[test]
    fn topics_follow_convention() {
        let s = session();
        assert_eq!(
            s.topic_for(MediaKind::Audio),
            Some("globalmmcs/session-7/audio")
        );
        assert_eq!(
            s.topic_for(MediaKind::Video),
            Some("globalmmcs/session-7/video")
        );
        assert_eq!(s.topic_for(MediaKind::Application), None);
        assert_eq!(s.state(), SessionState::Created);
    }

    #[test]
    fn first_joiner_is_chair() {
        let mut s = session();
        let topics = s
            .join("alice", TerminalId::from_raw(1), audio_video())
            .unwrap();
        assert_eq!(topics.len(), 2);
        assert_eq!(s.chair(), Some("alice"));
        assert_eq!(s.state(), SessionState::Active);
        s.join("bob", TerminalId::from_raw(2), vec![]).unwrap();
        assert_eq!(s.member("bob").unwrap().role, Role::Participant);
        assert_eq!(s.member_count(), 2);
    }

    #[test]
    fn double_join_errors() {
        let mut s = session();
        s.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        assert_eq!(
            s.join("alice", TerminalId::from_raw(2), vec![]),
            Err(SessionError::AlreadyMember("alice".into()))
        );
    }

    #[test]
    fn join_adds_new_stream_kinds() {
        let mut s = Session::new(SessionId::from_raw(1), "audio only", &[
            MediaDescription::new(MediaKind::Audio, "PCMU"),
        ]);
        assert_eq!(s.streams().len(), 1);
        s.join(
            "alice",
            TerminalId::from_raw(1),
            vec![MediaDescription::new(MediaKind::Video, "H261")],
        )
        .unwrap();
        assert_eq!(s.streams().len(), 2);
        assert!(s.topic_for(MediaKind::Video).is_some());
    }

    #[test]
    fn chair_passes_on_leave() {
        let mut s = session();
        s.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        s.join("bob", TerminalId::from_raw(2), vec![]).unwrap();
        s.leave("alice").unwrap();
        assert_eq!(s.chair(), Some("bob"));
        assert_eq!(
            s.leave("alice"),
            Err(SessionError::NotMember("alice".into()))
        );
    }

    #[test]
    fn leaving_holder_frees_floor() {
        let mut s = session();
        s.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        s.join("bob", TerminalId::from_raw(2), vec![]).unwrap();
        s.floor_mut().request("bob".into());
        s.floor_mut().grant_next();
        s.leave("bob").unwrap();
        assert_eq!(s.floor().holder(), None);
    }

    #[test]
    fn mute_state_tracks_per_kind() {
        let mut s = session();
        s.join("alice", TerminalId::from_raw(1), audio_video())
            .unwrap();
        s.set_muted("alice", MediaKind::Audio, true).unwrap();
        assert!(s.member("alice").unwrap().muted_audio);
        assert!(!s.member("alice").unwrap().muted_video);
        assert_eq!(
            s.set_muted("nobody", MediaKind::Audio, true),
            Err(SessionError::NotMember("nobody".into()))
        );
    }

    #[test]
    fn terminate_rules() {
        let mut s = session();
        s.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        s.join("bob", TerminalId::from_raw(2), vec![]).unwrap();
        assert_eq!(
            s.terminate(Some("bob")),
            Err(SessionError::NotChair("bob".into()))
        );
        s.terminate(Some("alice")).unwrap();
        assert_eq!(s.state(), SessionState::Terminated);
        assert_eq!(
            s.join("carol", TerminalId::from_raw(3), vec![]),
            Err(SessionError::Terminated)
        );
    }

    #[test]
    fn membership_digest_tracks_roster() {
        let mut a = session();
        let mut b = session();
        assert_eq!(a.membership_digest(), b.membership_digest());
        a.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        assert_ne!(a.membership_digest(), b.membership_digest());
        b.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        assert_eq!(a.membership_digest(), b.membership_digest());
        // Same users, different join order: same roster, same digest
        // (but bob is a participant in one and chair in neither — join
        // order only matters through roles).
        a.join("bob", TerminalId::from_raw(2), vec![]).unwrap();
        b.join("bob", TerminalId::from_raw(2), vec![]).unwrap();
        assert_eq!(a.membership_digest(), b.membership_digest());
        a.leave("bob").unwrap();
        assert_ne!(a.membership_digest(), b.membership_digest());
        // Terminal identity is part of the digest.
        let mut c = session();
        c.join("alice", TerminalId::from_raw(9), vec![]).unwrap();
        assert_ne!(a.membership_digest(), c.membership_digest());
    }

    #[test]
    fn server_can_terminate_without_chair() {
        let mut s = session();
        s.join("alice", TerminalId::from_raw(1), vec![]).unwrap();
        s.terminate(None).unwrap();
        assert_eq!(s.state(), SessionState::Terminated);
        assert_eq!(s.member_count(), 0);
    }
}
