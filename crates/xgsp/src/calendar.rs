//! Scheduled-mode reservations.
//!
//! Scheduled collaborations "log into some web site … to make
//! reservation of some virtual meeting room, send invitations to other
//! attendees in advance" (§2.1). [`Calendar`] is that reservation book:
//! rooms, time slots with conflict detection, invitee lists, and a
//! `due` query the web server polls to auto-open sessions.

use core::fmt;

use mmcs_util::id::{IdAllocator, ReservationId};
use mmcs_util::time::{SimDuration, SimTime};

/// One reservation of a virtual meeting room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// The reservation id.
    pub id: ReservationId,
    /// The virtual room name (conflict-detection key).
    pub room: String,
    /// Who booked it (becomes the session chair).
    pub organizer: String,
    /// Users to invite when the meeting opens.
    pub invitees: Vec<String>,
    /// Start time.
    pub start: SimTime,
    /// Duration.
    pub duration: SimDuration,
    /// Human-readable title.
    pub title: String,
}

impl Reservation {
    /// End time (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Whether this reservation overlaps a `[start, start+duration)` slot.
    pub fn overlaps(&self, start: SimTime, duration: SimDuration) -> bool {
        start < self.end() && self.start < start + duration
    }
}

/// Error booking a reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BookingError {
    /// The room is already booked for an overlapping slot.
    Conflict {
        /// The conflicting reservation.
        existing: ReservationId,
    },
    /// Zero-length reservations are not allowed.
    EmptySlot,
}

impl fmt::Display for BookingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BookingError::Conflict { existing } => {
                write!(f, "room already reserved ({existing})")
            }
            BookingError::EmptySlot => write!(f, "reservation duration must be positive"),
        }
    }
}

impl std::error::Error for BookingError {}

/// The meeting calendar. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Calendar {
    reservations: Vec<Reservation>,
    ids: IdAllocator<ReservationId>,
}

impl Calendar {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books a room.
    ///
    /// # Errors
    ///
    /// [`BookingError::Conflict`] when the room is taken for an
    /// overlapping slot, [`BookingError::EmptySlot`] for zero duration.
    pub fn book(
        &mut self,
        room: impl Into<String>,
        organizer: impl Into<String>,
        invitees: Vec<String>,
        start: SimTime,
        duration: SimDuration,
        title: impl Into<String>,
    ) -> Result<ReservationId, BookingError> {
        if duration == SimDuration::ZERO {
            return Err(BookingError::EmptySlot);
        }
        let room = room.into();
        if let Some(existing) = self
            .reservations
            .iter()
            .find(|r| r.room == room && r.overlaps(start, duration))
        {
            return Err(BookingError::Conflict {
                existing: existing.id,
            });
        }
        let id = self.ids.next();
        self.reservations.push(Reservation {
            id,
            room,
            organizer: organizer.into(),
            invitees,
            start,
            duration,
            title: title.into(),
        });
        Ok(id)
    }

    /// Cancels a reservation; returns whether it existed.
    pub fn cancel(&mut self, id: ReservationId) -> bool {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.id != id);
        self.reservations.len() != before
    }

    /// Looks up a reservation.
    pub fn reservation(&self, id: ReservationId) -> Option<&Reservation> {
        self.reservations.iter().find(|r| r.id == id)
    }

    /// Reservations that should be running at `now`, soonest-start first.
    pub fn due(&self, now: SimTime) -> Vec<&Reservation> {
        let mut due: Vec<&Reservation> = self
            .reservations
            .iter()
            .filter(|r| r.start <= now && now < r.end())
            .collect();
        due.sort_by_key(|r| r.start);
        due
    }

    /// Future reservations at `now`, soonest first.
    pub fn upcoming(&self, now: SimTime) -> Vec<&Reservation> {
        let mut upcoming: Vec<&Reservation> = self
            .reservations
            .iter()
            .filter(|r| r.start > now)
            .collect();
        upcoming.sort_by_key(|r| r.start);
        upcoming
    }

    /// Drops reservations that ended before `now`; returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.end() > now);
        before - self.reservations.len()
    }

    /// Total live reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(minutes: u64) -> SimTime {
        SimTime::from_secs(minutes * 60)
    }

    fn hour() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    #[test]
    fn booking_and_conflicts() {
        let mut cal = Calendar::new();
        let first = cal
            .book("room-a", "alice", vec!["bob".into()], t(0), hour(), "standup")
            .unwrap();
        // Overlap in the same room conflicts.
        let err = cal
            .book("room-a", "carol", vec![], t(30), hour(), "clash")
            .unwrap_err();
        assert_eq!(err, BookingError::Conflict { existing: first });
        // Same slot in another room is fine.
        cal.book("room-b", "carol", vec![], t(30), hour(), "ok")
            .unwrap();
        // Back-to-back in the same room is fine (end is exclusive).
        cal.book("room-a", "dave", vec![], t(60), hour(), "next")
            .unwrap();
        assert_eq!(cal.len(), 3);
    }

    #[test]
    fn zero_duration_rejected() {
        let mut cal = Calendar::new();
        assert_eq!(
            cal.book("r", "a", vec![], t(0), SimDuration::ZERO, "x"),
            Err(BookingError::EmptySlot)
        );
    }

    #[test]
    fn due_and_upcoming() {
        let mut cal = Calendar::new();
        cal.book("r1", "a", vec![], t(0), hour(), "now").unwrap();
        cal.book("r2", "b", vec![], t(120), hour(), "later").unwrap();
        let due = cal.due(t(30));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].title, "now");
        let upcoming = cal.upcoming(t(30));
        assert_eq!(upcoming.len(), 1);
        assert_eq!(upcoming[0].title, "later");
        // At the end boundary the meeting is over.
        assert!(cal.due(t(60)).is_empty());
    }

    #[test]
    fn cancel_and_expire() {
        let mut cal = Calendar::new();
        let id = cal.book("r", "a", vec![], t(0), hour(), "x").unwrap();
        assert!(cal.cancel(id));
        assert!(!cal.cancel(id));
        cal.book("r", "a", vec![], t(0), hour(), "old").unwrap();
        cal.book("r", "a", vec![], t(120), hour(), "new").unwrap();
        assert_eq!(cal.expire(t(61)), 1);
        assert_eq!(cal.len(), 1);
        assert!(cal.reservation(id).is_none());
    }

    #[test]
    fn overlap_math() {
        let r = Reservation {
            id: ReservationId::from_raw(1),
            room: "r".into(),
            organizer: "a".into(),
            invitees: vec![],
            start: t(10),
            duration: hour(),
            title: "x".into(),
        };
        assert!(r.overlaps(t(10), hour()));
        assert!(r.overlaps(t(69), hour()));
        assert!(!r.overlaps(t(70), hour())); // starts exactly at end
        assert!(!r.overlaps(t(0), SimDuration::from_secs(600))); // ends at start
    }
}
