//! Telemetry instruments for the XGSP session server.
//!
//! [`XgspMetrics`] is an `Arc`-cloneable bundle registered against a
//! [`mmcs_telemetry::Registry`]; [`crate::server::SessionServer`] takes
//! one via `set_metrics` and increments it on the success paths of
//! session lifecycle and membership operations. Counters are
//! monotonic totals; `active_sessions` is a gauge tracking the live
//! session map size (ad-hoc evaporation counts as a termination).

use std::sync::Arc;

use mmcs_telemetry::{Counter, Gauge, Registry};

/// Session-server instrument bundle. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct XgspMetrics {
    /// Sessions successfully created.
    pub sessions_created: Arc<Counter>,
    /// Sessions torn down: explicit terminations plus ad-hoc rooms
    /// that evaporated when their last member left.
    pub sessions_terminated: Arc<Counter>,
    /// Successful joins (JoinAck emitted).
    pub joins: Arc<Counter>,
    /// Successful leaves.
    pub leaves: Arc<Counter>,
    /// Requests answered with an XGSP `Error` reply.
    pub errors: Arc<Counter>,
    /// Current number of live sessions.
    pub active_sessions: Arc<Gauge>,
}

impl XgspMetrics {
    /// Registers the bundle under `{prefix}_*` metric names.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        Self {
            sessions_created: registry.counter(
                &format!("{prefix}_sessions_created_total"),
                "Sessions successfully created",
            ),
            sessions_terminated: registry.counter(
                &format!("{prefix}_sessions_terminated_total"),
                "Sessions terminated or evaporated",
            ),
            joins: registry.counter(
                &format!("{prefix}_joins_total"),
                "Successful session joins",
            ),
            leaves: registry.counter(
                &format!("{prefix}_leaves_total"),
                "Successful session leaves",
            ),
            errors: registry.counter(
                &format!("{prefix}_errors_total"),
                "Requests answered with an XGSP error",
            ),
            active_sessions: registry.gauge(
                &format!("{prefix}_active_sessions"),
                "Current number of live sessions",
            ),
        }
    }

    /// A bundle not attached to any registry, for tests and benches.
    pub fn detached() -> Self {
        Self {
            sessions_created: Arc::new(Counter::new()),
            sessions_terminated: Arc::new(Counter::new()),
            joins: Arc::new(Counter::new()),
            leaves: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
            active_sessions: Arc::new(Gauge::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_follow_prefix() {
        let registry = Registry::new();
        let metrics = XgspMetrics::register(&registry, "xgsp");
        metrics.sessions_created.inc();
        metrics.active_sessions.set(3);
        let text = registry.render_prometheus();
        assert!(text.contains("xgsp_sessions_created_total 1"));
        assert!(text.contains("xgsp_active_sessions 3"));
    }
}
