//! User accounts and media terminals.

use core::fmt;
use std::collections::HashMap;

use mmcs_util::id::{IdAllocator, TerminalId, UserId};

/// A registered media terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminalRecord {
    /// The terminal id.
    pub id: TerminalId,
    /// Owning user.
    pub owner: UserId,
    /// Terminal kind: `h323`, `sip`, `admire`, `accessgrid`,
    /// `realplayer`, `im`, ….
    pub kind: String,
    /// Network address the terminal signals from.
    pub address: String,
    /// Media capabilities, e.g. `audio/PCMU`, `video/H263`.
    pub capabilities: Vec<String>,
}

/// A user account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRecord {
    /// The user id.
    pub id: UserId,
    /// Unique login name (`alice@anl.gov`).
    pub name: String,
    /// Display name.
    pub display_name: String,
    /// Salted password hash.
    password_hash: u64,
    salt: u64,
}

/// Errors from directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// The login name is taken.
    DuplicateName(String),
    /// No such user.
    UnknownUser(String),
    /// Wrong password.
    BadCredentials,
    /// No such terminal.
    UnknownTerminal(TerminalId),
    /// The terminal belongs to a different user.
    NotOwner(TerminalId),
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::DuplicateName(n) => write!(f, "user name {n:?} is taken"),
            DirectoryError::UnknownUser(n) => write!(f, "unknown user {n:?}"),
            DirectoryError::BadCredentials => write!(f, "bad credentials"),
            DirectoryError::UnknownTerminal(t) => write!(f, "unknown terminal {t}"),
            DirectoryError::NotOwner(t) => write!(f, "terminal {t} belongs to someone else"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// FNV-1a; deliberately simple — a stand-in for the era's crypt().
fn hash_password(password: &str, salt: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for byte in password.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The user/terminal directory. See the [module docs](self).
#[derive(Debug, Default)]
pub struct UserDirectory {
    users: HashMap<UserId, UserRecord>,
    names: HashMap<String, UserId>,
    terminals: HashMap<TerminalId, TerminalRecord>,
    /// The terminal each user is currently reachable on.
    active: HashMap<UserId, TerminalId>,
    user_ids: IdAllocator<UserId>,
    terminal_ids: IdAllocator<TerminalId>,
    salt_counter: u64,
}

impl UserDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an account.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::DuplicateName`] when the login name is taken.
    pub fn create_user(
        &mut self,
        name: impl Into<String>,
        display_name: impl Into<String>,
        password: &str,
    ) -> Result<UserId, DirectoryError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(DirectoryError::DuplicateName(name));
        }
        let id = self.user_ids.next();
        self.salt_counter = self.salt_counter.wrapping_mul(6364136223846793005).wrapping_add(1);
        let salt = self.salt_counter ^ id.value().rotate_left(17);
        self.users.insert(
            id,
            UserRecord {
                id,
                name: name.clone(),
                display_name: display_name.into(),
                password_hash: hash_password(password, salt),
                salt,
            },
        );
        self.names.insert(name, id);
        Ok(id)
    }

    /// Authenticates a login; returns the user id.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::UnknownUser`] / [`DirectoryError::BadCredentials`].
    pub fn authenticate(&self, name: &str, password: &str) -> Result<UserId, DirectoryError> {
        let id = self
            .names
            .get(name)
            .ok_or_else(|| DirectoryError::UnknownUser(name.to_owned()))?;
        let record = &self.users[id];
        if hash_password(password, record.salt) == record.password_hash {
            Ok(*id)
        } else {
            Err(DirectoryError::BadCredentials)
        }
    }

    /// Looks a user up by name.
    pub fn user_by_name(&self, name: &str) -> Option<&UserRecord> {
        self.names.get(name).map(|id| &self.users[id])
    }

    /// Looks a user up by id.
    pub fn user(&self, id: UserId) -> Option<&UserRecord> {
        self.users.get(&id)
    }

    /// Registers a media terminal for a user.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::UnknownUser`] when the owner does not exist.
    pub fn register_terminal(
        &mut self,
        owner: UserId,
        kind: impl Into<String>,
        address: impl Into<String>,
        capabilities: Vec<String>,
    ) -> Result<TerminalId, DirectoryError> {
        if !self.users.contains_key(&owner) {
            return Err(DirectoryError::UnknownUser(format!("{owner}")));
        }
        let id = self.terminal_ids.next();
        self.terminals.insert(
            id,
            TerminalRecord {
                id,
                owner,
                kind: kind.into(),
                address: address.into(),
                capabilities,
            },
        );
        Ok(id)
    }

    /// Looks a terminal up.
    pub fn terminal(&self, id: TerminalId) -> Option<&TerminalRecord> {
        self.terminals.get(&id)
    }

    /// All terminals a user owns.
    pub fn terminals_of(&self, owner: UserId) -> Vec<&TerminalRecord> {
        let mut list: Vec<&TerminalRecord> = self
            .terminals
            .values()
            .filter(|t| t.owner == owner)
            .collect();
        list.sort_by_key(|t| t.id);
        list
    }

    /// Marks the terminal a user is currently reachable on.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::UnknownTerminal`] / [`DirectoryError::NotOwner`].
    pub fn set_active_terminal(
        &mut self,
        user: UserId,
        terminal: TerminalId,
    ) -> Result<(), DirectoryError> {
        let record = self
            .terminals
            .get(&terminal)
            .ok_or(DirectoryError::UnknownTerminal(terminal))?;
        if record.owner != user {
            return Err(DirectoryError::NotOwner(terminal));
        }
        self.active.insert(user, terminal);
        Ok(())
    }

    /// The user's active terminal, if any.
    pub fn active_terminal(&self, user: UserId) -> Option<&TerminalRecord> {
        self.active.get(&user).and_then(|id| self.terminals.get(id))
    }

    /// Clears the active terminal (user went offline).
    pub fn clear_active_terminal(&mut self, user: UserId) {
        self.active.remove(&user);
    }

    /// Number of accounts.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory_with_alice() -> (UserDirectory, UserId) {
        let mut dir = UserDirectory::new();
        let alice = dir
            .create_user("alice@anl.gov", "Alice", "hunter2")
            .unwrap();
        (dir, alice)
    }

    #[test]
    fn create_and_authenticate() {
        let (dir, alice) = directory_with_alice();
        assert_eq!(dir.authenticate("alice@anl.gov", "hunter2"), Ok(alice));
        assert_eq!(
            dir.authenticate("alice@anl.gov", "wrong"),
            Err(DirectoryError::BadCredentials)
        );
        assert_eq!(
            dir.authenticate("nobody", "x"),
            Err(DirectoryError::UnknownUser("nobody".into()))
        );
        assert_eq!(dir.user_count(), 1);
        assert_eq!(dir.user(alice).unwrap().display_name, "Alice");
        assert_eq!(dir.user_by_name("alice@anl.gov").unwrap().id, alice);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut dir, _) = directory_with_alice();
        assert!(matches!(
            dir.create_user("alice@anl.gov", "Other", "pw"),
            Err(DirectoryError::DuplicateName(_))
        ));
    }

    #[test]
    fn same_password_different_users_different_hashes() {
        let mut dir = UserDirectory::new();
        let a = dir.create_user("a", "A", "same").unwrap();
        let b = dir.create_user("b", "B", "same").unwrap();
        assert_ne!(
            dir.user(a).unwrap().password_hash,
            dir.user(b).unwrap().password_hash,
            "salting must differentiate equal passwords"
        );
    }

    #[test]
    fn terminals_register_and_list() {
        let (mut dir, alice) = directory_with_alice();
        let t1 = dir
            .register_terminal(
                alice,
                "h323",
                "10.0.0.4:1720",
                vec!["audio/G.711".into(), "video/H.263".into()],
            )
            .unwrap();
        let t2 = dir
            .register_terminal(alice, "sip", "10.0.0.4:5060", vec!["audio/PCMU".into()])
            .unwrap();
        assert_ne!(t1, t2);
        let list = dir.terminals_of(alice);
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].kind, "h323");
        assert!(dir.terminal(t1).unwrap().capabilities.contains(&"video/H.263".to_owned()));
    }

    #[test]
    fn terminal_for_unknown_user_rejected() {
        let mut dir = UserDirectory::new();
        assert!(matches!(
            dir.register_terminal(UserId::from_raw(9), "sip", "x", vec![]),
            Err(DirectoryError::UnknownUser(_))
        ));
    }

    #[test]
    fn active_terminal_lifecycle() {
        let (mut dir, alice) = directory_with_alice();
        let terminal = dir
            .register_terminal(alice, "sip", "10.0.0.4:5060", vec![])
            .unwrap();
        assert!(dir.active_terminal(alice).is_none());
        dir.set_active_terminal(alice, terminal).unwrap();
        assert_eq!(dir.active_terminal(alice).unwrap().id, terminal);
        dir.clear_active_terminal(alice);
        assert!(dir.active_terminal(alice).is_none());
    }

    #[test]
    fn active_terminal_must_be_owned() {
        let (mut dir, alice) = directory_with_alice();
        let bob = dir.create_user("bob", "Bob", "pw").unwrap();
        let bobs = dir.register_terminal(bob, "sip", "x", vec![]).unwrap();
        assert_eq!(
            dir.set_active_terminal(alice, bobs),
            Err(DirectoryError::NotOwner(bobs))
        );
        assert_eq!(
            dir.set_active_terminal(alice, TerminalId::from_raw(99)),
            Err(DirectoryError::UnknownTerminal(TerminalId::from_raw(99)))
        );
    }
}
