//! Communities and their collaboration servers.
//!
//! "A community should be regarded as autonomous area that has its own
//! collaboration control servers and media servers" (§2.2). Each
//! community record lists its collaboration servers by WSDL-CI service
//! name and SOAP endpoint, which is how the XGSP web server finds the
//! Admire service, a third-party MCU, and so on.

use core::fmt;
use std::collections::HashMap;

use mmcs_util::id::{CommunityId, IdAllocator, ServerId};

/// A collaboration server published by a community.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerRecord {
    /// The server id.
    pub id: ServerId,
    /// WSDL-CI service name (`AdmireConferenceService`).
    pub service: String,
    /// SOAP endpoint URL.
    pub endpoint: String,
    /// Free-form kind tag: `mcu`, `conference`, `streaming`, `gateway`.
    pub kind: String,
}

/// A registered community.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityRecord {
    /// The community id.
    pub id: CommunityId,
    /// Unique community name (`admire.cn`, `accessgrid.org`).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Servers it publishes.
    pub servers: Vec<ServerRecord>,
}

/// Errors from community registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunityError {
    /// The community name is taken.
    DuplicateName(String),
    /// No such community.
    Unknown(String),
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::DuplicateName(n) => write!(f, "community {n:?} already registered"),
            CommunityError::Unknown(n) => write!(f, "unknown community {n:?}"),
        }
    }
}

impl std::error::Error for CommunityError {}

/// The community directory.
#[derive(Debug, Default)]
pub struct CommunityDirectory {
    communities: HashMap<CommunityId, CommunityRecord>,
    names: HashMap<String, CommunityId>,
    community_ids: IdAllocator<CommunityId>,
    server_ids: IdAllocator<ServerId>,
}

impl CommunityDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a community.
    ///
    /// # Errors
    ///
    /// [`CommunityError::DuplicateName`] when the name is taken.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
    ) -> Result<CommunityId, CommunityError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(CommunityError::DuplicateName(name));
        }
        let id = self.community_ids.next();
        self.communities.insert(
            id,
            CommunityRecord {
                id,
                name: name.clone(),
                description: description.into(),
                servers: Vec::new(),
            },
        );
        self.names.insert(name, id);
        Ok(id)
    }

    /// Publishes a collaboration server under a community.
    ///
    /// # Errors
    ///
    /// [`CommunityError::Unknown`] for unknown communities.
    pub fn publish_server(
        &mut self,
        community: &str,
        service: impl Into<String>,
        endpoint: impl Into<String>,
        kind: impl Into<String>,
    ) -> Result<ServerId, CommunityError> {
        let id = *self
            .names
            .get(community)
            .ok_or_else(|| CommunityError::Unknown(community.to_owned()))?;
        // Resolve through the id map with the same error as the name
        // lookup: the two maps are kept consistent, but a drift then
        // reports "unknown community" instead of tearing the server down.
        let record = self
            .communities
            .get_mut(&id)
            .ok_or_else(|| CommunityError::Unknown(community.to_owned()))?;
        let server_id = self.server_ids.next();
        record.servers.push(ServerRecord {
                id: server_id,
                service: service.into(),
                endpoint: endpoint.into(),
                kind: kind.into(),
            });
        Ok(server_id)
    }

    /// Looks a community up by name.
    pub fn community(&self, name: &str) -> Option<&CommunityRecord> {
        self.names.get(name).map(|id| &self.communities[id])
    }

    /// All communities, name-sorted.
    pub fn communities(&self) -> Vec<&CommunityRecord> {
        let mut list: Vec<&CommunityRecord> = self.communities.values().collect();
        list.sort_by(|a, b| a.name.cmp(&b.name));
        list
    }

    /// Finds the first server of the given kind in a community.
    pub fn find_server(&self, community: &str, kind: &str) -> Option<&ServerRecord> {
        self.community(community)?
            .servers
            .iter()
            .find(|s| s.kind == kind)
    }

    /// Every server of a kind across all communities (community-name
    /// order).
    pub fn servers_of_kind(&self, kind: &str) -> Vec<(&str, &ServerRecord)> {
        let mut out = Vec::new();
        for community in self.communities() {
            for server in &community.servers {
                if server.kind == kind {
                    out.push((community.name.as_str(), server));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> CommunityDirectory {
        let mut dir = CommunityDirectory::new();
        dir.register("admire.cn", "Admire deployment, NSFCNET China")
            .unwrap();
        dir.register("h323.mmcs", "Global-MMCS H.323 zone").unwrap();
        dir.publish_server(
            "admire.cn",
            "AdmireConferenceService",
            "http://admire.cn/soap",
            "conference",
        )
        .unwrap();
        dir.publish_server("h323.mmcs", "McuService", "http://mcu/soap", "mcu")
            .unwrap();
        dir.publish_server(
            "admire.cn",
            "AdmireStreamService",
            "http://admire.cn/stream",
            "streaming",
        )
        .unwrap();
        dir
    }

    #[test]
    fn register_and_lookup() {
        let dir = populated();
        let admire = dir.community("admire.cn").unwrap();
        assert_eq!(admire.servers.len(), 2);
        assert!(dir.community("nowhere").is_none());
        assert_eq!(dir.communities().len(), 2);
        // Sorted by name.
        assert_eq!(dir.communities()[0].name, "admire.cn");
    }

    #[test]
    fn duplicate_community_rejected() {
        let mut dir = populated();
        assert!(matches!(
            dir.register("admire.cn", "again"),
            Err(CommunityError::DuplicateName(_))
        ));
    }

    #[test]
    fn publish_requires_known_community() {
        let mut dir = CommunityDirectory::new();
        assert!(matches!(
            dir.publish_server("ghost", "S", "http://x", "mcu"),
            Err(CommunityError::Unknown(_))
        ));
    }

    #[test]
    fn find_server_by_kind() {
        let dir = populated();
        let conference = dir.find_server("admire.cn", "conference").unwrap();
        assert_eq!(conference.service, "AdmireConferenceService");
        assert!(dir.find_server("admire.cn", "mcu").is_none());
        let streaming = dir.servers_of_kind("streaming");
        assert_eq!(streaming.len(), 1);
        assert_eq!(streaming[0].0, "admire.cn");
    }
}
