//! The Global-MMCS naming & directory services.
//!
//! §2.2 describes two directories: "the directory of user account and
//! media terminal" (authentication, the user→terminal binding, media
//! capability, the *active terminal* a participant is currently using)
//! and "the directory of different communities and collaboration
//! servers" (each community an autonomous area with its own servers).
//!
//! * [`users`] — accounts with salted-hash passwords, media terminals,
//!   capabilities and the active-terminal directory.
//! * [`communities`] — community registry and the collaboration servers
//!   each publishes (by WSDL-CI service name + endpoint).

pub mod communities;
pub mod users;

pub use communities::{CommunityDirectory, CommunityRecord};
pub use users::{TerminalRecord, UserDirectory, UserRecord};
