//! The SIP registrar (location service).
//!
//! Binds addresses-of-record (`sip:alice@mmcs.example`) to contact URIs
//! with expirations, driven by REGISTER requests. The proxy consults it
//! to route; the directory service mirrors it for the user/terminal
//! binding the paper describes.

use std::collections::HashMap;

use mmcs_util::time::SimTime;

use crate::message::{extract_uri, SipMessage, SipMethod};

/// One contact binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The contact URI to route to.
    pub contact: String,
    /// When the binding lapses.
    pub expires_at: SimTime,
}

/// The registrar. All queries take `now` so expiry is driven by the
/// caller's clock (virtual time in simulations).
#[derive(Debug, Default)]
pub struct Registrar {
    bindings: HashMap<String, Vec<Binding>>,
    default_expires_secs: u64,
}

impl Registrar {
    /// Creates a registrar with the RFC default 3600 s expiry.
    pub fn new() -> Self {
        Self {
            bindings: HashMap::new(),
            default_expires_secs: 3600,
        }
    }

    /// Handles a REGISTER request, returning the response to send.
    ///
    /// `Expires: 0` (or a `Contact: *` with it) removes bindings.
    pub fn handle_register(&mut self, request: &SipMessage, now: SimTime) -> SipMessage {
        if request.method() != Some(SipMethod::Register) {
            return SipMessage::response_to(request, 405, "Method Not Allowed");
        }
        let Some(to) = request.header("To") else {
            return SipMessage::response_to(request, 400, "Missing To");
        };
        let aor = extract_uri(to).to_owned();
        let expires_secs: u64 = request
            .header("Expires")
            .and_then(|e| e.parse().ok())
            .unwrap_or(self.default_expires_secs);

        let contacts: Vec<&str> = request.header_all("Contact").collect();
        if contacts.is_empty() {
            // Query: report current bindings.
            let mut response = SipMessage::response_to(request, 200, "OK");
            for binding in self.lookup(&aor, now) {
                response
                    .headers
                    .push(("Contact".to_owned(), format!("<{}>", binding.contact)));
            }
            return response;
        }

        if expires_secs == 0 {
            if contacts.iter().any(|c| c.trim() == "*") {
                self.bindings.remove(&aor);
            } else {
                if let Some(list) = self.bindings.get_mut(&aor) {
                    for contact in &contacts {
                        let uri = extract_uri(contact).to_owned();
                        list.retain(|b| b.contact != uri);
                    }
                }
            }
            return SipMessage::response_to(request, 200, "OK");
        }

        let expires_at = now + mmcs_util::time::SimDuration::from_secs(expires_secs);
        let list = self.bindings.entry(aor).or_default();
        for contact in contacts {
            let uri = extract_uri(contact).to_owned();
            if let Some(existing) = list.iter_mut().find(|b| b.contact == uri) {
                existing.expires_at = expires_at;
            } else {
                list.push(Binding {
                    contact: uri,
                    expires_at,
                });
            }
        }
        SipMessage::response_to(request, 200, "OK")
            .with_header("Expires", expires_secs.to_string())
    }

    /// Current (unexpired) bindings for an AoR.
    pub fn lookup(&self, aor: &str, now: SimTime) -> Vec<Binding> {
        self.bindings
            .get(aor)
            .map(|list| {
                list.iter()
                    .filter(|b| b.expires_at > now)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Removes expired bindings; returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        self.bindings.retain(|_, list| {
            let before = list.len();
            list.retain(|b| b.expires_at > now);
            dropped += before - list.len();
            !list.is_empty()
        });
        dropped
    }

    /// Number of AoRs with live bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the registrar has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_util::time::SimDuration;

    fn register(aor: &str, contact: &str, expires: Option<u64>) -> SipMessage {
        let mut request = SipMessage::request(SipMethod::Register, "sip:mmcs.example")
            .with_header("Via", "SIP/2.0/UDP c;branch=z9hG4bKr")
            .with_header("From", format!("<{aor}>;tag=1"))
            .with_header("To", format!("<{aor}>"))
            .with_header("Call-ID", "reg-1")
            .with_header("CSeq", "1 REGISTER")
            .with_header("Contact", format!("<{contact}>"));
        if let Some(e) = expires {
            request.set_header("Expires", e.to_string());
        }
        request
    }

    #[test]
    fn register_binds_and_lookup_finds() {
        let mut registrar = Registrar::new();
        let now = SimTime::ZERO;
        let response =
            registrar.handle_register(&register("sip:alice@x", "sip:alice@10.0.0.5", None), now);
        assert_eq!(response.status(), Some(200));
        let bindings = registrar.lookup("sip:alice@x", now);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].contact, "sip:alice@10.0.0.5");
    }

    #[test]
    fn reregister_refreshes_instead_of_duplicating() {
        let mut registrar = Registrar::new();
        let t0 = SimTime::ZERO;
        registrar.handle_register(&register("sip:a@x", "sip:a@h", Some(100)), t0);
        let t1 = t0 + SimDuration::from_secs(50);
        registrar.handle_register(&register("sip:a@x", "sip:a@h", Some(100)), t1);
        let bindings = registrar.lookup("sip:a@x", t1);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].expires_at, t1 + SimDuration::from_secs(100));
    }

    #[test]
    fn bindings_expire() {
        let mut registrar = Registrar::new();
        let t0 = SimTime::ZERO;
        registrar.handle_register(&register("sip:a@x", "sip:a@h", Some(10)), t0);
        let later = t0 + SimDuration::from_secs(11);
        assert!(registrar.lookup("sip:a@x", later).is_empty());
        assert_eq!(registrar.expire(later), 1);
        assert!(registrar.is_empty());
    }

    #[test]
    fn expires_zero_unbinds() {
        let mut registrar = Registrar::new();
        let now = SimTime::ZERO;
        registrar.handle_register(&register("sip:a@x", "sip:a@h1", Some(100)), now);
        registrar.handle_register(&register("sip:a@x", "sip:a@h2", Some(100)), now);
        registrar.handle_register(&register("sip:a@x", "sip:a@h1", Some(0)), now);
        let bindings = registrar.lookup("sip:a@x", now);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].contact, "sip:a@h2");
    }

    #[test]
    fn star_contact_with_expires_zero_unbinds_all() {
        let mut registrar = Registrar::new();
        let now = SimTime::ZERO;
        registrar.handle_register(&register("sip:a@x", "sip:a@h1", Some(100)), now);
        let mut wipe = register("sip:a@x", "ignored", Some(0));
        wipe.set_header("Contact", "*");
        registrar.handle_register(&wipe, now);
        assert!(registrar.lookup("sip:a@x", now).is_empty());
    }

    #[test]
    fn query_register_lists_bindings() {
        let mut registrar = Registrar::new();
        let now = SimTime::ZERO;
        registrar.handle_register(&register("sip:a@x", "sip:a@h1", Some(100)), now);
        let mut query = register("sip:a@x", "ignored", None);
        query.headers.retain(|(n, _)| !n.eq_ignore_ascii_case("Contact"));
        let response = registrar.handle_register(&query, now);
        assert_eq!(response.status(), Some(200));
        assert_eq!(response.header("Contact"), Some("<sip:a@h1>"));
    }

    #[test]
    fn non_register_is_rejected() {
        let mut registrar = Registrar::new();
        let invite = SipMessage::request(SipMethod::Invite, "sip:x")
            .with_header("Via", "SIP/2.0/UDP c;branch=z9hG4bKi")
            .with_header("To", "<sip:x>");
        let response = registrar.handle_register(&invite, SimTime::ZERO);
        assert_eq!(response.status(), Some(405));
    }
}
