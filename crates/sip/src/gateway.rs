//! The SIP → XGSP gateway.
//!
//! "The SIP Servers including a SIP Proxy, SIP Registrar and SIP Gateway
//! create a … SIP domain for SIP terminals and perform SIP translation"
//! (§3.2). This gateway is that translator: INVITE to a conference URI
//! becomes an XGSP `Join` (creating an ad-hoc session on demand), BYE
//! becomes `Leave`, MESSAGE becomes `AppData` (chat), and XGSP
//! notifications travel back to SIP members as NOTIFY requests.
//!
//! Conference URI convention: `sip:conf-<sessionid>@<domain>` joins an
//! existing session; `sip:new-conf@<domain>` creates an ad-hoc session
//! and joins it.

use std::collections::HashMap;

use mmcs_telemetry::CallSetupMetrics;
use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::media::{MediaDescription, MediaKind};
use mmcs_xgsp::message::{SessionMode, XgspMessage};
use mmcs_xgsp::server::{ServerOutput, SessionServer};

use crate::message::{extract_uri, SipMessage, SipMethod, StartLine};
use crate::sdp::{Sdp, SdpMedia};

/// One SIP dialog the gateway tracks (Call-ID → session membership).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Dialog {
    session: SessionId,
    user: String,
}

/// The SIP gateway. See the [module docs](self).
#[derive(Debug)]
pub struct SipGateway {
    domain: String,
    /// Address the SDP answers point media at (the RTP proxy in front of
    /// the broker).
    rtp_proxy_address: String,
    dialogs: HashMap<String, Dialog>,
    next_terminal: u64,
    /// Optional call-signaling telemetry (setup outcomes + latency).
    metrics: Option<CallSetupMetrics>,
}

impl SipGateway {
    /// Creates a gateway for `domain`, answering SDP with
    /// `rtp_proxy_address`.
    pub fn new(domain: impl Into<String>, rtp_proxy_address: impl Into<String>) -> Self {
        Self {
            domain: domain.into(),
            rtp_proxy_address: rtp_proxy_address.into(),
            dialogs: HashMap::new(),
            next_terminal: 1,
            metrics: None,
        }
    }

    /// Installs call-signaling telemetry: INVITE handling is timed with
    /// the bundle's clock (wall time under a real driver, manual time in
    /// tests) and setup/teardown outcomes are counted.
    pub fn set_metrics(&mut self, metrics: CallSetupMetrics) {
        self.metrics = Some(metrics);
    }

    /// Number of live dialogs.
    pub fn dialog_count(&self) -> usize {
        self.dialogs.len()
    }

    /// Whether a request URI targets this gateway's conference domain.
    pub fn is_conference_uri(&self, uri: &str) -> bool {
        let Some(rest) = uri.strip_prefix("sip:") else {
            return false;
        };
        let Some((user, host)) = rest.split_once('@') else {
            return false;
        };
        host.split(';').next() == Some(self.domain.as_str())
            && (user == "new-conf" || user.starts_with("conf-"))
    }

    /// Handles a SIP request against the session server, returning the
    /// SIP messages to send (the response, plus NOTIFYs for members).
    pub fn handle_request(
        &mut self,
        request: &SipMessage,
        server: &mut SessionServer,
    ) -> Vec<SipMessage> {
        let StartLine::Request { method, uri } = &request.start else {
            return vec![SipMessage::response_to(request, 400, "Not a request")];
        };
        match method {
            SipMethod::Invite => {
                // Clone the instrument bundle out (Arc clones) so the
                // span does not borrow `self` across the `&mut` call.
                let timing = self.metrics.clone();
                let span = timing.as_ref().map(|m| {
                    m.attempts.inc();
                    m.setup_span()
                });
                let replies = self.handle_invite(request, uri.clone(), server);
                if let Some(m) = &timing {
                    if let Some(span) = span {
                        span.finish();
                    }
                    if replies.first().and_then(|r| r.status()) == Some(200) {
                        m.setups.inc();
                    } else {
                        m.failures.inc();
                    }
                }
                replies
            }
            SipMethod::Ack => Vec::new(),
            SipMethod::Bye => {
                let replies = self.handle_bye(request, server);
                if let Some(m) = &self.metrics {
                    if replies.first().and_then(|r| r.status()) == Some(200) {
                        m.teardowns.inc();
                    }
                }
                replies
            }
            SipMethod::Message => self.handle_message(request, server),
            SipMethod::Options => {
                vec![SipMessage::response_to(request, 200, "OK")
                    .with_header("Allow", "INVITE, ACK, BYE, MESSAGE, OPTIONS")]
            }
            _ => vec![SipMessage::response_to(request, 405, "Method Not Allowed")],
        }
    }

    fn handle_invite(
        &mut self,
        request: &SipMessage,
        uri: String,
        server: &mut SessionServer,
    ) -> Vec<SipMessage> {
        if !self.is_conference_uri(&uri) {
            return vec![SipMessage::response_to(request, 404, "Unknown conference")];
        }
        let Some(call_id) = request.header("Call-ID").map(str::to_owned) else {
            return vec![SipMessage::response_to(request, 400, "Missing Call-ID")];
        };
        let user = request
            .header("From")
            .map(extract_uri)
            .unwrap_or("sip:anonymous")
            .to_owned();

        // Media from the SDP offer (defaults to audio+video when absent).
        let media = match Sdp::parse(&request.body) {
            Ok(sdp) => sdp
                .media
                .iter()
                .filter_map(|m| match m.kind.as_str() {
                    "audio" => Some(MediaDescription::new(MediaKind::Audio, "PCMU")),
                    "video" => Some(MediaDescription::new(MediaKind::Video, "H263")),
                    _ => None,
                })
                .collect(),
            Err(_) => vec![
                MediaDescription::new(MediaKind::Audio, "PCMU"),
                MediaDescription::new(MediaKind::Video, "H263"),
            ],
        };

        // Resolve or create the session.
        let conf_user = uri
            .strip_prefix("sip:")
            .and_then(|r| r.split('@').next())
            .unwrap_or_default();
        let session = if conf_user == "new-conf" {
            let outputs = server.handle(
                Some(&user),
                XgspMessage::CreateSession {
                    name: format!("sip ad-hoc by {user}"),
                    mode: SessionMode::AdHoc,
                    media: media.clone(),
                },
            );
            let Some(session) = outputs.iter().find_map(|o| match o {
                ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => Some(*session),
                _ => None,
            }) else {
                return vec![SipMessage::response_to(request, 500, "Create failed")];
            };
            session
        } else {
            let Some(id) = conf_user
                .strip_prefix("conf-")
                .and_then(|raw| raw.parse::<u64>().ok())
            else {
                return vec![SipMessage::response_to(request, 404, "Bad conference id")];
            };
            SessionId::from_raw(id)
        };

        let terminal = TerminalId::from_raw(self.next_terminal);
        self.next_terminal += 1;
        let outputs = server.handle(
            Some(&user),
            XgspMessage::Join {
                session,
                user: user.clone(),
                terminal,
                media,
            },
        );

        let mut replies = Vec::new();
        let mut joined = false;
        for output in &outputs {
            match output {
                ServerOutput::Reply(XgspMessage::JoinAck { .. }) => joined = true,
                ServerOutput::Reply(XgspMessage::Error { code, detail }) => {
                    let status = if code == "unknown-session" { 404 } else { 486 };
                    return vec![SipMessage::response_to(request, status, detail.clone())];
                }
                ServerOutput::Notify { user, message } => {
                    replies.push(self.notify_for(user, message));
                }
                _ => {}
            }
        }
        if !joined {
            return vec![SipMessage::response_to(request, 500, "Join failed")];
        }
        self.dialogs.insert(
            call_id,
            Dialog {
                session,
                user: user.clone(),
            },
        );

        // 200 OK with an SDP answer pointing media at the RTP proxy.
        let answer = Sdp::new("globalmmcs", self.rtp_proxy_address.clone())
            .with_media(SdpMedia::new("audio", 40000, vec![0]).with_rtpmap(0, "PCMU", 8000))
            .with_media(SdpMedia::new("video", 40002, vec![34]).with_rtpmap(34, "H263", 90000));
        let ok = SipMessage::response_to(request, 200, "OK")
            .with_header("Contact", format!("<sip:conf-{}@{}>", session.value(), self.domain))
            .with_body("application/sdp", answer.to_wire());
        replies.insert(0, ok);
        replies
    }

    fn handle_bye(&mut self, request: &SipMessage, server: &mut SessionServer) -> Vec<SipMessage> {
        let Some(call_id) = request.header("Call-ID") else {
            return vec![SipMessage::response_to(request, 400, "Missing Call-ID")];
        };
        let Some(dialog) = self.dialogs.remove(call_id) else {
            return vec![SipMessage::response_to(
                request,
                481,
                "Call/Transaction Does Not Exist",
            )];
        };
        let outputs = server.handle(
            Some(&dialog.user),
            XgspMessage::Leave {
                session: dialog.session,
                user: dialog.user.clone(),
            },
        );
        let mut replies = vec![SipMessage::response_to(request, 200, "OK")];
        for output in outputs {
            if let ServerOutput::Notify { user, message } = output {
                replies.push(self.notify_for(&user, &message));
            }
        }
        replies
    }

    fn handle_message(
        &mut self,
        request: &SipMessage,
        server: &mut SessionServer,
    ) -> Vec<SipMessage> {
        let Some(dialog) = request
            .header("Call-ID")
            .and_then(|cid| self.dialogs.get(cid))
            .cloned()
        else {
            return vec![SipMessage::response_to(request, 481, "No conference dialog")];
        };
        let outputs = server.handle(
            Some(&dialog.user),
            XgspMessage::AppData {
                session: dialog.session,
                user: dialog.user.clone(),
                body: request.body.clone(),
            },
        );
        let mut replies = vec![SipMessage::response_to(request, 200, "OK")];
        for output in outputs {
            if let ServerOutput::Notify { user, message } = output {
                replies.push(self.notify_for(&user, &message));
            }
        }
        replies
    }

    /// Wraps an XGSP notification as a SIP NOTIFY toward a member.
    fn notify_for(&self, user: &str, message: &XgspMessage) -> SipMessage {
        SipMessage::request(SipMethod::Notify, user.to_owned())
            .with_header("Via", format!("SIP/2.0/UDP {};branch=z9hG4bK-gw", self.domain))
            .with_header("From", format!("<sip:gateway@{}>", self.domain))
            .with_header("To", format!("<{user}>"))
            .with_header("Event", "conference")
            .with_body("application/xgsp+xml", message.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invite(uri: &str, from: &str, call_id: &str) -> SipMessage {
        SipMessage::request(SipMethod::Invite, uri)
            .with_header("Via", "SIP/2.0/UDP ua;branch=z9hG4bK1")
            .with_header("From", format!("<{from}>;tag=1"))
            .with_header("To", format!("<{uri}>"))
            .with_header("Call-ID", call_id)
            .with_header("CSeq", "1 INVITE")
    }

    fn bye(call_id: &str) -> SipMessage {
        SipMessage::request(SipMethod::Bye, "sip:conf-1@mmcs.example")
            .with_header("Via", "SIP/2.0/UDP ua;branch=z9hG4bK2")
            .with_header("Call-ID", call_id)
            .with_header("CSeq", "2 BYE")
    }

    #[test]
    fn conference_uri_detection() {
        let gw = SipGateway::new("mmcs.example", "10.0.0.1");
        assert!(gw.is_conference_uri("sip:new-conf@mmcs.example"));
        assert!(gw.is_conference_uri("sip:conf-7@mmcs.example"));
        assert!(!gw.is_conference_uri("sip:alice@mmcs.example"));
        assert!(!gw.is_conference_uri("sip:conf-7@elsewhere.example"));
        assert!(!gw.is_conference_uri("mailto:conf-7@mmcs.example"));
    }

    #[test]
    fn invite_to_new_conf_creates_and_joins() {
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        let mut server = SessionServer::new();
        let replies = gw.handle_request(
            &invite("sip:new-conf@mmcs.example", "sip:alice@ua.example", "cid-1"),
            &mut server,
        );
        assert_eq!(replies[0].status(), Some(200));
        assert!(replies[0].body.contains("m=audio"));
        assert_eq!(server.session_count(), 1);
        assert_eq!(gw.dialog_count(), 1);
        let session = server.session_ids().next().unwrap();
        assert_eq!(
            server.session(session).unwrap().chair(),
            Some("sip:alice@ua.example")
        );
    }

    #[test]
    fn second_invite_joins_same_conf_and_notifies_first() {
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        let mut server = SessionServer::new();
        gw.handle_request(
            &invite("sip:new-conf@mmcs.example", "sip:alice@ua", "cid-1"),
            &mut server,
        );
        let session = server.session_ids().next().unwrap();
        let uri = format!("sip:conf-{}@mmcs.example", session.value());
        let replies = gw.handle_request(&invite(&uri, "sip:bob@ua", "cid-2"), &mut server);
        assert_eq!(replies[0].status(), Some(200));
        // A NOTIFY toward alice rides along.
        let notify = replies
            .iter()
            .find(|m| m.method() == Some(SipMethod::Notify))
            .expect("notify for alice");
        assert!(notify.body.contains("joined"));
        assert_eq!(server.session(session).unwrap().member_count(), 2);
    }

    #[test]
    fn invite_to_missing_conf_404s() {
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        let mut server = SessionServer::new();
        let replies = gw.handle_request(
            &invite("sip:conf-99@mmcs.example", "sip:alice@ua", "cid-9"),
            &mut server,
        );
        assert_eq!(replies[0].status(), Some(404));
        assert_eq!(gw.dialog_count(), 0);
    }

    #[test]
    fn bye_leaves_and_tears_down_adhoc() {
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        let mut server = SessionServer::new();
        gw.handle_request(
            &invite("sip:new-conf@mmcs.example", "sip:alice@ua", "cid-1"),
            &mut server,
        );
        let replies = gw.handle_request(&bye("cid-1"), &mut server);
        assert_eq!(replies[0].status(), Some(200));
        // Last member left an ad-hoc session: it evaporated.
        assert_eq!(server.session_count(), 0);
        assert_eq!(gw.dialog_count(), 0);
        // A second BYE has no dialog.
        let replies = gw.handle_request(&bye("cid-1"), &mut server);
        assert_eq!(replies[0].status(), Some(481));
    }

    #[test]
    fn message_relays_as_app_data() {
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        let mut server = SessionServer::new();
        gw.handle_request(
            &invite("sip:new-conf@mmcs.example", "sip:alice@ua", "cid-1"),
            &mut server,
        );
        let session = server.session_ids().next().unwrap();
        let uri = format!("sip:conf-{}@mmcs.example", session.value());
        gw.handle_request(&invite(&uri, "sip:bob@ua", "cid-2"), &mut server);

        let chat = SipMessage::request(SipMethod::Message, uri)
            .with_header("Via", "SIP/2.0/UDP ua;branch=z9hG4bK3")
            .with_header("Call-ID", "cid-1")
            .with_header("CSeq", "2 MESSAGE")
            .with_body("text/plain", "hello everyone");
        let replies = gw.handle_request(&chat, &mut server);
        assert_eq!(replies[0].status(), Some(200));
        let notify = replies
            .iter()
            .find(|m| m.method() == Some(SipMethod::Notify))
            .expect("notify toward bob");
        assert!(notify.body.contains("hello everyone"));
        assert_eq!(notify.header("To"), Some("<sip:bob@ua>"));
    }

    #[test]
    fn telemetry_times_setup_and_counts_outcomes() {
        use mmcs_telemetry::{ManualClock, Registry};
        use mmcs_util::time::SimDuration;
        use std::sync::Arc;

        let registry = Registry::new();
        let clock = Arc::new(ManualClock::with_step(SimDuration::from_micros(250)));
        let metrics = CallSetupMetrics::register(&registry, "sip", clock);
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        gw.set_metrics(metrics.clone());
        let mut server = SessionServer::new();

        gw.handle_request(
            &invite("sip:new-conf@mmcs.example", "sip:alice@ua", "cid-1"),
            &mut server,
        );
        gw.handle_request(
            &invite("sip:conf-99@mmcs.example", "sip:alice@ua", "cid-2"),
            &mut server,
        );
        gw.handle_request(&bye("cid-1"), &mut server);

        assert_eq!(metrics.attempts.get(), 2);
        assert_eq!(metrics.setups.get(), 1);
        assert_eq!(metrics.failures.get(), 1);
        assert_eq!(metrics.teardowns.get(), 1);
        let latency = metrics.setup_latency.snapshot();
        assert_eq!(latency.count(), 2);
        // The stepping clock advances 250us per reading; each span reads
        // twice, so each recorded latency is exactly 250us.
        assert_eq!(latency.sum(), 2 * 250_000);
        let text = registry.render_prometheus();
        assert!(text.contains("sip_call_setups_total 1"));
    }

    #[test]
    fn unsupported_method_405s() {
        let mut gw = SipGateway::new("mmcs.example", "10.0.0.1");
        let mut server = SessionServer::new();
        let register = SipMessage::request(SipMethod::Register, "sip:conf-1@mmcs.example")
            .with_header("Via", "SIP/2.0/UDP ua;branch=z9hG4bK4");
        let replies = gw.handle_request(&register, &mut server);
        assert_eq!(replies[0].status(), Some(405));
    }
}
