//! SIP message grammar (RFC 3261 subset) — real text wire format.
//!
//! We implement the methods and headers Global-MMCS's SIP servers need:
//! REGISTER (registrar), INVITE/ACK/BYE (calls into conferences),
//! MESSAGE (IM), SUBSCRIBE/NOTIFY (presence), OPTIONS and CANCEL for
//! completeness. Header coverage is the working set: Via, From, To,
//! Call-ID, CSeq, Contact, Expires, Content-Type/-Length, Max-Forwards,
//! Event; unknown headers are preserved verbatim.

use core::fmt;

/// A SIP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SipMethod {
    /// Session setup.
    Invite,
    /// Final-response acknowledgement.
    Ack,
    /// Session teardown.
    Bye,
    /// Cancel a pending INVITE.
    Cancel,
    /// Bind an address-of-record to a contact.
    Register,
    /// Capability query / keep-alive.
    Options,
    /// Instant message (RFC 3428).
    Message,
    /// Subscribe to an event package (RFC 3265).
    Subscribe,
    /// Event notification (RFC 3265).
    Notify,
}

impl SipMethod {
    /// The canonical token.
    pub fn as_str(self) -> &'static str {
        match self {
            SipMethod::Invite => "INVITE",
            SipMethod::Ack => "ACK",
            SipMethod::Bye => "BYE",
            SipMethod::Cancel => "CANCEL",
            SipMethod::Register => "REGISTER",
            SipMethod::Options => "OPTIONS",
            SipMethod::Message => "MESSAGE",
            SipMethod::Subscribe => "SUBSCRIBE",
            SipMethod::Notify => "NOTIFY",
        }
    }

    /// Parses a method token (case-sensitive, per RFC 3261).
    pub fn parse(token: &str) -> Option<SipMethod> {
        Some(match token {
            "INVITE" => SipMethod::Invite,
            "ACK" => SipMethod::Ack,
            "BYE" => SipMethod::Bye,
            "CANCEL" => SipMethod::Cancel,
            "REGISTER" => SipMethod::Register,
            "OPTIONS" => SipMethod::Options,
            "MESSAGE" => SipMethod::Message,
            "SUBSCRIBE" => SipMethod::Subscribe,
            "NOTIFY" => SipMethod::Notify,
            _ => return None,
        })
    }
}

impl fmt::Display for SipMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A SIP message: request or response, plus headers and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SipMessage {
    /// Request line or status line.
    pub start: StartLine,
    /// Headers in order; names are kept in their canonical form.
    pub headers: Vec<(String, String)>,
    /// The body (SDP, IM text, presence document).
    pub body: String,
}

/// The first line of a SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartLine {
    /// `METHOD sip:uri SIP/2.0`
    Request {
        /// The method.
        method: SipMethod,
        /// The request URI (e.g. `sip:conf-7@mmcs.example`).
        uri: String,
    },
    /// `SIP/2.0 200 OK`
    Response {
        /// The status code.
        code: u16,
        /// The reason phrase.
        reason: String,
    },
}

impl SipMessage {
    /// Builds a request with the mandatory header slots empty.
    pub fn request(method: SipMethod, uri: impl Into<String>) -> Self {
        Self {
            start: StartLine::Request {
                method,
                uri: uri.into(),
            },
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// Builds a response to a request, copying the headers RFC 3261
    /// requires (Via, From, To, Call-ID, CSeq).
    pub fn response_to(request: &SipMessage, code: u16, reason: impl Into<String>) -> Self {
        let mut response = Self {
            start: StartLine::Response {
                code,
                reason: reason.into(),
            },
            headers: Vec::new(),
            body: String::new(),
        };
        for name in ["Via", "From", "To", "Call-ID", "CSeq"] {
            for value in request.header_all(name) {
                response.headers.push((name.to_owned(), value.to_owned()));
            }
        }
        response
    }

    /// Appends a header, builder style.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body and Content-Type, builder style.
    pub fn with_body(mut self, content_type: &str, body: impl Into<String>) -> Self {
        self.set_header("Content-Type", content_type);
        self.body = body.into();
        self
    }

    /// First value of a header (case-insensitive name match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of a header, in order.
    pub fn header_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.headers
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Sets (replacing the first occurrence) or appends a header.
    pub fn set_header(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        if let Some(slot) = self
            .headers
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            slot.1 = value;
        } else {
            self.headers.push((name.to_owned(), value));
        }
    }

    /// The method, for requests.
    pub fn method(&self) -> Option<SipMethod> {
        match &self.start {
            StartLine::Request { method, .. } => Some(*method),
            StartLine::Response { .. } => None,
        }
    }

    /// The status code, for responses.
    pub fn status(&self) -> Option<u16> {
        match &self.start {
            StartLine::Response { code, .. } => Some(*code),
            StartLine::Request { .. } => None,
        }
    }

    /// Whether this message is a request.
    pub fn is_request(&self) -> bool {
        matches!(self.start, StartLine::Request { .. })
    }

    /// Renders the message in SIP wire format (CRLF line endings,
    /// Content-Length computed).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        match &self.start {
            StartLine::Request { method, uri } => {
                out.push_str(&format!("{method} {uri} SIP/2.0\r\n"));
            }
            StartLine::Response { code, reason } => {
                out.push_str(&format!("SIP/2.0 {code} {reason}\r\n"));
            }
        }
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("Content-Length") {
                continue; // always recomputed
            }
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        out.push_str(&self.body);
        out
    }

    /// Parses a message from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSipError`] on malformed start lines, header lines
    /// without a colon, unknown methods or bad status codes.
    pub fn parse(wire: &str) -> Result<SipMessage, ParseSipError> {
        let (head, body) = match wire.find("\r\n\r\n") {
            Some(idx) => (&wire[..idx], &wire[idx + 4..]),
            None => (wire.trim_end_matches("\r\n"), ""),
        };
        let mut lines = head.split("\r\n");
        let start_line = lines.next().ok_or(ParseSipError::Empty)?;
        let start = Self::parse_start_line(start_line)?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ParseSipError::BadHeader(line.to_owned()))?;
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
        // Truncate the body to Content-Length when present.
        let body = {
            let declared = headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("Content-Length"))
                .and_then(|(_, v)| v.parse::<usize>().ok());
            match declared {
                Some(len) if len <= body.len() => &body[..len],
                _ => body,
            }
        };
        Ok(SipMessage {
            start,
            headers,
            body: body.to_owned(),
        })
    }

    fn parse_start_line(line: &str) -> Result<StartLine, ParseSipError> {
        if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
            let (code, reason) = rest
                .split_once(' ')
                .ok_or_else(|| ParseSipError::BadStartLine(line.to_owned()))?;
            let code: u16 = code
                .parse()
                .map_err(|_| ParseSipError::BadStatus(code.to_owned()))?;
            if !(100..700).contains(&code) {
                return Err(ParseSipError::BadStatus(code.to_string()));
            }
            return Ok(StartLine::Response {
                code,
                reason: reason.to_owned(),
            });
        }
        let mut parts = line.split(' ');
        let (method, uri, version) = (
            parts.next().ok_or_else(|| ParseSipError::BadStartLine(line.to_owned()))?,
            parts.next().ok_or_else(|| ParseSipError::BadStartLine(line.to_owned()))?,
            parts.next().ok_or_else(|| ParseSipError::BadStartLine(line.to_owned()))?,
        );
        if version != "SIP/2.0" || parts.next().is_some() {
            return Err(ParseSipError::BadStartLine(line.to_owned()));
        }
        let method = SipMethod::parse(method)
            .ok_or_else(|| ParseSipError::UnknownMethod(method.to_owned()))?;
        Ok(StartLine::Request {
            method,
            uri: uri.to_owned(),
        })
    }
}

impl fmt::Display for SipMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_wire())
    }
}

/// Error parsing a SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSipError {
    /// No content at all.
    Empty,
    /// Start line not a valid request or status line.
    BadStartLine(String),
    /// Status code not numeric or out of range.
    BadStatus(String),
    /// Method token unknown.
    UnknownMethod(String),
    /// Header line without a colon.
    BadHeader(String),
}

impl fmt::Display for ParseSipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSipError::Empty => write!(f, "empty sip message"),
            ParseSipError::BadStartLine(l) => write!(f, "bad start line {l:?}"),
            ParseSipError::BadStatus(c) => write!(f, "bad status code {c:?}"),
            ParseSipError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            ParseSipError::BadHeader(h) => write!(f, "bad header line {h:?}"),
        }
    }
}

impl std::error::Error for ParseSipError {}

/// Extracts the bare AoR (`sip:user@host`) from a From/To/Contact value
/// like `"Alice" <sip:alice@x.org>;tag=77`.
pub fn extract_uri(header_value: &str) -> &str {
    let inner = match (header_value.find('<'), header_value.find('>')) {
        (Some(open), Some(close)) if open < close => &header_value[open + 1..close],
        _ => header_value,
    };
    inner.split(';').next().unwrap_or(inner).trim()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invite() -> SipMessage {
        SipMessage::request(SipMethod::Invite, "sip:conf-7@mmcs.example")
            .with_header("Via", "SIP/2.0/UDP client.example;branch=z9hG4bK776")
            .with_header("Max-Forwards", "70")
            .with_header("From", "<sip:alice@example.org>;tag=1928")
            .with_header("To", "<sip:conf-7@mmcs.example>")
            .with_header("Call-ID", "a84b4c76e66710")
            .with_header("CSeq", "314159 INVITE")
            .with_header("Contact", "<sip:alice@client.example>")
            .with_body("application/sdp", "v=0\r\no=alice 1 1 IN IP4 c\r\ns=-\r\n")
    }

    #[test]
    fn request_round_trip() {
        let message = invite();
        let wire = message.to_wire();
        assert!(wire.starts_with("INVITE sip:conf-7@mmcs.example SIP/2.0\r\n"));
        assert!(wire.contains("Content-Length: 32\r\n"));
        let parsed = SipMessage::parse(&wire).unwrap();
        assert_eq!(parsed.method(), Some(SipMethod::Invite));
        assert_eq!(parsed.header("call-id"), Some("a84b4c76e66710"));
        assert_eq!(parsed.body, message.body);
    }

    #[test]
    fn response_round_trip_and_header_copying() {
        let request = invite();
        let response = SipMessage::response_to(&request, 200, "OK")
            .with_header("Contact", "<sip:gw@mmcs.example>");
        let wire = response.to_wire();
        assert!(wire.starts_with("SIP/2.0 200 OK\r\n"));
        let parsed = SipMessage::parse(&wire).unwrap();
        assert_eq!(parsed.status(), Some(200));
        assert_eq!(parsed.header("CSeq"), Some("314159 INVITE"));
        assert_eq!(parsed.header("From"), request.header("From"));
        assert!(!parsed.is_request());
    }

    #[test]
    fn all_methods_parse() {
        for method in [
            SipMethod::Invite,
            SipMethod::Ack,
            SipMethod::Bye,
            SipMethod::Cancel,
            SipMethod::Register,
            SipMethod::Options,
            SipMethod::Message,
            SipMethod::Subscribe,
            SipMethod::Notify,
        ] {
            assert_eq!(SipMethod::parse(method.as_str()), Some(method));
        }
        // Methods are case-sensitive tokens.
        assert_eq!(SipMethod::parse("invite"), None);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            SipMessage::parse("TELEPORT sip:x SIP/2.0\r\n\r\n"),
            Err(ParseSipError::UnknownMethod(_))
        ));
        assert!(matches!(
            SipMessage::parse("SIP/2.0 999x OK\r\n\r\n"),
            Err(ParseSipError::BadStatus(_))
        ));
        assert!(matches!(
            SipMessage::parse("SIP/2.0 99 Too Low\r\n\r\n"),
            Err(ParseSipError::BadStatus(_))
        ));
        assert!(matches!(
            SipMessage::parse("INVITE sip:x SIP/2.0\r\nNoColonHere\r\n\r\n"),
            Err(ParseSipError::BadHeader(_))
        ));
        assert!(matches!(
            SipMessage::parse("INVITE sip:x\r\n\r\n"),
            Err(ParseSipError::BadStartLine(_))
        ));
    }

    #[test]
    fn content_length_truncates_body() {
        let wire = "MESSAGE sip:bob@x SIP/2.0\r\nContent-Length: 2\r\n\r\nhiEXTRA";
        let parsed = SipMessage::parse(wire).unwrap();
        assert_eq!(parsed.body, "hi");
    }

    #[test]
    fn multiple_via_headers_preserved_in_order() {
        let message = SipMessage::request(SipMethod::Bye, "sip:x@y")
            .with_header("Via", "SIP/2.0/UDP p1;branch=a")
            .with_header("Via", "SIP/2.0/UDP p2;branch=b");
        let parsed = SipMessage::parse(&message.to_wire()).unwrap();
        let vias: Vec<&str> = parsed.header_all("Via").collect();
        assert_eq!(vias, vec!["SIP/2.0/UDP p1;branch=a", "SIP/2.0/UDP p2;branch=b"]);
    }

    #[test]
    fn extract_uri_variants() {
        assert_eq!(extract_uri("<sip:a@b>;tag=1"), "sip:a@b");
        assert_eq!(extract_uri("\"Alice\" <sip:a@b>"), "sip:a@b");
        assert_eq!(extract_uri("sip:a@b;transport=udp"), "sip:a@b");
        assert_eq!(extract_uri("sip:a@b"), "sip:a@b");
    }

    #[test]
    fn set_header_replaces_first() {
        let mut message = SipMessage::request(SipMethod::Options, "sip:x@y");
        message.set_header("Expires", "3600");
        message.set_header("expires", "60");
        assert_eq!(message.header("Expires"), Some("60"));
        assert_eq!(message.header_all("Expires").count(), 1);
    }
}
