//! A small SDP (RFC 4566 subset) codec for SIP offer/answer bodies.
//!
//! Covers what the gateway needs: origin, session name, connection,
//! media lines with payload types and `a=rtpmap` attributes.

use core::fmt;

/// One `m=` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdpMedia {
    /// Media type: `audio`, `video`, `application`.
    pub kind: String,
    /// Transport port.
    pub port: u16,
    /// Transport profile, normally `RTP/AVP`.
    pub proto: String,
    /// Payload type numbers in preference order.
    pub formats: Vec<u8>,
    /// `a=` attribute lines (verbatim, without the `a=` prefix).
    pub attributes: Vec<String>,
}

impl SdpMedia {
    /// Creates a media section with no attributes.
    pub fn new(kind: impl Into<String>, port: u16, formats: Vec<u8>) -> Self {
        Self {
            kind: kind.into(),
            port,
            proto: "RTP/AVP".to_owned(),
            formats,
            attributes: Vec::new(),
        }
    }

    /// Adds an `a=rtpmap` attribute, builder style.
    pub fn with_rtpmap(mut self, pt: u8, encoding: &str, clock: u32) -> Self {
        self.attributes.push(format!("rtpmap:{pt} {encoding}/{clock}"));
        self
    }
}

/// A session description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdp {
    /// `o=` username.
    pub origin_user: String,
    /// `o=` session id.
    pub session_id: u64,
    /// `o=` version.
    pub version: u64,
    /// `o=`/`c=` address.
    pub address: String,
    /// `s=` session name.
    pub name: String,
    /// Media sections.
    pub media: Vec<SdpMedia>,
}

impl Sdp {
    /// Creates a description with no media.
    pub fn new(origin_user: impl Into<String>, address: impl Into<String>) -> Self {
        Self {
            origin_user: origin_user.into(),
            session_id: 1,
            version: 1,
            address: address.into(),
            name: "-".to_owned(),
            media: Vec::new(),
        }
    }

    /// Adds a media section, builder style.
    pub fn with_media(mut self, media: SdpMedia) -> Self {
        self.media.push(media);
        self
    }

    /// Renders in SDP wire format (CRLF lines).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str("v=0\r\n");
        out.push_str(&format!(
            "o={} {} {} IN IP4 {}\r\n",
            self.origin_user, self.session_id, self.version, self.address
        ));
        out.push_str(&format!("s={}\r\n", self.name));
        out.push_str(&format!("c=IN IP4 {}\r\n", self.address));
        out.push_str("t=0 0\r\n");
        for m in &self.media {
            let formats: Vec<String> = m.formats.iter().map(u8::to_string).collect();
            out.push_str(&format!(
                "m={} {} {} {}\r\n",
                m.kind,
                m.port,
                m.proto,
                formats.join(" ")
            ));
            for attr in &m.attributes {
                out.push_str(&format!("a={attr}\r\n"));
            }
        }
        out
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSdpError`] on missing mandatory lines or malformed
    /// `o=`/`m=` lines. Unknown line types are ignored (per RFC 4566).
    pub fn parse(wire: &str) -> Result<Sdp, ParseSdpError> {
        let mut origin: Option<(String, u64, u64, String)> = None;
        let mut name = "-".to_owned();
        let mut address = None;
        let mut media: Vec<SdpMedia> = Vec::new();
        let mut saw_v = false;

        for line in wire.lines().map(str::trim_end) {
            if line.is_empty() {
                continue;
            }
            let Some((kind, value)) = line.split_once('=') else {
                return Err(ParseSdpError::BadLine(line.to_owned()));
            };
            match kind {
                "v" => {
                    if value != "0" {
                        return Err(ParseSdpError::BadVersion(value.to_owned()));
                    }
                    saw_v = true;
                }
                "o" => {
                    let parts: Vec<&str> = value.split(' ').collect();
                    if parts.len() != 6 {
                        return Err(ParseSdpError::BadLine(line.to_owned()));
                    }
                    origin = Some((
                        parts[0].to_owned(),
                        parts[1].parse().map_err(|_| ParseSdpError::BadLine(line.to_owned()))?,
                        parts[2].parse().map_err(|_| ParseSdpError::BadLine(line.to_owned()))?,
                        parts[5].to_owned(),
                    ));
                }
                "s" => name = value.to_owned(),
                "c" => {
                    address = value.rsplit(' ').next().map(str::to_owned);
                }
                "m" => {
                    let parts: Vec<&str> = value.split(' ').collect();
                    if parts.len() < 4 {
                        return Err(ParseSdpError::BadLine(line.to_owned()));
                    }
                    let formats = parts[3..]
                        .iter()
                        .map(|p| p.parse::<u8>())
                        .collect::<Result<Vec<u8>, _>>()
                        .map_err(|_| ParseSdpError::BadLine(line.to_owned()))?;
                    media.push(SdpMedia {
                        kind: parts[0].to_owned(),
                        port: parts[1]
                            .parse()
                            .map_err(|_| ParseSdpError::BadLine(line.to_owned()))?,
                        proto: parts[2].to_owned(),
                        formats,
                        attributes: Vec::new(),
                    });
                }
                "a" => {
                    if let Some(current) = media.last_mut() {
                        current.attributes.push(value.to_owned());
                    }
                }
                _ => {} // t=, b=, k=, unknown: ignored
            }
        }
        if !saw_v {
            return Err(ParseSdpError::Missing("v"));
        }
        let (origin_user, session_id, version, origin_addr) =
            origin.ok_or(ParseSdpError::Missing("o"))?;
        Ok(Sdp {
            origin_user,
            session_id,
            version,
            address: address.unwrap_or(origin_addr),
            name,
            media,
        })
    }
}

impl fmt::Display for Sdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_wire())
    }
}

/// Error parsing SDP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSdpError {
    /// A mandatory line type was missing.
    Missing(&'static str),
    /// `v=` was not 0.
    BadVersion(String),
    /// A line failed to parse.
    BadLine(String),
}

impl fmt::Display for ParseSdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSdpError::Missing(what) => write!(f, "missing sdp line {what}="),
            ParseSdpError::BadVersion(v) => write!(f, "unsupported sdp version {v:?}"),
            ParseSdpError::BadLine(l) => write!(f, "bad sdp line {l:?}"),
        }
    }
}

impl std::error::Error for ParseSdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer() -> Sdp {
        Sdp::new("alice", "192.0.2.10")
            .with_media(SdpMedia::new("audio", 49170, vec![0, 3]).with_rtpmap(0, "PCMU", 8000))
            .with_media(SdpMedia::new("video", 51372, vec![34]).with_rtpmap(34, "H263", 90000))
    }

    #[test]
    fn round_trip() {
        let sdp = offer();
        let wire = sdp.to_wire();
        let parsed = Sdp::parse(&wire).unwrap();
        assert_eq!(parsed, sdp);
    }

    #[test]
    fn wire_format_layout() {
        let wire = offer().to_wire();
        assert!(wire.starts_with("v=0\r\n"));
        assert!(wire.contains("m=audio 49170 RTP/AVP 0 3\r\n"));
        assert!(wire.contains("a=rtpmap:34 H263/90000\r\n"));
    }

    #[test]
    fn attributes_bind_to_preceding_media() {
        let parsed = Sdp::parse(&offer().to_wire()).unwrap();
        assert_eq!(parsed.media[0].attributes, vec!["rtpmap:0 PCMU/8000"]);
        assert_eq!(parsed.media[1].attributes, vec!["rtpmap:34 H263/90000"]);
    }

    #[test]
    fn unknown_lines_are_ignored() {
        let wire = "v=0\r\no=u 1 1 IN IP4 h\r\ns=x\r\nt=0 0\r\nb=AS:600\r\nz=ignored\r\n";
        let sdp = Sdp::parse(wire).unwrap();
        assert_eq!(sdp.name, "x");
        assert_eq!(sdp.address, "h"); // falls back to origin address
    }

    #[test]
    fn errors() {
        assert_eq!(Sdp::parse(""), Err(ParseSdpError::Missing("v")));
        assert_eq!(
            Sdp::parse("v=1\r\n"),
            Err(ParseSdpError::BadVersion("1".into()))
        );
        assert!(matches!(
            Sdp::parse("v=0\r\no=broken\r\n"),
            Err(ParseSdpError::BadLine(_))
        ));
        assert!(matches!(
            Sdp::parse("v=0\r\no=u 1 1 IN IP4 h\r\nm=audio\r\n"),
            Err(ParseSdpError::BadLine(_))
        ));
        assert!(matches!(
            Sdp::parse("nonsense"),
            Err(ParseSdpError::BadLine(_))
        ));
    }
}
