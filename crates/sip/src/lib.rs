//! SIP (RFC 3261 subset) and SDP for Global-MMCS.
//!
//! The SIP servers in the paper — a proxy, a registrar and a gateway
//! translating SIP signaling into XGSP — give SIP endpoints (and
//! Windows-Messenger-class IM clients, via `MESSAGE` and
//! `SUBSCRIBE`/`NOTIFY`) access to Global-MMCS conferences. This crate
//! implements:
//!
//! * [`message`] — the SIP text codec: requests, responses, the headers
//!   the system needs (Via/From/To/Call-ID/CSeq/Contact/Expires/…).
//! * [`sdp`] — a small SDP codec for offer/answer bodies.
//! * [`transaction`] — simplified client/server transaction state
//!   machines (invite and non-invite).
//! * [`registrar`] — location service binding AoRs to contacts with
//!   expiry.
//! * [`proxy`] — a stateless forwarding proxy using the registrar.
//! * [`gateway`] — SIP ⇄ XGSP translation: INVITE joins a session, BYE
//!   leaves, MESSAGE becomes session chat/app-data.
//! * [`presence`] — SUBSCRIBE/NOTIFY presence for the IM service.

pub mod gateway;
pub mod message;
pub mod presence;
pub mod proxy;
pub mod registrar;
pub mod sdp;
pub mod transaction;

pub use message::{SipMessage, SipMethod};
