//! Simplified SIP transaction state machines (RFC 3261 §17).
//!
//! Global-MMCS's SIP servers run over the broker/simulated transports,
//! so we keep the transaction layer to what matters architecturally:
//! request/response matching by branch + CSeq, the INVITE three-way
//! handshake (provisional → final → ACK), and terminal-state rules.
//! Timer-driven retransmission is collapsed into a single `on_timeout`.

use core::fmt;

use crate::message::{SipMessage, SipMethod};

/// Client transaction states (merged INVITE/non-INVITE view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Request sent, nothing back yet.
    Calling,
    /// A 1xx arrived.
    Proceeding,
    /// A final response arrived (2xx–6xx).
    Completed,
    /// Done (ACK sent for INVITE, or immediately for others).
    Terminated,
}

/// Error feeding a transaction an impossible event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionError(&'static str);

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction error: {}", self.0)
    }
}

impl std::error::Error for TransactionError {}

/// A client transaction: one request awaiting its responses.
#[derive(Debug, Clone)]
pub struct ClientTransaction {
    method: SipMethod,
    branch: String,
    state: ClientState,
    final_code: Option<u16>,
}

impl ClientTransaction {
    /// Starts a transaction for a request; the request must carry a Via
    /// branch.
    ///
    /// # Errors
    ///
    /// Fails if the message is not a request or lacks a branch.
    pub fn start(request: &SipMessage) -> Result<ClientTransaction, TransactionError> {
        let method = request
            .method()
            .ok_or(TransactionError("not a request"))?;
        let branch = branch_of(request).ok_or(TransactionError("missing Via branch"))?;
        Ok(ClientTransaction {
            method,
            branch,
            state: ClientState::Calling,
            final_code: None,
        })
    }

    /// The transaction's method.
    pub fn method(&self) -> SipMethod {
        self.method
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The final response code, once completed.
    pub fn final_code(&self) -> Option<u16> {
        self.final_code
    }

    /// Whether a response belongs to this transaction (branch + CSeq
    /// method match).
    pub fn matches(&self, response: &SipMessage) -> bool {
        branch_of(response).as_deref() == Some(self.branch.as_str())
            && response
                .header("CSeq")
                .is_some_and(|cseq| cseq.ends_with(self.method.as_str()))
    }

    /// Feeds a matching response. For an INVITE 2xx–6xx, returns the ACK
    /// to send; other methods return `None`.
    ///
    /// # Errors
    ///
    /// Fails on non-matching or out-of-state responses.
    pub fn on_response(
        &mut self,
        response: &SipMessage,
    ) -> Result<Option<SipMessage>, TransactionError> {
        if !self.matches(response) {
            return Err(TransactionError("response does not match transaction"));
        }
        let code = response.status().ok_or(TransactionError("not a response"))?;
        match (self.state, code) {
            (ClientState::Calling | ClientState::Proceeding, 100..=199) => {
                self.state = ClientState::Proceeding;
                Ok(None)
            }
            (ClientState::Calling | ClientState::Proceeding, 200..=699) => {
                self.final_code = Some(code);
                if self.method == SipMethod::Invite {
                    self.state = ClientState::Completed;
                    let mut ack = SipMessage::request(
                        SipMethod::Ack,
                        response
                            .header("Contact")
                            .map(crate::message::extract_uri)
                            .unwrap_or("sip:unknown")
                            .to_owned(),
                    );
                    for name in ["Via", "From", "To", "Call-ID"] {
                        if let Some(value) = response.header(name) {
                            ack.set_header(name, value);
                        }
                    }
                    let cseq_num = response
                        .header("CSeq")
                        .and_then(|c| c.split(' ').next())
                        .unwrap_or("1");
                    ack.set_header("CSeq", format!("{cseq_num} ACK"));
                    self.state = ClientState::Terminated;
                    Ok(Some(ack))
                } else {
                    self.state = ClientState::Terminated;
                    Ok(None)
                }
            }
            _ => Err(TransactionError("response in terminal state")),
        }
    }

    /// Gives up on the transaction (timer F/B fired).
    pub fn on_timeout(&mut self) {
        self.final_code = Some(408);
        self.state = ClientState::Terminated;
    }
}

/// Server transaction states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Request received, no final response sent.
    Proceeding,
    /// Final response sent (awaiting ACK for INVITE).
    Completed,
    /// Done.
    Terminated,
}

/// A server transaction: one received request being answered.
#[derive(Debug, Clone)]
pub struct ServerTransaction {
    method: SipMethod,
    branch: String,
    state: ServerState,
}

impl ServerTransaction {
    /// Starts from a received request.
    ///
    /// # Errors
    ///
    /// Fails if the message is not a request or lacks a branch.
    pub fn start(request: &SipMessage) -> Result<ServerTransaction, TransactionError> {
        let method = request
            .method()
            .ok_or(TransactionError("not a request"))?;
        let branch = branch_of(request).ok_or(TransactionError("missing Via branch"))?;
        Ok(ServerTransaction {
            method,
            branch,
            state: ServerState::Proceeding,
        })
    }

    /// Current state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Whether a retransmitted request matches this transaction.
    pub fn matches(&self, request: &SipMessage) -> bool {
        branch_of(request).as_deref() == Some(self.branch.as_str())
            && request.method() == Some(self.method)
    }

    /// Records that a response was sent.
    ///
    /// # Errors
    ///
    /// Fails if a final response was already sent.
    pub fn on_send_response(&mut self, code: u16) -> Result<(), TransactionError> {
        match self.state {
            ServerState::Proceeding => {
                if code >= 200 {
                    self.state = if self.method == SipMethod::Invite {
                        ServerState::Completed // waits for ACK
                    } else {
                        ServerState::Terminated
                    };
                }
                Ok(())
            }
            _ => Err(TransactionError("final response already sent")),
        }
    }

    /// Records an ACK (INVITE only).
    ///
    /// # Errors
    ///
    /// Fails when no final response is outstanding.
    pub fn on_ack(&mut self) -> Result<(), TransactionError> {
        if self.method != SipMethod::Invite || self.state != ServerState::Completed {
            return Err(TransactionError("unexpected ACK"));
        }
        self.state = ServerState::Terminated;
        Ok(())
    }
}

/// Extracts the `branch=` parameter from the topmost Via.
fn branch_of(message: &SipMessage) -> Option<String> {
    let via = message.header("Via")?;
    via.split(';')
        .find_map(|p| p.trim().strip_prefix("branch="))
        .map(str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invite() -> SipMessage {
        SipMessage::request(SipMethod::Invite, "sip:conf@x")
            .with_header("Via", "SIP/2.0/UDP c;branch=z9hG4bKabc")
            .with_header("From", "<sip:a@x>;tag=1")
            .with_header("To", "<sip:conf@x>")
            .with_header("Call-ID", "cid-1")
            .with_header("CSeq", "1 INVITE")
    }

    #[test]
    fn invite_happy_path_produces_ack() {
        let request = invite();
        let mut tx = ClientTransaction::start(&request).unwrap();
        assert_eq!(tx.state(), ClientState::Calling);

        let ringing = SipMessage::response_to(&request, 180, "Ringing");
        assert_eq!(tx.on_response(&ringing).unwrap(), None);
        assert_eq!(tx.state(), ClientState::Proceeding);

        let ok = SipMessage::response_to(&request, 200, "OK")
            .with_header("Contact", "<sip:gw@mmcs>");
        let ack = tx.on_response(&ok).unwrap().expect("ACK for INVITE 200");
        assert_eq!(ack.method(), Some(SipMethod::Ack));
        assert_eq!(ack.header("CSeq"), Some("1 ACK"));
        assert_eq!(tx.state(), ClientState::Terminated);
        assert_eq!(tx.final_code(), Some(200));
    }

    #[test]
    fn non_invite_completes_without_ack() {
        let request = SipMessage::request(SipMethod::Register, "sip:reg@x")
            .with_header("Via", "SIP/2.0/UDP c;branch=z9hG4bKreg")
            .with_header("CSeq", "1 REGISTER");
        let mut tx = ClientTransaction::start(&request).unwrap();
        let ok = SipMessage::response_to(&request, 200, "OK");
        assert_eq!(tx.on_response(&ok).unwrap(), None);
        assert_eq!(tx.state(), ClientState::Terminated);
    }

    #[test]
    fn mismatched_response_rejected() {
        let request = invite();
        let mut tx = ClientTransaction::start(&request).unwrap();
        let other = SipMessage::response_to(&request, 200, "OK");
        let mut wrong_branch = other.clone();
        wrong_branch.set_header("Via", "SIP/2.0/UDP c;branch=z9hG4bKother");
        assert!(tx.on_response(&wrong_branch).is_err());
        let mut wrong_cseq = other;
        wrong_cseq.set_header("CSeq", "1 BYE");
        assert!(tx.on_response(&wrong_cseq).is_err());
    }

    #[test]
    fn response_after_terminal_rejected() {
        let request = invite();
        let mut tx = ClientTransaction::start(&request).unwrap();
        let busy = SipMessage::response_to(&request, 486, "Busy Here");
        tx.on_response(&busy).unwrap();
        assert_eq!(tx.final_code(), Some(486));
        assert!(tx.on_response(&busy).is_err());
    }

    #[test]
    fn timeout_synthesizes_408() {
        let request = invite();
        let mut tx = ClientTransaction::start(&request).unwrap();
        tx.on_timeout();
        assert_eq!(tx.final_code(), Some(408));
        assert_eq!(tx.state(), ClientState::Terminated);
    }

    #[test]
    fn start_requires_request_with_branch() {
        let response = SipMessage::response_to(&invite(), 200, "OK");
        assert!(ClientTransaction::start(&response).is_err());
        let no_branch = SipMessage::request(SipMethod::Invite, "sip:x")
            .with_header("Via", "SIP/2.0/UDP c");
        assert!(ClientTransaction::start(&no_branch).is_err());
    }

    #[test]
    fn server_invite_lifecycle() {
        let request = invite();
        let mut tx = ServerTransaction::start(&request).unwrap();
        assert!(tx.matches(&request));
        tx.on_send_response(180).unwrap();
        assert_eq!(tx.state(), ServerState::Proceeding);
        tx.on_send_response(200).unwrap();
        assert_eq!(tx.state(), ServerState::Completed);
        assert!(tx.on_send_response(200).is_err());
        tx.on_ack().unwrap();
        assert_eq!(tx.state(), ServerState::Terminated);
        assert!(tx.on_ack().is_err());
    }

    #[test]
    fn server_non_invite_terminates_on_final() {
        let request = SipMessage::request(SipMethod::Message, "sip:b@x")
            .with_header("Via", "SIP/2.0/UDP c;branch=z9hG4bKmsg");
        let mut tx = ServerTransaction::start(&request).unwrap();
        tx.on_send_response(200).unwrap();
        assert_eq!(tx.state(), ServerState::Terminated);
        assert!(tx.on_ack().is_err());
    }
}
