//! A stateless forwarding proxy.
//!
//! Routes requests by consulting the registrar's location service,
//! prepending its own Via and decrementing Max-Forwards; routes
//! responses by popping the top Via. Requests addressed to the
//! conference domain are handed to the gateway instead (the caller
//! decides by URI), so the proxy itself stays community-agnostic.

use mmcs_util::time::SimTime;

use crate::message::{SipMessage, StartLine};
use crate::registrar::Registrar;

/// What the proxy decided to do with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyAction {
    /// Forward this request to the given contact URI.
    ForwardRequest {
        /// Next-hop contact.
        target: String,
        /// The rewritten request.
        request: SipMessage,
    },
    /// Send this response back toward the given Via host.
    ForwardResponse {
        /// The Via value identifying the previous hop.
        via: String,
        /// The rewritten response.
        response: SipMessage,
    },
    /// Reply with this response directly (errors).
    Respond(SipMessage),
}

/// The proxy. Stateless: every message is handled independently.
#[derive(Debug)]
pub struct Proxy {
    /// This proxy's Via host value.
    via_host: String,
}

impl Proxy {
    /// Creates a proxy announcing itself as `via_host` in Via headers.
    pub fn new(via_host: impl Into<String>) -> Self {
        Self {
            via_host: via_host.into(),
        }
    }

    /// Handles a request: looks the target up in the registrar and
    /// rewrites the request for forwarding.
    pub fn handle_request(
        &self,
        request: &SipMessage,
        registrar: &Registrar,
        now: SimTime,
    ) -> ProxyAction {
        let StartLine::Request { uri, .. } = &request.start else {
            return ProxyAction::Respond(SipMessage::response_to(
                request,
                400,
                "Expected a request",
            ));
        };
        // Loop protection.
        let max_forwards: i64 = request
            .header("Max-Forwards")
            .and_then(|m| m.parse().ok())
            .unwrap_or(70);
        if max_forwards <= 0 {
            return ProxyAction::Respond(SipMessage::response_to(
                request,
                483,
                "Too Many Hops",
            ));
        }
        let bindings = registrar.lookup(uri, now);
        let Some(binding) = bindings.first() else {
            return ProxyAction::Respond(SipMessage::response_to(
                request,
                404,
                "Not Found",
            ));
        };
        let mut forwarded = request.clone();
        forwarded.set_header("Max-Forwards", (max_forwards - 1).to_string());
        // Prepend our Via.
        forwarded.headers.insert(
            0,
            (
                "Via".to_owned(),
                format!("SIP/2.0/UDP {};branch=z9hG4bK-{}", self.via_host, now.as_nanos()),
            ),
        );
        ProxyAction::ForwardRequest {
            target: binding.contact.clone(),
            request: forwarded,
        }
    }

    /// Handles a response: pops our Via and forwards to the next one.
    pub fn handle_response(&self, response: &SipMessage) -> ProxyAction {
        let vias: Vec<String> = response.header_all("Via").map(str::to_owned).collect();
        let Some(top) = vias.first() else {
            return ProxyAction::Respond(SipMessage::response_to(
                response,
                400,
                "Response without Via",
            ));
        };
        if !top.contains(&self.via_host) {
            // Not ours: malformed routing.
            return ProxyAction::Respond(SipMessage::response_to(
                response,
                400,
                "Top Via is not this proxy",
            ));
        }
        let Some(next) = vias.get(1).cloned() else {
            return ProxyAction::Respond(SipMessage::response_to(
                response,
                400,
                "No downstream Via",
            ));
        };
        let mut forwarded = response.clone();
        // Remove the first Via occurrence.
        let mut removed = false;
        forwarded.headers.retain(|(name, value)| {
            if !removed && name.eq_ignore_ascii_case("Via") && value == top {
                removed = true;
                false
            } else {
                true
            }
        });
        ProxyAction::ForwardResponse {
            via: next,
            response: forwarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SipMethod;

    fn registered() -> Registrar {
        let mut registrar = Registrar::new();
        let register = SipMessage::request(SipMethod::Register, "sip:mmcs.example")
            .with_header("Via", "SIP/2.0/UDP bobs-pc;branch=z9hG4bKr")
            .with_header("To", "<sip:bob@mmcs.example>")
            .with_header("From", "<sip:bob@mmcs.example>;tag=1")
            .with_header("Call-ID", "r1")
            .with_header("CSeq", "1 REGISTER")
            .with_header("Contact", "<sip:bob@192.0.2.4>");
        registrar.handle_register(&register, SimTime::ZERO);
        registrar
    }

    fn invite_to_bob() -> SipMessage {
        SipMessage::request(SipMethod::Invite, "sip:bob@mmcs.example")
            .with_header("Via", "SIP/2.0/UDP alices-pc;branch=z9hG4bKa")
            .with_header("Max-Forwards", "70")
            .with_header("From", "<sip:alice@x>;tag=2")
            .with_header("To", "<sip:bob@mmcs.example>")
            .with_header("Call-ID", "c1")
            .with_header("CSeq", "1 INVITE")
    }

    #[test]
    fn request_is_forwarded_to_registered_contact() {
        let proxy = Proxy::new("proxy.mmcs.example");
        let action = proxy.handle_request(&invite_to_bob(), &registered(), SimTime::ZERO);
        let ProxyAction::ForwardRequest { target, request } = action else {
            panic!("expected forward, got {action:?}");
        };
        assert_eq!(target, "sip:bob@192.0.2.4");
        assert_eq!(request.header("Max-Forwards"), Some("69"));
        // Our Via is on top, original below.
        let vias: Vec<&str> = request.header_all("Via").collect();
        assert_eq!(vias.len(), 2);
        assert!(vias[0].contains("proxy.mmcs.example"));
        assert!(vias[1].contains("alices-pc"));
    }

    #[test]
    fn unknown_target_404s() {
        let proxy = Proxy::new("proxy");
        let mut request = invite_to_bob();
        request.start = StartLine::Request {
            method: SipMethod::Invite,
            uri: "sip:nobody@mmcs.example".into(),
        };
        let action = proxy.handle_request(&request, &registered(), SimTime::ZERO);
        assert!(matches!(
            action,
            ProxyAction::Respond(r) if r.status() == Some(404)
        ));
    }

    #[test]
    fn hop_limit_enforced() {
        let proxy = Proxy::new("proxy");
        let mut request = invite_to_bob();
        request.set_header("Max-Forwards", "0");
        let action = proxy.handle_request(&request, &registered(), SimTime::ZERO);
        assert!(matches!(
            action,
            ProxyAction::Respond(r) if r.status() == Some(483)
        ));
    }

    #[test]
    fn response_pops_our_via() {
        let proxy = Proxy::new("proxy.mmcs.example");
        let registrar = registered();
        let ProxyAction::ForwardRequest { request, .. } =
            proxy.handle_request(&invite_to_bob(), &registrar, SimTime::ZERO)
        else {
            panic!("expected forward");
        };
        let response = SipMessage::response_to(&request, 200, "OK");
        let action = proxy.handle_response(&response);
        let ProxyAction::ForwardResponse { via, response } = action else {
            panic!("expected response forward, got {action:?}");
        };
        assert!(via.contains("alices-pc"));
        assert_eq!(response.header_all("Via").count(), 1);
    }

    #[test]
    fn response_with_foreign_top_via_rejected() {
        let proxy = Proxy::new("proxy-a");
        let response = SipMessage {
            start: StartLine::Response {
                code: 200,
                reason: "OK".into(),
            },
            headers: vec![("Via".into(), "SIP/2.0/UDP proxy-b;branch=x".into())],
            body: String::new(),
        };
        assert!(matches!(
            proxy.handle_response(&response),
            ProxyAction::Respond(r) if r.status() == Some(400)
        ));
    }
}
