//! SUBSCRIBE/NOTIFY presence (RFC 3265/3856 subset).
//!
//! The SIP side of the IM service: watchers subscribe to a presentity's
//! `presence` event package; status changes fan NOTIFY requests out to
//! the live subscriptions. The ad-hoc collaboration flow ("is my
//! colleague online? pull them into a meeting") rides on this.

use std::collections::HashMap;

use mmcs_util::time::{SimDuration, SimTime};

use crate::message::{extract_uri, SipMessage, SipMethod};

/// A presentity's published status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Presence {
    /// Available, with an optional note.
    Open(String),
    /// Unavailable.
    Closed,
}

impl Presence {
    /// Renders the minimal PIDF-like XML body carried in NOTIFYs.
    pub fn to_body(&self, presentity: &str) -> String {
        let (status, note) = match self {
            Presence::Open(note) => ("open", note.as_str()),
            Presence::Closed => ("closed", ""),
        };
        format!(
            "<presence entity=\"{presentity}\"><status>{status}</status><note>{note}</note></presence>"
        )
    }
}

#[derive(Debug, Clone)]
struct Subscription {
    watcher: String,
    expires_at: SimTime,
}

/// The presence server.
#[derive(Debug, Default)]
pub struct PresenceServer {
    /// presentity -> watchers
    subscriptions: HashMap<String, Vec<Subscription>>,
    status: HashMap<String, Presence>,
}

impl PresenceServer {
    /// Creates an empty presence server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles a SUBSCRIBE; returns the response plus an immediate NOTIFY
    /// with the current state (as RFC 3265 requires).
    pub fn handle_subscribe(&mut self, request: &SipMessage, now: SimTime) -> Vec<SipMessage> {
        if request.method() != Some(SipMethod::Subscribe) {
            return vec![SipMessage::response_to(request, 405, "Method Not Allowed")];
        }
        if request.header("Event").map(str::trim) != Some("presence") {
            return vec![SipMessage::response_to(request, 489, "Bad Event")];
        }
        let Some(to) = request.header("To") else {
            return vec![SipMessage::response_to(request, 400, "Missing To")];
        };
        let Some(from) = request.header("From") else {
            return vec![SipMessage::response_to(request, 400, "Missing From")];
        };
        let presentity = extract_uri(to).to_owned();
        let watcher = extract_uri(from).to_owned();
        let expires_secs: u64 = request
            .header("Expires")
            .and_then(|e| e.parse().ok())
            .unwrap_or(3600);

        let list = self.subscriptions.entry(presentity.clone()).or_default();
        if expires_secs == 0 {
            list.retain(|s| s.watcher != watcher);
        } else {
            let expires_at = now + SimDuration::from_secs(expires_secs);
            if let Some(existing) = list.iter_mut().find(|s| s.watcher == watcher) {
                existing.expires_at = expires_at;
            } else {
                list.push(Subscription {
                    watcher: watcher.clone(),
                    expires_at,
                });
            }
        }

        let ok = SipMessage::response_to(request, 200, "OK")
            .with_header("Expires", expires_secs.to_string());
        let current = self
            .status
            .get(&presentity)
            .cloned()
            .unwrap_or(Presence::Closed);
        let notify = self.notify(&presentity, &watcher, &current);
        vec![ok, notify]
    }

    /// Publishes a status change; returns the NOTIFYs to send to live
    /// watchers.
    pub fn publish(&mut self, presentity: &str, status: Presence, now: SimTime) -> Vec<SipMessage> {
        self.status.insert(presentity.to_owned(), status.clone());
        let Some(list) = self.subscriptions.get_mut(presentity) else {
            return Vec::new();
        };
        list.retain(|s| s.expires_at > now);
        list.iter()
            .map(|s| {
                SipMessage::request(SipMethod::Notify, s.watcher.clone())
                    .with_header("Via", "SIP/2.0/UDP presence;branch=z9hG4bK-p")
                    .with_header("From", format!("<{presentity}>"))
                    .with_header("To", format!("<{}>", s.watcher))
                    .with_header("Event", "presence")
                    .with_body("application/pidf+xml", status.to_body(presentity))
            })
            .collect()
    }

    /// Current status of a presentity (default closed).
    pub fn status_of(&self, presentity: &str) -> Presence {
        self.status
            .get(presentity)
            .cloned()
            .unwrap_or(Presence::Closed)
    }

    /// Live watcher count for a presentity.
    pub fn watcher_count(&self, presentity: &str, now: SimTime) -> usize {
        self.subscriptions
            .get(presentity)
            .map(|l| l.iter().filter(|s| s.expires_at > now).count())
            .unwrap_or(0)
    }

    fn notify(&self, presentity: &str, watcher: &str, status: &Presence) -> SipMessage {
        SipMessage::request(SipMethod::Notify, watcher.to_owned())
            .with_header("Via", "SIP/2.0/UDP presence;branch=z9hG4bK-p")
            .with_header("From", format!("<{presentity}>"))
            .with_header("To", format!("<{watcher}>"))
            .with_header("Event", "presence")
            .with_body("application/pidf+xml", status.to_body(presentity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subscribe(presentity: &str, watcher: &str, expires: u64) -> SipMessage {
        SipMessage::request(SipMethod::Subscribe, presentity)
            .with_header("Via", "SIP/2.0/UDP w;branch=z9hG4bKs")
            .with_header("From", format!("<{watcher}>;tag=9"))
            .with_header("To", format!("<{presentity}>"))
            .with_header("Call-ID", "sub-1")
            .with_header("CSeq", "1 SUBSCRIBE")
            .with_header("Event", "presence")
            .with_header("Expires", expires.to_string())
    }

    #[test]
    fn subscribe_gets_ok_and_initial_notify() {
        let mut server = PresenceServer::new();
        let replies = server.handle_subscribe(
            &subscribe("sip:alice@x", "sip:bob@x", 600),
            SimTime::ZERO,
        );
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].status(), Some(200));
        assert_eq!(replies[1].method(), Some(SipMethod::Notify));
        assert!(replies[1].body.contains("closed")); // no status published yet
        assert_eq!(server.watcher_count("sip:alice@x", SimTime::ZERO), 1);
    }

    #[test]
    fn publish_notifies_watchers() {
        let mut server = PresenceServer::new();
        server.handle_subscribe(&subscribe("sip:alice@x", "sip:bob@x", 600), SimTime::ZERO);
        server.handle_subscribe(
            &{
                let mut s = subscribe("sip:alice@x", "sip:carol@x", 600);
                s.set_header("From", "<sip:carol@x>;tag=2");
                s
            },
            SimTime::ZERO,
        );
        let notifies = server.publish(
            "sip:alice@x",
            Presence::Open("in the lab".into()),
            SimTime::ZERO,
        );
        assert_eq!(notifies.len(), 2);
        assert!(notifies[0].body.contains("open"));
        assert!(notifies[0].body.contains("in the lab"));
        assert_eq!(server.status_of("sip:alice@x"), Presence::Open("in the lab".into()));
    }

    #[test]
    fn expired_subscriptions_get_no_notify() {
        let mut server = PresenceServer::new();
        server.handle_subscribe(&subscribe("sip:a@x", "sip:b@x", 10), SimTime::ZERO);
        let later = SimTime::ZERO + SimDuration::from_secs(11);
        let notifies = server.publish("sip:a@x", Presence::Closed, later);
        assert!(notifies.is_empty());
        assert_eq!(server.watcher_count("sip:a@x", later), 0);
    }

    #[test]
    fn unsubscribe_with_expires_zero() {
        let mut server = PresenceServer::new();
        server.handle_subscribe(&subscribe("sip:a@x", "sip:b@x", 600), SimTime::ZERO);
        server.handle_subscribe(&subscribe("sip:a@x", "sip:b@x", 0), SimTime::ZERO);
        assert_eq!(server.watcher_count("sip:a@x", SimTime::ZERO), 0);
    }

    #[test]
    fn bad_event_package_rejected() {
        let mut server = PresenceServer::new();
        let mut request = subscribe("sip:a@x", "sip:b@x", 600);
        request.set_header("Event", "dialog");
        let replies = server.handle_subscribe(&request, SimTime::ZERO);
        assert_eq!(replies[0].status(), Some(489));
    }

    #[test]
    fn resubscribe_refreshes_not_duplicates() {
        let mut server = PresenceServer::new();
        server.handle_subscribe(&subscribe("sip:a@x", "sip:b@x", 600), SimTime::ZERO);
        server.handle_subscribe(&subscribe("sip:a@x", "sip:b@x", 600), SimTime::ZERO);
        assert_eq!(server.watcher_count("sip:a@x", SimTime::ZERO), 1);
    }
}
