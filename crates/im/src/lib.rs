//! The instant-messaging substrate.
//!
//! Global-MMCS "has SIP proxies and Jabber servers to provide Instant
//! Messaging service" (§2.1), and the ad-hoc collaboration mode rides on
//! it: presence shows who is around, chat gathers the group, and one
//! command turns the conversation into an A/V meeting. This crate is
//! the Jabber-flavoured side (the SIP MESSAGE path lives in `mmcs-sip`):
//!
//! * [`stanza`] — message/presence/iq stanzas with an XML codec.
//! * [`roster`] — contact lists with subscription states.
//! * [`server`] — the IM server: rosters, presence fan-out, one-to-one
//!   chat and multi-user chat rooms.
//! * [`adhoc`] — the ad-hoc bootstrap: room conversation → XGSP session
//!   (create + invite every occupant).

pub mod adhoc;
pub mod roster;
pub mod server;
pub mod stanza;

pub use server::ImServer;
pub use stanza::Stanza;
