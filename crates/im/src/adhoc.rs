//! Ad-hoc meeting bootstrap: chat room → XGSP session.
//!
//! "Ad-hoc needs Instant Messenger to provide chat and remote presence
//! services" (§2.1). The bootstrap takes a room's occupants, creates an
//! ad-hoc XGSP session named after the room, joins the initiator, and
//! produces invites for everyone else.

use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::media::{MediaDescription, MediaKind};
use mmcs_xgsp::message::{SessionMode, XgspMessage};
use mmcs_xgsp::server::{ServerOutput, SessionServer};

use crate::server::ImServer;
use crate::stanza::Stanza;

/// The result of escalating a room to a meeting.
#[derive(Debug, Clone, PartialEq)]
pub struct Escalation {
    /// The new session.
    pub session: SessionId,
    /// Chat invitations to deliver to the other occupants.
    pub invites: Vec<Stanza>,
}

/// Errors from the bootstrap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscalateError {
    /// The initiator is not in the room.
    NotInRoom,
    /// Session creation failed on the XGSP side.
    CreateFailed,
}

impl std::fmt::Display for EscalateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscalateError::NotInRoom => write!(f, "initiator is not a room occupant"),
            EscalateError::CreateFailed => write!(f, "xgsp session creation failed"),
        }
    }
}

impl std::error::Error for EscalateError {}

/// Escalates `room` into an ad-hoc A/V session on `server`, initiated by
/// `initiator` (who is joined immediately with `terminal`).
///
/// # Errors
///
/// [`EscalateError::NotInRoom`] when the initiator is not an occupant;
/// [`EscalateError::CreateFailed`] if the XGSP server refuses.
pub fn escalate_room(
    im: &ImServer,
    xgsp: &mut SessionServer,
    room: &str,
    initiator: &str,
    terminal: TerminalId,
) -> Result<Escalation, EscalateError> {
    let occupants = im.occupants(room);
    if !occupants.iter().any(|occupant| occupant == initiator) {
        return Err(EscalateError::NotInRoom);
    }
    let media = vec![
        MediaDescription::new(MediaKind::Audio, "PCMU"),
        MediaDescription::new(MediaKind::Video, "H263"),
    ];
    let outputs = xgsp.handle(
        Some(initiator),
        XgspMessage::CreateSession {
            name: format!("ad-hoc: {room}"),
            mode: SessionMode::AdHoc,
            media: media.clone(),
        },
    );
    let session = outputs
        .iter()
        .find_map(|output| match output {
            ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => Some(*session),
            _ => None,
        })
        .ok_or(EscalateError::CreateFailed)?;
    let join_outputs = xgsp.handle(
        Some(initiator),
        XgspMessage::Join {
            session,
            user: initiator.to_owned(),
            terminal,
            media,
        },
    );
    if !join_outputs
        .iter()
        .any(|o| matches!(o, ServerOutput::Reply(XgspMessage::JoinAck { .. })))
    {
        return Err(EscalateError::CreateFailed);
    }
    let invites = occupants
        .iter()
        .filter(|occupant| *occupant != initiator)
        .map(|occupant| Stanza::Message {
            from: initiator.to_owned(),
            to: occupant.clone(),
            body: format!(
                "join me in conference session-{} (from {room})",
                session.value()
            ),
        })
        .collect();
    Ok(Escalation { session, invites })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stanza::Stanza;

    fn room_with(server: &mut ImServer, room: &str, users: &[&str]) {
        for user in users {
            server.handle(Stanza::Iq {
                from: (*user).into(),
                kind: "set".into(),
                query: "join-room".into(),
                arg: room.into(),
            });
        }
    }

    #[test]
    fn escalation_creates_session_and_invites_occupants() {
        let mut im = ImServer::new();
        let mut xgsp = SessionServer::new();
        room_with(&mut im, "planning", &["alice", "bob", "carol"]);
        let escalation = escalate_room(
            &im,
            &mut xgsp,
            "planning",
            "alice",
            TerminalId::from_raw(1),
        )
        .unwrap();
        assert_eq!(escalation.invites.len(), 2);
        assert!(escalation.invites.iter().all(|stanza| matches!(
            stanza,
            Stanza::Message { body, .. } if body.contains("join me in conference")
        )));
        let session = xgsp.session(escalation.session).unwrap();
        assert_eq!(session.member_count(), 1);
        assert_eq!(session.chair(), Some("alice"));
        // The session carries both media.
        assert_eq!(session.streams().len(), 2);
    }

    #[test]
    fn initiator_must_be_in_the_room() {
        let mut im = ImServer::new();
        let mut xgsp = SessionServer::new();
        room_with(&mut im, "planning", &["bob"]);
        let result = escalate_room(
            &im,
            &mut xgsp,
            "planning",
            "alice",
            TerminalId::from_raw(1),
        );
        assert_eq!(result, Err(EscalateError::NotInRoom));
        assert_eq!(xgsp.session_count(), 0);
    }

    #[test]
    fn solo_room_escalates_with_no_invites() {
        let mut im = ImServer::new();
        let mut xgsp = SessionServer::new();
        room_with(&mut im, "solo", &["alice"]);
        let escalation =
            escalate_room(&im, &mut xgsp, "solo", "alice", TerminalId::from_raw(1)).unwrap();
        assert!(escalation.invites.is_empty());
        assert_eq!(xgsp.session_count(), 1);
    }
}
