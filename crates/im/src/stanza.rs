//! Jabber-style stanzas: `<message/>`, `<presence/>`, `<iq/>`.

use core::fmt;

use mmcs_util::xml::Element;

/// Presence availability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Show {
    /// Online and available.
    Available,
    /// Away from keyboard.
    Away,
    /// Do not disturb.
    Dnd,
    /// Offline.
    Unavailable,
}

impl Show {
    fn as_str(&self) -> &'static str {
        match self {
            Show::Available => "available",
            Show::Away => "away",
            Show::Dnd => "dnd",
            Show::Unavailable => "unavailable",
        }
    }

    fn parse(s: &str) -> Option<Show> {
        Some(match s {
            "available" => Show::Available,
            "away" => Show::Away,
            "dnd" => Show::Dnd,
            "unavailable" => Show::Unavailable,
            _ => return None,
        })
    }
}

/// One stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stanza {
    /// A chat message (one-to-one or to a room).
    Message {
        /// Sender JID.
        from: String,
        /// Recipient JID (a user or a room).
        to: String,
        /// The text.
        body: String,
    },
    /// A presence update.
    Presence {
        /// Whose presence.
        from: String,
        /// Availability.
        show: Show,
        /// Free-text status.
        status: String,
    },
    /// An info/query request-or-response (used for room operations).
    Iq {
        /// Sender JID.
        from: String,
        /// `get`, `set` or `result`.
        kind: String,
        /// Query name (`join-room`, `leave-room`, `room-occupants`, …).
        query: String,
        /// Query argument.
        arg: String,
    },
}

impl Stanza {
    /// Renders the stanza as XML.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Renders as an element.
    pub fn to_element(&self) -> Element {
        match self {
            Stanza::Message { from, to, body } => Element::new("message")
                .with_attr("from", from)
                .with_attr("to", to)
                .with_child(Element::new("body").with_text(body)),
            Stanza::Presence { from, show, status } => Element::new("presence")
                .with_attr("from", from)
                .with_child(Element::new("show").with_text(show.as_str()))
                .with_child(Element::new("status").with_text(status)),
            Stanza::Iq {
                from,
                kind,
                query,
                arg,
            } => Element::new("iq")
                .with_attr("from", from)
                .with_attr("type", kind)
                .with_child(
                    Element::new("query")
                        .with_attr("name", query)
                        .with_text(arg),
                ),
        }
    }

    /// Parses a stanza from XML.
    ///
    /// # Errors
    ///
    /// Returns [`ParseStanzaError`] on malformed XML or unknown stanza
    /// shapes.
    pub fn parse(xml: &str) -> Result<Stanza, ParseStanzaError> {
        let root = Element::parse(xml).map_err(|e| ParseStanzaError::Xml(e.to_string()))?;
        Self::from_element(&root)
    }

    /// Parses from an element.
    ///
    /// # Errors
    ///
    /// As for [`Stanza::parse`].
    pub fn from_element(root: &Element) -> Result<Stanza, ParseStanzaError> {
        let from = root
            .attr("from")
            .ok_or(ParseStanzaError::Missing("from"))?
            .to_owned();
        match root.name() {
            "message" => Ok(Stanza::Message {
                from,
                to: root
                    .attr("to")
                    .ok_or(ParseStanzaError::Missing("to"))?
                    .to_owned(),
                body: root
                    .child_text("body")
                    .ok_or(ParseStanzaError::Missing("body"))?,
            }),
            "presence" => Ok(Stanza::Presence {
                from,
                show: root
                    .child_text("show")
                    .and_then(|s| Show::parse(&s))
                    .ok_or(ParseStanzaError::Missing("show"))?,
                status: root.child_text("status").unwrap_or_default(),
            }),
            "iq" => {
                let query = root
                    .child("query")
                    .ok_or(ParseStanzaError::Missing("query"))?;
                Ok(Stanza::Iq {
                    from,
                    kind: root
                        .attr("type")
                        .ok_or(ParseStanzaError::Missing("type"))?
                        .to_owned(),
                    query: query
                        .attr("name")
                        .ok_or(ParseStanzaError::Missing("query name"))?
                        .to_owned(),
                    arg: query.text(),
                })
            }
            other => Err(ParseStanzaError::UnknownStanza(other.to_owned())),
        }
    }
}

impl fmt::Display for Stanza {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Error parsing a stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStanzaError {
    /// Malformed XML.
    Xml(String),
    /// Not message/presence/iq.
    UnknownStanza(String),
    /// A required field was absent.
    Missing(&'static str),
}

impl fmt::Display for ParseStanzaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseStanzaError::Xml(e) => write!(f, "malformed xml: {e}"),
            ParseStanzaError::UnknownStanza(n) => write!(f, "unknown stanza <{n}>"),
            ParseStanzaError::Missing(what) => write!(f, "missing stanza field {what:?}"),
        }
    }
}

impl std::error::Error for ParseStanzaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stanzas_round_trip() {
        let cases = vec![
            Stanza::Message {
                from: "alice@mmcs".into(),
                to: "room-7@conference.mmcs".into(),
                body: "shall we start? <now>".into(),
            },
            Stanza::Presence {
                from: "bob@mmcs".into(),
                show: Show::Away,
                status: "lunch".into(),
            },
            Stanza::Presence {
                from: "carol@mmcs".into(),
                show: Show::Unavailable,
                status: String::new(),
            },
            Stanza::Iq {
                from: "alice@mmcs".into(),
                kind: "set".into(),
                query: "join-room".into(),
                arg: "room-7".into(),
            },
        ];
        for stanza in cases {
            let xml = stanza.to_xml();
            assert_eq!(Stanza::parse(&xml).unwrap(), stanza, "{xml}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Stanza::parse("<carrier-pigeon from='x'/>"),
            Err(ParseStanzaError::UnknownStanza(_))
        ));
        assert!(matches!(
            Stanza::parse("<message to='y'><body>hi</body></message>"),
            Err(ParseStanzaError::Missing("from"))
        ));
        assert!(matches!(
            Stanza::parse("<message from='x' to='y'/>"),
            Err(ParseStanzaError::Missing("body"))
        ));
        assert!(matches!(
            Stanza::parse("<presence from='x'/>"),
            Err(ParseStanzaError::Missing("show"))
        ));
        assert!(matches!(
            Stanza::parse("not xml"),
            Err(ParseStanzaError::Xml(_))
        ));
    }
}
