//! Contact rosters with subscription states.

use std::collections::BTreeMap;

/// Subscription state between a user and a contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscription {
    /// We asked; they have not answered.
    Pending,
    /// Mutual: both see each other's presence.
    Both,
}

/// One user's roster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Roster {
    contacts: BTreeMap<String, Subscription>,
}

impl Roster {
    /// Creates an empty roster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an outgoing subscription request.
    pub fn request(&mut self, contact: impl Into<String>) {
        self.contacts
            .entry(contact.into())
            .or_insert(Subscription::Pending);
    }

    /// Marks a subscription accepted (mutual).
    pub fn accept(&mut self, contact: &str) -> bool {
        match self.contacts.get_mut(contact) {
            Some(state) => {
                *state = Subscription::Both;
                true
            }
            None => false,
        }
    }

    /// Removes a contact.
    pub fn remove(&mut self, contact: &str) -> bool {
        self.contacts.remove(contact).is_some()
    }

    /// The subscription state with a contact.
    pub fn subscription(&self, contact: &str) -> Option<Subscription> {
        self.contacts.get(contact).copied()
    }

    /// Contacts with mutual subscription (presence-visible), sorted.
    pub fn visible_contacts(&self) -> Vec<&str> {
        self.contacts
            .iter()
            .filter(|(_, s)| **s == Subscription::Both)
            .map(|(c, _)| c.as_str())
            .collect()
    }

    /// All contacts, sorted.
    pub fn contacts(&self) -> Vec<&str> {
        self.contacts.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accept_remove_lifecycle() {
        let mut roster = Roster::new();
        roster.request("bob@mmcs");
        assert_eq!(roster.subscription("bob@mmcs"), Some(Subscription::Pending));
        assert!(roster.visible_contacts().is_empty());
        assert!(roster.accept("bob@mmcs"));
        assert_eq!(roster.visible_contacts(), vec!["bob@mmcs"]);
        assert!(roster.remove("bob@mmcs"));
        assert!(!roster.remove("bob@mmcs"));
        assert!(!roster.accept("bob@mmcs"));
    }

    #[test]
    fn duplicate_request_keeps_state() {
        let mut roster = Roster::new();
        roster.request("bob");
        roster.accept("bob");
        roster.request("bob"); // must not downgrade Both -> Pending
        assert_eq!(roster.subscription("bob"), Some(Subscription::Both));
    }

    #[test]
    fn contacts_are_sorted() {
        let mut roster = Roster::new();
        roster.request("zed");
        roster.request("alice");
        assert_eq!(roster.contacts(), vec!["alice", "zed"]);
    }
}
