//! The IM server: presence fan-out, chat, multi-user rooms.
//!
//! Sans-IO: feeding a [`Stanza`] returns the stanzas to deliver, each
//! tagged with its recipient JID.

use std::collections::{BTreeMap, HashMap};

use crate::roster::Roster;
use crate::stanza::{Show, Stanza};

/// A stanza addressed to a user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Recipient JID.
    pub to: String,
    /// The stanza.
    pub stanza: Stanza,
}

/// The IM server. See the [module docs](self).
#[derive(Debug, Default)]
pub struct ImServer {
    rosters: HashMap<String, Roster>,
    presence: HashMap<String, (Show, String)>,
    /// room name -> occupants (sorted for deterministic fan-out).
    rooms: BTreeMap<String, Vec<String>>,
}

impl ImServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to a user's roster (created on first touch).
    pub fn roster_mut(&mut self, user: &str) -> &mut Roster {
        self.rosters.entry(user.to_owned()).or_default()
    }

    /// A user's roster, if they have one.
    pub fn roster(&self, user: &str) -> Option<&Roster> {
        self.rosters.get(user)
    }

    /// Current presence of a user (unavailable by default).
    pub fn presence_of(&self, user: &str) -> Show {
        self.presence
            .get(user)
            .map(|(show, _)| show.clone())
            .unwrap_or(Show::Unavailable)
    }

    /// Occupants of a room (empty for unknown rooms).
    pub fn occupants(&self, room: &str) -> &[String] {
        self.rooms.get(room).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Handles one inbound stanza.
    pub fn handle(&mut self, stanza: Stanza) -> Vec<Outgoing> {
        match stanza {
            Stanza::Presence { from, show, status } => {
                self.presence
                    .insert(from.clone(), (show.clone(), status.clone()));
                // Fan out to everyone whose roster mutually includes us.
                let mut outgoing = Vec::new();
                let mut watchers: Vec<&String> = self
                    .rosters
                    .iter()
                    .filter(|(owner, roster)| {
                        **owner != from
                            && roster
                                .subscription(&from)
                                .is_some_and(|s| s == crate::roster::Subscription::Both)
                    })
                    .map(|(owner, _)| owner)
                    .collect();
                watchers.sort();
                for watcher in watchers {
                    outgoing.push(Outgoing {
                        to: watcher.clone(),
                        stanza: Stanza::Presence {
                            from: from.clone(),
                            show: show.clone(),
                            status: status.clone(),
                        },
                    });
                }
                outgoing
            }
            Stanza::Message { from, to, body } => {
                if let Some(occupants) = self.rooms.get(&to) {
                    // Room chat: relay to every other occupant, rewriting
                    // the sender as room/nick.
                    occupants
                        .iter()
                        .filter(|occupant| **occupant != from)
                        .map(|occupant| Outgoing {
                            to: occupant.clone(),
                            stanza: Stanza::Message {
                                from: format!("{to}/{from}"),
                                to: occupant.clone(),
                                body: body.clone(),
                            },
                        })
                        .collect()
                } else {
                    // Direct chat.
                    vec![Outgoing {
                        to: to.clone(),
                        stanza: Stanza::Message { from, to, body },
                    }]
                }
            }
            Stanza::Iq {
                from,
                kind,
                query,
                arg,
            } => self.handle_iq(from, kind, query, arg),
        }
    }

    fn handle_iq(
        &mut self,
        from: String,
        kind: String,
        query: String,
        arg: String,
    ) -> Vec<Outgoing> {
        let reply = |arg: String| Outgoing {
            to: from.clone(),
            stanza: Stanza::Iq {
                from: "server".into(),
                kind: "result".into(),
                query: query.clone(),
                arg,
            },
        };
        match (kind.as_str(), query.as_str()) {
            ("set", "join-room") => {
                let occupants = self.rooms.entry(arg.clone()).or_default();
                let mut outgoing = Vec::new();
                if !occupants.contains(&from) {
                    for occupant in occupants.iter() {
                        outgoing.push(Outgoing {
                            to: occupant.clone(),
                            stanza: Stanza::Presence {
                                from: format!("{arg}/{from}"),
                                show: Show::Available,
                                status: "joined".into(),
                            },
                        });
                    }
                    occupants.push(from.clone());
                    occupants.sort();
                }
                outgoing.push(reply("ok".into()));
                outgoing
            }
            ("set", "leave-room") => {
                let mut outgoing = Vec::new();
                if let Some(occupants) = self.rooms.get_mut(&arg) {
                    occupants.retain(|occupant| *occupant != from);
                    for occupant in occupants.iter() {
                        outgoing.push(Outgoing {
                            to: occupant.clone(),
                            stanza: Stanza::Presence {
                                from: format!("{arg}/{from}"),
                                show: Show::Unavailable,
                                status: "left".into(),
                            },
                        });
                    }
                    if occupants.is_empty() {
                        self.rooms.remove(&arg);
                    }
                }
                outgoing.push(reply("ok".into()));
                outgoing
            }
            ("get", "room-occupants") => {
                let list = self
                    .rooms
                    .get(&arg)
                    .map(|occupants| occupants.join(","))
                    .unwrap_or_default();
                vec![reply(list)]
            }
            _ => vec![reply(format!("error: unknown query {query}"))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(server: &mut ImServer, user: &str, room: &str) {
        server.handle(Stanza::Iq {
            from: user.into(),
            kind: "set".into(),
            query: "join-room".into(),
            arg: room.into(),
        });
    }

    #[test]
    fn direct_message_is_relayed() {
        let mut server = ImServer::new();
        let outgoing = server.handle(Stanza::Message {
            from: "alice".into(),
            to: "bob".into(),
            body: "hi".into(),
        });
        assert_eq!(outgoing.len(), 1);
        assert_eq!(outgoing[0].to, "bob");
    }

    #[test]
    fn room_chat_reaches_other_occupants_with_room_nick() {
        let mut server = ImServer::new();
        join(&mut server, "alice", "room-7");
        join(&mut server, "bob", "room-7");
        join(&mut server, "carol", "room-7");
        let outgoing = server.handle(Stanza::Message {
            from: "alice".into(),
            to: "room-7".into(),
            body: "shall we meet?".into(),
        });
        let recipients: Vec<&str> = outgoing.iter().map(|o| o.to.as_str()).collect();
        assert_eq!(recipients, vec!["bob", "carol"]);
        assert!(matches!(
            &outgoing[0].stanza,
            Stanza::Message { from, .. } if from == "room-7/alice"
        ));
    }

    #[test]
    fn join_announces_to_existing_occupants() {
        let mut server = ImServer::new();
        join(&mut server, "alice", "room-1");
        let outgoing = server.handle(Stanza::Iq {
            from: "bob".into(),
            kind: "set".into(),
            query: "join-room".into(),
            arg: "room-1".into(),
        });
        // Presence to alice + iq result to bob.
        assert_eq!(outgoing.len(), 2);
        assert_eq!(outgoing[0].to, "alice");
        assert_eq!(server.occupants("room-1"), ["alice", "bob"]);
        // Double join is idempotent.
        join(&mut server, "bob", "room-1");
        assert_eq!(server.occupants("room-1").len(), 2);
    }

    #[test]
    fn leave_empties_and_removes_room() {
        let mut server = ImServer::new();
        join(&mut server, "alice", "room-1");
        join(&mut server, "bob", "room-1");
        server.handle(Stanza::Iq {
            from: "alice".into(),
            kind: "set".into(),
            query: "leave-room".into(),
            arg: "room-1".into(),
        });
        assert_eq!(server.occupants("room-1"), ["bob"]);
        server.handle(Stanza::Iq {
            from: "bob".into(),
            kind: "set".into(),
            query: "leave-room".into(),
            arg: "room-1".into(),
        });
        assert!(server.occupants("room-1").is_empty());
    }

    #[test]
    fn presence_fans_out_to_mutual_contacts_only() {
        let mut server = ImServer::new();
        server.roster_mut("bob").request("alice");
        server.roster_mut("bob").accept("alice");
        server.roster_mut("carol").request("alice"); // pending only
        let outgoing = server.handle(Stanza::Presence {
            from: "alice".into(),
            show: Show::Available,
            status: "here".into(),
        });
        assert_eq!(outgoing.len(), 1);
        assert_eq!(outgoing[0].to, "bob");
        assert_eq!(server.presence_of("alice"), Show::Available);
        assert_eq!(server.presence_of("nobody"), Show::Unavailable);
    }

    #[test]
    fn room_occupants_query() {
        let mut server = ImServer::new();
        join(&mut server, "alice", "r");
        join(&mut server, "bob", "r");
        let outgoing = server.handle(Stanza::Iq {
            from: "carol".into(),
            kind: "get".into(),
            query: "room-occupants".into(),
            arg: "r".into(),
        });
        assert!(matches!(
            &outgoing[0].stanza,
            Stanza::Iq { arg, .. } if arg == "alice,bob"
        ));
    }

    #[test]
    fn unknown_iq_yields_error_result() {
        let mut server = ImServer::new();
        let outgoing = server.handle(Stanza::Iq {
            from: "x".into(),
            kind: "set".into(),
            query: "levitate".into(),
            arg: String::new(),
        });
        assert!(matches!(
            &outgoing[0].stanza,
            Stanza::Iq { arg, .. } if arg.starts_with("error")
        ));
    }
}
