//! Workspace facade for the Global-MMCS reproduction.
//!
//! Re-exports every crate in the workspace so the examples and integration
//! tests under the repository root can use a single dependency. Library
//! users should depend on the individual crates (most importantly
//! [`global_mmcs`]) directly.

pub use global_mmcs;
pub use mmcs_admire as admire;
pub use mmcs_broker as broker;
pub use mmcs_directory as directory;
pub use mmcs_h323 as h323;
pub use mmcs_im as im;
pub use mmcs_jmf as jmf;
pub use mmcs_rtp as rtp;
pub use mmcs_sim as sim;
pub use mmcs_sip as sip;
pub use mmcs_soap as soap;
pub use mmcs_streaming as streaming;
pub use mmcs_telemetry as telemetry;
pub use mmcs_util as util;
pub use mmcs_xgsp as xgsp;
