//! The broker as a real concurrent bus: four publisher threads fan
//! events into one subscriber over the threaded NaradaBrokering-style
//! runtime (crossbeam channels, OS threads — no simulation).
//!
//! Run with: `cargo run --example threaded_broker`

use std::time::Duration;

use bytes::Bytes;
use mmcs::broker::threaded::ThreadedBroker;
use mmcs::broker::topic::{Topic, TopicFilter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = std::sync::Arc::new(ThreadedBroker::spawn());

    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("metrics/#")?);

    let mut handles = Vec::new();
    for worker in 0..4 {
        let broker = std::sync::Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            for i in 0..250 {
                publisher.publish(
                    Topic::parse(&format!("metrics/worker-{worker}")).expect("valid"),
                    Bytes::from(format!("sample {i}").into_bytes()),
                );
            }
        }));
    }
    for handle in handles {
        handle.join().expect("worker");
    }

    let mut received = 0;
    while subscriber.recv_timeout(Duration::from_millis(500)).is_some() {
        received += 1;
        if received == 1000 {
            break;
        }
    }
    println!("subscriber received {received}/1000 events from 4 threads");
    assert_eq!(received, 1000);
    broker.shutdown();
    println!("threaded broker OK");
    Ok(())
}
