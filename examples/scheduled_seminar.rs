//! Scheduled mode end to end: reserve a virtual room over the web
//! services, let the calendar open the meeting at its start time, join
//! participants over SOAP, and stream/archive the seminar — the paper's
//! "formal and large scale collaborations" flow (§2.1).
//!
//! Run with: `cargo run --example scheduled_seminar`

use mmcs::global_mmcs::web::XgspWebServer;
use mmcs::soap::service::SoapClient;
use mmcs_util::time::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let web = XgspWebServer::new();
    let mut soap = web.soap_server();

    // 1. The organizer books the room for 10:00, one hour.
    let response = soap.handle(&SoapClient::request(
        "schedule",
        &[
            ("room", "auditorium"),
            ("organizer", "gcf"),
            ("title", "Global-MMCS seminar"),
            ("startSecs", "36000"), // 10:00
            ("durationSecs", "3600"),
            ("invitees", "wu,uyar,bulut,pallickara"),
        ],
    ));
    let reservation = SoapClient::decode_response("schedule", &response)?;
    println!("booked reservation {}", reservation[0].1);

    // 2. A conflicting booking is refused.
    let response = soap.handle(&SoapClient::request(
        "schedule",
        &[
            ("room", "auditorium"),
            ("organizer", "someone-else"),
            ("title", "clashing meeting"),
            ("startSecs", "37800"),
            ("durationSecs", "3600"),
        ],
    ));
    match SoapClient::decode_response("schedule", &response) {
        Err(fault) => println!("conflicting booking refused: {}", fault.reason),
        Ok(_) => panic!("conflict should have been refused"),
    }

    // 3. Nothing opens before time…
    assert!(web.open_due_meetings(SimTime::from_secs(35_999)).is_empty());
    // …and at 10:00 the calendar opens the session, chaired by gcf.
    let opened = web.open_due_meetings(SimTime::from_secs(36_000));
    let session = opened[0];
    println!("meeting opened at 10:00 as {session}");

    // 4. Invitees join over the same web service.
    let session_id = session.value().to_string();
    for user in ["wu", "uyar", "bulut", "pallickara"] {
        let response = soap.handle(&SoapClient::request(
            "join",
            &[("sessionId", &session_id), ("user", user), ("terminal", "1")],
        ));
        let topics = SoapClient::decode_response("join", &response)?;
        println!(
            "  {user} joined; audio topic {}",
            topics
                .iter()
                .find(|(k, _)| k == "topic-audio")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
        );
    }
    {
        let state = web.state();
        let state = state.borrow();
        let meeting = state.sessions.session(session).unwrap();
        assert_eq!(meeting.member_count(), 5);
        assert_eq!(meeting.chair(), Some("gcf"));
        println!(
            "session {} has {} members, chaired by {}",
            session,
            meeting.member_count(),
            meeting.chair().unwrap()
        );
    }

    // 5. The organizer ends the seminar.
    let response = soap.handle(&SoapClient::request(
        "terminate",
        &[("sessionId", &session_id), ("user", "gcf")],
    ));
    SoapClient::decode_response("terminate", &response)?;
    assert_eq!(web.state().borrow().sessions.session_count(), 0);
    println!("seminar terminated; scheduled flow OK");
    Ok(())
}
