//! The paper's flagship scenario: one conference spanning three
//! heterogeneous communities — a SIP endpoint, an H.323 terminal (via
//! gatekeeper + gateway) and the Admire community in China (via the
//! SOAP rendezvous flow) — with floor control over XGSP.
//!
//! Run with: `cargo run --example global_conference`

use mmcs::admire::service::AdmireService;
use mmcs::global_mmcs::bridge::CommunityBridge;
use mmcs::global_mmcs::system::GlobalMmcs;
use mmcs::h323::endpoint::{EndpointState, H323Endpoint};
use mmcs::h323::msg::H323Message;
use mmcs::sip::message::{SipMessage, SipMethod};
use mmcs::xgsp::message::{FloorOp, XgspMessage};
use mmcs_util::id::TerminalId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mmcs = GlobalMmcs::new();

    // --- A SIP user calls the conference factory URI. ---------------
    let invite = SipMessage::request(SipMethod::Invite, "sip:new-conf@mmcs.example")
        .with_header("Via", "SIP/2.0/UDP alice-ua;branch=z9hG4bK1")
        .with_header("From", "<sip:alice@example.org>;tag=1")
        .with_header("To", "<sip:new-conf@mmcs.example>")
        .with_header("Call-ID", "call-alice")
        .with_header("CSeq", "1 INVITE");
    let replies = mmcs.handle_sip(&invite);
    assert_eq!(replies[0].status(), Some(200));
    let session = mmcs
        .session_server()
        .session_ids()
        .next()
        .expect("conference exists");
    println!(
        "SIP: alice created and joined {session} (SDP answer targets {})",
        replies[0].body.lines().nth(3).unwrap_or("")
    );

    // --- An H.323 terminal walks the full RAS/Q.931/H.245 ladder. ---
    let mut h323 = H323Endpoint::new("bob-h323");
    let mut queue = vec![h323.start()];
    let mut admitted = false;
    while let Some(message) = queue.pop() {
        for reply in mmcs.handle_h323(&message) {
            queue.extend(h323.on_message(&reply));
        }
        if h323.state() == EndpointState::Registered && !admitted {
            admitted = true;
            queue.push(h323.place_call(format!("conf-{}", session.value()), 6400));
        }
    }
    assert_eq!(h323.state(), EndpointState::InCall);
    println!(
        "H.323: bob is in-call; media redirected to {}",
        h323.media_address().unwrap_or("?")
    );
    assert_eq!(
        mmcs.session_server().session(session).unwrap().member_count(),
        2
    );

    // --- The Admire community bridges in over SOAP. ------------------
    let mut bridge = CommunityBridge::new(
        "admire.cn",
        Box::new(AdmireService::new("admire.cn", "rdv.admire.cn")),
        "rdv.mmcs.example:8000",
    );
    let remote = bridge.bridge_session(session, "US–China joint seminar")?;
    bridge.mirror_join(session, "prof-li", TerminalId::from_raw(7))?;
    println!("Admire: bridged; RTP agents at rdv.mmcs.example:8000 <-> {remote}");

    // --- Floor control across the federation. ------------------------
    let outputs = mmcs.handle_xgsp(
        Some("sip:alice@example.org"),
        XgspMessage::Floor {
            session,
            op: FloorOp::Request,
            user: "sip:alice@example.org".into(),
        },
    );
    println!(
        "XGSP: floor request produced {} notifications; holder = {:?}",
        outputs.len(),
        mmcs.session_server()
            .session(session)
            .unwrap()
            .floor()
            .holder()
    );
    assert_eq!(
        mmcs.session_server()
            .session(session)
            .unwrap()
            .floor()
            .holder(),
        Some("sip:alice@example.org")
    );

    // --- Teardown: the H.323 side hangs up. ---------------------------
    for message in h323.hang_up() {
        if let H323Message::Ras(_) | H323Message::Q931(_) = message {
            mmcs.handle_h323(&message);
        }
    }
    assert_eq!(
        mmcs.session_server().session(session).unwrap().member_count(),
        1
    );
    bridge.unbridge_session(session)?;
    println!("teardown complete; global conference OK");
    Ok(())
}
