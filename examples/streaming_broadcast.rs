//! Streaming: a conference's video is transcoded by the RealProducer,
//! served by the Helix-style server over RTSP, and archived for
//! time-shifted replay — the paper's "Real Servers" path.
//!
//! Run with: `cargo run --example streaming_broadcast`

use mmcs::rtp::source::{VideoSource, VideoSourceConfig};
use mmcs::streaming::rtsp::{RtspMethod, RtspRequest};
use mmcs::xgsp::media::{MediaDescription, MediaKind};
use mmcs::xgsp::message::{SessionMode, XgspMessage};
use mmcs::xgsp::server::ServerOutput;
use mmcs_util::rng::DetRng;
use mmcs_util::time::SimTime;

use mmcs::global_mmcs::system::GlobalMmcs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mmcs = GlobalMmcs::new();

    // A lecture session carrying video.
    let outputs = mmcs.handle_xgsp(
        Some("lecturer"),
        XgspMessage::CreateSession {
            name: "streamed lecture".into(),
            mode: SessionMode::Scheduled,
            media: vec![MediaDescription::new(MediaKind::Video, "H263")],
        },
    );
    let session = outputs
        .iter()
        .find_map(|o| match o {
            ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => Some(*session),
            _ => None,
        })
        .expect("created");
    let topic = format!("globalmmcs/session-{}/video", session.value());
    println!("lecture session: {session}, topic {topic}");

    // Start archiving the stream.
    mmcs.archive_mut().start(&topic);

    // An RTSP player tunes in: DESCRIBE -> SETUP -> PLAY.
    let describe = RtspRequest::new(RtspMethod::Describe, format!("rtsp://helix.mmcs/{topic}"), 1);
    let response = mmcs.helix_mut().handle_rtsp(&describe);
    println!("RTSP DESCRIBE -> {} ({} bytes of SDP)", response.code, response.body.len());
    let setup = RtspRequest::new(RtspMethod::Setup, format!("rtsp://helix.mmcs/{topic}"), 2);
    let response = mmcs.helix_mut().handle_rtsp(&setup);
    let rtsp_session = response.header("Session").expect("session id").to_owned();
    let play = RtspRequest::new(RtspMethod::Play, format!("rtsp://helix.mmcs/{topic}"), 3)
        .with_header("Session", &rtsp_session);
    assert_eq!(mmcs.helix_mut().handle_rtsp(&play).code, 200);
    println!("RTSP player {rtsp_session} is PLAYING");

    // The lecturer publishes 2 seconds of 600 Kbps video.
    let publisher = mmcs.attach_media_client("lecturer", &topic)?;
    let mut source = VideoSource::new(VideoSourceConfig::default(), 0x1EC, DetRng::new(42));
    let mut clock = SimTime::ZERO;
    for _ in 0..50 {
        for packet in source.next_frame() {
            mmcs.set_now(clock);
            mmcs.publish_rtp(publisher, &topic, &packet);
        }
        clock += source.frame_interval();
    }

    // The player received the transcoded chunks.
    let deliveries = mmcs.helix_mut().take_deliveries();
    let to_player = deliveries
        .iter()
        .filter(|d| d.session_id == rtsp_session)
        .count();
    println!("player received {to_player} Real chunks");
    assert!(to_player >= 48, "expected ~50 frames, got {to_player}");

    // And the archive can replay the lecture later, same pacing.
    let recording = mmcs
        .archive_mut()
        .recording(&topic)
        .expect("archived");
    let replay = recording.playback_schedule(SimTime::from_secs(3600));
    println!(
        "archive: {} chunks, {} of media, replay starts at t=3600s",
        recording.chunks().len(),
        recording.duration()
    );
    assert_eq!(replay.len(), recording.chunks().len());
    println!("streaming broadcast OK");
    Ok(())
}
