//! Ad-hoc collaboration: presence shows who is online, a chat room
//! gathers the group, and one command escalates the conversation into
//! an A/V meeting with invitations — the paper's ad-hoc mode (§2.1).
//!
//! Run with: `cargo run --example adhoc_meeting`

use mmcs::im::stanza::{Show, Stanza};
use mmcs::global_mmcs::system::GlobalMmcs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mmcs = GlobalMmcs::new();

    // Everyone comes online and joins the project chat room.
    for user in ["alice", "bob", "carol"] {
        mmcs.handle_stanza(Stanza::Presence {
            from: user.into(),
            show: Show::Available,
            status: "working".into(),
        });
        mmcs.handle_stanza(Stanza::Iq {
            from: user.into(),
            kind: "set".into(),
            query: "join-room".into(),
            arg: "project-x".into(),
        });
    }
    println!("room project-x occupants: {:?}", mmcs.im().occupants("project-x"));

    // Some chat.
    let relayed = mmcs.handle_stanza(Stanza::Message {
        from: "alice".into(),
        to: "project-x".into(),
        body: "this is easier to discuss over video — joining a conference".into(),
    });
    println!("chat relayed to {} occupants", relayed.len());

    // Escalate: the room becomes an ad-hoc XGSP session.
    let escalation = mmcs.escalate_room("project-x", "alice")?;
    println!(
        "escalated to {} with {} invitations:",
        escalation.session,
        escalation.invites.len()
    );
    for invite in &escalation.invites {
        if let Stanza::Message { to, body, .. } = invite {
            println!("  -> {to}: {body}");
        }
    }

    let session = mmcs
        .session_server()
        .session(escalation.session)
        .expect("session exists");
    assert_eq!(session.chair(), Some("alice"));
    assert_eq!(session.member_count(), 1);
    assert_eq!(escalation.invites.len(), 2);
    println!(
        "session {} carries {} media streams; ad-hoc meeting OK",
        escalation.session,
        session.streams().len()
    );
    Ok(())
}
