//! Quickstart: create a conference, join two users, send audio, watch it
//! arrive — the smallest end-to-end tour of Global-MMCS.
//!
//! Run with: `cargo run --example quickstart`

use mmcs::rtp::source::{AudioCodec, AudioSource};
use mmcs::xgsp::media::{MediaDescription, MediaKind};
use mmcs::xgsp::message::{SessionMode, XgspMessage};
use mmcs::xgsp::server::ServerOutput;
use mmcs_util::time::{SimDuration, SimTime};

use mmcs::global_mmcs::system::{Egress, GlobalMmcs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mmcs = GlobalMmcs::new();

    // 1. Register users in the directory.
    let alice = mmcs.users_mut().create_user("alice", "Alice", "pw-a")?;
    let bob = mmcs.users_mut().create_user("bob", "Bob", "pw-b")?;
    let alice_terminal =
        mmcs.users_mut()
            .register_terminal(alice, "sip", "10.0.0.4:5060", vec!["audio/PCMU".into()])?;
    let bob_terminal =
        mmcs.users_mut()
            .register_terminal(bob, "sip", "10.0.0.5:5060", vec!["audio/PCMU".into()])?;
    println!("registered {} users", mmcs.users_mut().user_count());

    // 2. Create an ad-hoc session over the XGSP session server.
    let outputs = mmcs.handle_xgsp(
        Some("alice"),
        XgspMessage::CreateSession {
            name: "quickstart".into(),
            mode: SessionMode::AdHoc,
            media: vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
        },
    );
    let session = outputs
        .iter()
        .find_map(|o| match o {
            ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => Some(*session),
            _ => None,
        })
        .expect("session created");
    println!("created {session}");

    // 3. Both users join; the JoinAck carries the broker topic.
    let mut audio_topic = String::new();
    for (user, terminal) in [("alice", alice_terminal), ("bob", bob_terminal)] {
        let outputs = mmcs.handle_xgsp(
            Some(user),
            XgspMessage::Join {
                session,
                user: user.into(),
                terminal,
                media: vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
            },
        );
        for output in &outputs {
            if let ServerOutput::Reply(XgspMessage::JoinAck { topics, .. }) = output {
                audio_topic = topics[0].1.clone();
            }
        }
        println!("{user} joined");
    }
    println!("audio topic: {audio_topic}");

    // 4. Attach media clients: alice publishes, bob subscribes.
    let alice_media = mmcs.attach_media_client("alice", &audio_topic)?;
    let bob_media = mmcs.attach_media_client("bob", &audio_topic)?;

    // 5. Alice talks for one second (50 PCMU packets).
    let mut source = AudioSource::new(AudioCodec::Pcmu, 0xA11CE);
    let mut received_by_bob = 0;
    for i in 0..50u64 {
        mmcs.set_now(SimTime::ZERO + SimDuration::from_millis(20 * i));
        let packet = source.next_packet();
        for egress in mmcs.publish_rtp(alice_media, &audio_topic, &packet) {
            if let Egress::Media { client, .. } = egress {
                if client == bob_media {
                    received_by_bob += 1;
                }
                // (alice's own client also receives: she is subscribed.)
            }
        }
    }
    println!("bob received {received_by_bob}/50 audio packets");

    // 6. The media service also fed the streaming side automatically.
    println!(
        "helix ingested {} chunks on {}",
        mmcs.helix().fed_count(&audio_topic),
        audio_topic
    );

    assert_eq!(received_by_bob, 50);
    println!("quickstart OK");
    Ok(())
}
