//! Legacy endpoints via the RTP proxy: an MBONE-style tool that speaks
//! only raw RTP joins a broker-carried conference through the proxy —
//! "any RTP client … can publish its RTP messages through RTP Proxies
//! in the NaradaBrokering system" (§3.2). Runs on the deterministic
//! simulator.
//!
//! Run with: `cargo run --example legacy_mbone`

use bytes::Bytes;
use mmcs::broker::batch::CostModel;
use mmcs::broker::rtpproxy::{LegacyRtp, RtpProxyProcess};
use mmcs::broker::simdrv::{AudioPublisher, BrokerProcess, PublisherConfig, RtpReceiver};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::rtp::packet::{payload_type, RtpHeader, RtpPacket};
use mmcs::rtp::source::{AudioCodec, AudioSource};
use mmcs::sim::net::NicConfig;
use mmcs::sim::{Context, Packet, Process, ProcessId, Simulation};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::time::{SimDuration, SimTime};

/// The legacy MBONE tool: raw RTP out, raw RTP in, nothing else.
struct MboneTool {
    proxy: ProcessId,
    sent: u16,
    received: u64,
}

impl Process for MboneTool {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(120), 0);
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
        if packet.payload::<LegacyRtp>().is_some() {
            self.received += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.sent >= 100 {
            return;
        }
        let rtp = RtpPacket::new(
            RtpHeader::new(payload_type::PCMU, self.sent, self.sent as u32 * 160, 0xB0E),
            Bytes::from(vec![0u8; 160]),
        );
        ctx.send(
            self.proxy,
            LegacyRtp {
                bytes: rtp.encode(),
                sent_at: ctx.now(),
            },
            200,
        );
        self.sent += 1;
        ctx.set_timer(SimDuration::from_millis(20), 0);
    }
}

fn main() {
    let mut sim = Simulation::new(1);
    let mbone_host = sim.add_host("mbone-site", NicConfig::default());
    let broker_host = sim.add_host("broker", NicConfig::default());
    let modern_host = sim.add_host("modern-client", NicConfig::default());

    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
    );
    let topic = Topic::parse("globalmmcs/session-1/audio").unwrap();

    // A native broker subscriber (e.g. a Global-MMCS desktop client).
    let native = sim.add_typed_process(
        modern_host,
        RtpReceiver::new(
            broker,
            ClientId::from_raw(20),
            TopicFilter::exact(&topic),
            payload_type::PCMU,
            SimDuration::from_micros(10),
        ),
    );

    // The RTP proxy bridges the MBONE site into the topic.
    let proxy = sim.add_typed_process(
        broker_host,
        RtpProxyProcess::new(broker, ClientId::from_raw(10), topic.clone()),
    );
    let mbone = sim.add_typed_process(
        mbone_host,
        MboneTool {
            proxy,
            sent: 0,
            received: 0,
        },
    );
    sim.process_mut::<RtpProxyProcess>(proxy)
        .unwrap()
        .add_legacy_receiver(mbone);

    // And a native publisher so media flows toward the legacy side too.
    let mut config = PublisherConfig::new(broker, ClientId::from_raw(30), topic);
    config.max_packets = 80;
    sim.add_typed_process(
        modern_host,
        AudioPublisher::new(config, AudioSource::new(AudioCodec::Pcmu, 7)),
    );

    sim.run_until(SimTime::from_secs(5));

    let native_stats = sim.process_ref::<RtpReceiver>(native).unwrap().stats();
    let mbone_state = sim.process_ref::<MboneTool>(mbone).unwrap();
    let proxy_state = sim.process_ref::<RtpProxyProcess>(proxy).unwrap();
    println!(
        "native client received {} packets ({} legacy + {} native)",
        native_stats.received(),
        proxy_state.wrapped(),
        native_stats.received() - proxy_state.wrapped()
    );
    println!(
        "legacy MBONE tool received {} packets back through the proxy",
        mbone_state.received
    );
    assert_eq!(native_stats.received(), 180);
    assert_eq!(mbone_state.received, 80);
    println!("legacy interop OK: raw RTP joined the broker conference");
}
