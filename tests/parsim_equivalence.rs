//! Engine equivalence: the conservative-parallel simulator must be a
//! bit-exact drop-in for the sequential one (`DESIGN.md` §14).
//!
//! A random workload — hosts running timer-driven chatter processes
//! with CPU costs, plus a fault schedule of link degradation (loss,
//! jitter, duplication, hard partition) and process crash/restart
//! incarnations — is run once on the sequential engine and once per
//! worker count in {1, 2, 4, 8}. Every run must produce:
//!
//! * byte-identical per-host execution traces (`take_traces`),
//! * the identical FNV trace fingerprint, and
//! * the identical counter map.
//!
//! A second property drives the full chaos scenario (brokers, reliable
//! pairs, XGSP) through its `workers` knob and compares the chaos
//! run-report fingerprint across engines.

use proptest::prelude::*;

use mmcs_chaos::generate;
use mmcs_chaos::scenario::{self, ScenarioConfig};
use mmcs::sim::net::{HostId, LinkConfig, NicConfig};
use mmcs::sim::{Context, Packet, Process, ProcessId, Simulation};
use mmcs_util::time::{SimDuration, SimTime};

/// Worker counts every plan is checked at, against the sequential run.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Timer-driven chatter: each tick spends CPU, sends a few packets to
/// RNG-chosen peers, and occasionally replies to traffic it receives.
/// All randomness comes from `ctx.rng()` (the host's private stream),
/// so behavior is a pure function of the host's execution order.
#[derive(Debug, Clone)]
struct Chatter {
    peers: Vec<ProcessId>,
    period: SimDuration,
    sends_per_tick: u32,
    cpu: SimDuration,
    ticks_left: u32,
    wire_bytes: usize,
}

impl Process for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.ticks_left == 0 {
            return;
        }
        self.ticks_left -= 1;
        ctx.spend_cpu(self.cpu);
        for _ in 0..self.sends_per_tick {
            let target = ctx.rng().range_usize(0, self.peers.len());
            let dst = self.peers[target];
            if dst != ctx.me() {
                ctx.send(dst, "tick", self.wire_bytes);
                ctx.count("chatter.sent", 1);
            }
        }
        ctx.set_timer(self.period, 0);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        ctx.count("chatter.received", 1);
        ctx.spend_cpu(SimDuration::from_micros(5));
        if ctx.rng().chance(0.25) {
            ctx.send(packet.src, "reply", 64);
            ctx.count("chatter.replied", 1);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        ctx.count("chatter.restarted", 1);
        ctx.set_timer(self.period, 0);
    }
}

/// One scheduled fault. Times are virtual milliseconds from start.
#[derive(Debug, Clone)]
enum FaultOp {
    /// Replace the link between hosts `a` and `b` (indices).
    Link(usize, usize, LinkConfig),
    /// Crash process index `p`, restart it `down_ms` later.
    CrashRestart(usize, u64),
}

/// A complete randomized run plan.
#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    hosts: usize,
    chatter: Vec<(u64, u32, u64, u32, usize)>,
    faults: Vec<(u64, FaultOp)>,
    horizon_ms: u64,
}

fn link_strategy() -> impl Strategy<Value = LinkConfig> {
    (
        200u64..=2_000,
        prop_oneof![
            Just((0.0, 0.0, 0u64, false)),
            (0.05f64..0.5).prop_map(|loss| (loss, 0.0, 0, false)),
            (0.1f64..0.9).prop_map(|duplicate| (0.0, duplicate, 0, false)),
            (1u64..=8).prop_map(|jitter_ms| (0.0, 0.0, jitter_ms, false)),
            Just((0.0, 0.0, 0, true)),
        ],
    )
        .prop_map(|(latency_us, (loss, duplicate, jitter_ms, down))| LinkConfig {
            latency: SimDuration::from_micros(latency_us),
            loss,
            duplicate,
            jitter: SimDuration::from_millis(jitter_ms),
            down,
        })
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    // Host/process indices inside fault ops are generated over the
    // maximum host count and reduced modulo the actual one at apply
    // time (the shimmed proptest has no `prop_flat_map`).
    let chatter = prop::collection::vec(
        (
            500u64..=5_000,  // timer period (µs)
            0u32..=3,        // sends per tick
            0u64..=200,      // per-tick CPU (µs)
            5u32..=40,       // tick budget
            64usize..=1_400, // wire bytes
        ),
        6,
    );
    let faults = prop::collection::vec(
        (
            1u64..40,
            prop_oneof![
                (0usize..6, 0usize..6, link_strategy())
                    .prop_map(|(a, b, link)| FaultOp::Link(a, b, link)),
                (0usize..6, 1u64..20)
                    .prop_map(|(p, down_ms)| FaultOp::CrashRestart(p, down_ms)),
            ],
        ),
        0..6,
    );
    (2usize..=6, 0u64..1_000_000, chatter, faults).prop_map(|(hosts, seed, chatter, faults)| {
        Plan {
            seed,
            hosts,
            chatter,
            faults,
            horizon_ms: 60,
        }
    })
}

/// Materializes and runs a plan. `workers == 0` means the sequential
/// engine; otherwise `run_parallel_until` with that worker count.
fn run_plan(plan: &Plan, workers: usize) -> (Vec<Vec<u64>>, u64, Vec<(String, u64)>) {
    let mut sim = Simulation::new(plan.seed);
    let hosts: Vec<HostId> = (0..plan.hosts)
        .map(|h| sim.add_host(&format!("h{h}"), NicConfig::default()))
        .collect();
    sim.set_default_latency(SimDuration::from_micros(400));
    sim.set_trace_enabled(true);

    let pids: Vec<ProcessId> = (0..plan.hosts)
        .map(|h| {
            let (period_us, sends, cpu_us, ticks, bytes) = plan.chatter[h];
            sim.add_typed_process(
                hosts[h],
                Chatter {
                    peers: Vec::new(),
                    period: SimDuration::from_micros(period_us),
                    sends_per_tick: sends,
                    cpu: SimDuration::from_micros(cpu_us),
                    ticks_left: ticks,
                    wire_bytes: bytes,
                },
            )
        })
        .collect();
    for pid in &pids {
        sim.process_mut::<Chatter>(*pid)
            .expect("chatter process")
            .peers = pids.clone();
    }

    // Compile the fault schedule into (time, op) order; restarts are
    // separate timed entries so they interleave with other faults.
    let mut ops: Vec<(u64, usize, FaultOp)> = Vec::new();
    for (i, (t_ms, op)) in plan.faults.iter().enumerate() {
        match op {
            FaultOp::CrashRestart(p, down_ms) => {
                ops.push((*t_ms, i * 2, FaultOp::CrashRestart(*p, 0)));
                ops.push((t_ms + down_ms, i * 2 + 1, FaultOp::CrashRestart(*p, u64::MAX)));
            }
            link => ops.push((*t_ms, i * 2, link.clone())),
        }
    }
    ops.sort_by_key(|(t, tie, _)| (*t, *tie));

    let advance = |sim: &mut Simulation, until: SimTime| {
        if workers == 0 {
            sim.run_until(until);
        } else {
            sim.run_parallel_until(until, workers);
        }
    };
    for (t_ms, _, op) in ops {
        advance(&mut sim, SimTime::from_millis(t_ms));
        match op {
            FaultOp::Link(a, b, link) => {
                let (a, b) = (a % plan.hosts, b % plan.hosts);
                if a != b {
                    sim.set_link(hosts[a], hosts[b], link);
                }
            }
            FaultOp::CrashRestart(p, marker) => {
                let p = p % plan.hosts;
                if marker == 0 {
                    if !sim.is_crashed(pids[p]) {
                        sim.crash_process(pids[p]);
                    }
                } else if sim.is_crashed(pids[p]) {
                    sim.restart_process(pids[p]);
                }
            }
        }
    }
    advance(&mut sim, SimTime::from_millis(plan.horizon_ms));

    let fingerprint = sim.trace_fingerprint();
    let mut counters: Vec<(String, u64)> = sim
        .counters()
        .map(|(name, value)| (name.to_owned(), value))
        .collect();
    counters.sort();
    (sim.take_traces(), fingerprint, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any schedule, any worker count: traces, fingerprints, and
    /// counters must match the sequential engine bit-for-bit.
    #[test]
    fn parallel_engine_is_bit_identical(plan in plan_strategy()) {
        let (base_traces, base_fp, base_counters) = run_plan(&plan, 0);
        prop_assert!(
            base_counters.iter().any(|(name, v)| name == "net.delivered" && *v > 0)
                || plan.chatter.iter().all(|(_, sends, ..)| *sends == 0),
            "workload should exchange traffic"
        );
        for workers in WORKER_COUNTS {
            let (traces, fp, counters) = run_plan(&plan, workers);
            prop_assert_eq!(
                &traces, &base_traces,
                "execution traces diverged at {} workers", workers
            );
            prop_assert_eq!(
                fp, base_fp,
                "trace fingerprint diverged at {} workers", workers
            );
            prop_assert_eq!(
                &counters, &base_counters,
                "counters diverged at {} workers", workers
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full chaos scenario (brokers, reliable pairs, XGSP, a
    /// generated fault schedule) reproduces its run-report fingerprint
    /// on the parallel engine.
    #[test]
    fn chaos_fingerprint_survives_parallel_engine(seed in 0u64..1_000) {
        let config = ScenarioConfig {
            horizon_ms: 4_000,
            settle_ms: 5_000,
            events_per_pair: 40,
            ..ScenarioConfig::for_seed(seed)
        };
        let schedule = generate(
            config.seed,
            config.horizon_ms,
            mmcs_chaos::scenario::EDGES,
            mmcs_chaos::scenario::BROKERS,
            mmcs_chaos::scenario::CHURN_CLIENTS,
        );
        let sequential = scenario::run(&config, &schedule);
        for workers in [2usize, 4] {
            let parallel = scenario::run(
                &ScenarioConfig { workers, ..config },
                &schedule,
            );
            prop_assert_eq!(
                parallel.fingerprint, sequential.fingerprint,
                "chaos fingerprint diverged at {} workers", workers
            );
            prop_assert_eq!(
                &parallel.counters, &sequential.counters,
                "chaos counters diverged at {} workers", workers
            );
        }
    }
}
