//! Property tests on the flat wire formats.
//!
//! Three families:
//!
//! 1. **Round-trip**: `encode → WireEvent view → decode` reproduces the
//!    original event exactly — for arbitrary topics, classes, header
//!    fields and payload sizes including 0 and > 64 KiB — and the
//!    zero-copy `decode_shared` agrees with the owned `decode`. Same
//!    for RTP: the `WireRtp` slice-view parser and the owned parser
//!    agree on every well-formed packet.
//! 2. **Malformed frames**: every strict prefix of a valid frame is
//!    rejected with an error (never a panic), for events and for RTP —
//!    including CSRC-bearing RTP headers whose CSRC area is cut short.
//! 3. **Forward-path equivalence**: publishing arbitrary events through
//!    a `ShardedBroker` at 1, 2 and 4 shards — where every cross-shard
//!    hop travels as an encoded pooled frame — delivers the identical
//!    multiset of (topic, class, source, seq, payload), and at > 1
//!    shard the ring actually carried frames (`cross_shard_forwards`).
//! 4. **Cluster envelope**: the 16-byte federation `ClusterFrame` —
//!    round-trip of every header field (any origin/dest/hops-in-range/
//!    generation, including generations that are stale relative to a
//!    newer advert — staleness is routing policy, never a wire error),
//!    typed rejection of truncation at *every* prefix, of hop counts
//!    past `MAX_HOPS`, and of corrupt embedded events; plus a schema
//!    golden pinning the byte layout against accidental drift.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use mmcs::broker::cluster::{
    self, encode_event_frame, encode_frame, ClusterFrame, DecodeClusterError, FrameKind,
    CLUSTER_HEADER_LEN, MAX_HOPS,
};
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::metrics::ShardedBrokerMetrics;
use mmcs::broker::sharded::ShardedBroker;
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::broker::wire;
use mmcs::rtp::packet::{RtpHeader, RtpPacket, WireRtp};
use mmcs_util::id::ClientId;
use mmcs_util::time::SimTime;

fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec(
        prop::sample::select(vec!["conf", "a", "b7", "video", "audio", "x"]),
        1..=4,
    )
    .prop_map(Topic::from_segments)
}

fn class_strategy() -> impl Strategy<Value = EventClass> {
    prop::sample::select(vec![EventClass::Control, EventClass::Data, EventClass::Rtp])
}

/// Payload length spanning empty, sub-class, and jumbo (> 64 KiB,
/// past the pool's 16 KiB class and into — and beyond — the top one).
fn payload_strategy() -> impl Strategy<Value = Bytes> {
    (0usize..=70_000, any::<u8>())
        .prop_map(|(len, fill)| Bytes::from(vec![fill; len]))
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        topic_strategy(),
        any::<u64>(),
        any::<u64>(),
        class_strategy(),
        payload_strategy(),
        any::<u64>(),
    )
        .prop_map(|(topic, source, seq, class, payload, at)| {
            Event::new(topic, ClientId::from_raw(source), seq, class, payload)
                .with_published_at(SimTime::from_nanos(at))
        })
}

fn rtp_strategy() -> impl Strategy<Value = RtpPacket> {
    (
        0u8..=127,
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u32>(), 0..=15),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(pt, seq, ts, ssrc, csrc, marker, payload)| {
            let mut header = RtpHeader::new(pt, seq, ts, ssrc);
            header.csrc = csrc;
            header.marker = marker;
            RtpPacket::new(header, Bytes::from(payload))
        })
}

proptest! {
    /// encode → view → decode is the identity, and the shared decode
    /// (zero-copy payload) agrees with the owned one.
    #[test]
    fn event_round_trips_through_the_wire(event in event_strategy()) {
        let frame = wire::encode(&event).freeze();
        prop_assert_eq!(frame.len(), wire::encoded_len(&event));

        let view = wire::WireEvent::parse(&frame).expect("own encoding parses");
        prop_assert_eq!(view.class(), event.class);
        prop_assert_eq!(view.source(), event.source);
        prop_assert_eq!(view.seq(), event.seq);
        prop_assert_eq!(view.published_at(), event.published_at);
        prop_assert_eq!(view.topic_str(), event.topic.to_string());
        prop_assert_eq!(view.payload(), &event.payload[..]);

        let owned = wire::decode(&frame).expect("own encoding decodes");
        prop_assert_eq!(&owned, &event);
        let shared = wire::decode_shared(&frame).expect("own encoding decodes shared");
        prop_assert_eq!(&shared, &event);
        // The shared payload borrows the frame, not a copy.
        if !event.payload.is_empty() {
            prop_assert_eq!(
                shared.payload.as_ptr(),
                frame[frame.len() - event.payload.len()..].as_ptr()
            );
        }
    }

    /// Every strict prefix of a valid event frame errors, never panics.
    #[test]
    fn truncated_event_frames_are_rejected(event in event_strategy()) {
        let frame = wire::encode(&event).freeze();
        // Cover every header/topic boundary plus a payload sample; the
        // full range would make jumbo cases quadratic.
        let interesting = (0..frame.len().min(64))
            .chain([frame.len().saturating_sub(1)]);
        for len in interesting {
            prop_assert!(wire::WireEvent::parse(&frame[..len]).is_err());
        }
    }

    /// The RTP slice-view parser and the owned parser agree on every
    /// well-formed packet.
    #[test]
    fn rtp_view_and_owned_decode_agree(packet in rtp_strategy()) {
        let frame = packet.encode();

        let view = WireRtp::parse(&frame).expect("own encoding parses");
        prop_assert_eq!(view.payload_type(), packet.header.payload_type);
        prop_assert_eq!(view.sequence_number(), packet.header.sequence_number);
        prop_assert_eq!(view.timestamp(), packet.header.timestamp);
        prop_assert_eq!(view.ssrc(), packet.header.ssrc);
        prop_assert_eq!(view.marker(), packet.header.marker);
        let csrcs: Vec<u32> = view.csrc().collect();
        prop_assert_eq!(&csrcs, &packet.header.csrc);
        prop_assert_eq!(view.payload(), &packet.payload[..]);

        let owned = RtpPacket::decode(&frame).expect("own encoding decodes");
        prop_assert_eq!(&owned, &packet);
        let shared = RtpPacket::decode_shared(&frame).expect("decodes shared");
        prop_assert_eq!(&shared, &packet);
    }

    /// Every strict prefix of a valid RTP frame errors, never panics —
    /// including prefixes that cut through a populated CSRC area.
    #[test]
    fn truncated_rtp_frames_are_rejected(packet in rtp_strategy()) {
        let frame = packet.encode();
        let header_len = packet.header.wire_len();
        // All header truncations (this is where the CSRC area lives)
        // plus one payload-region sample.
        for len in (0..header_len).chain([frame.len().saturating_sub(1)]) {
            if len >= frame.len() {
                continue;
            }
            let view = WireRtp::parse(&frame[..len]);
            let owned = RtpPacket::decode(&frame[..len]);
            if len < header_len {
                prop_assert!(view.is_err(), "header truncated to {len} must not parse");
                prop_assert!(owned.is_err());
            } else {
                // Truncating only the payload still parses; the parsers
                // must still agree.
                prop_assert_eq!(view.is_ok(), owned.is_ok());
            }
        }
    }
}

/// Multiset of delivered events, keyed by every field a subscriber can
/// observe: (topic path, class byte, source id, seq, payload bytes).
type DeliveredMultiset = BTreeMap<(String, u8, u64, u64, Vec<u8>), usize>;

/// Publishes `events` through a sharded broker with one wildcard
/// subscriber and returns (delivered multiset, ring forwards, expected
/// forwards). An event crosses the ring iff its topic's owner shard
/// differs from the subscriber's home shard — and then it travels as an
/// encoded pooled wire frame — so the expected forward count is exactly
/// the number of publishes owned by a foreign shard.
fn sharded_deliveries(
    events: &[(Topic, EventClass, Bytes)],
    shards: usize,
) -> (DeliveredMultiset, u64, u64) {
    let metrics = ShardedBrokerMetrics::detached(shards);
    let broker = ShardedBroker::builder(shards)
        .metrics(std::sync::Arc::clone(&metrics))
        .spawn();
    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("#").expect("valid filter"));
    broker.quiesce();
    let expected_forwards = events
        .iter()
        .filter(|(topic, _, _)| broker.shard_for_topic(topic) != subscriber.home_shard())
        .count() as u64;
    let publisher = broker.attach();
    for (topic, class, payload) in events {
        publisher.publish_class(topic.clone(), *class, payload.clone());
    }
    broker.quiesce();

    let mut delivered = BTreeMap::new();
    while let Some(event) = subscriber.recv_timeout(Duration::from_millis(200)) {
        let class_byte = match event.class {
            EventClass::Control => 0u8,
            EventClass::Data => 1,
            EventClass::Rtp => 2,
        };
        *delivered
            .entry((
                event.topic.to_string(),
                class_byte,
                event.source.value(),
                event.seq,
                event.payload.to_vec(),
            ))
            .or_insert(0) += 1;
        if delivered.values().sum::<usize>() == events.len() {
            break;
        }
    }
    let forwards = metrics
        .shards()
        .map(|m| m.cross_shard_forwards.get())
        .sum();
    broker.shutdown();
    (delivered, forwards, expected_forwards)
}

/// Forces one cross-shard hop deterministically: finds a topic head the
/// subscriber's home shard does not own, publishes there, and checks
/// both the delivery and the ring metric. This keeps the property
/// above honest — ring coverage cannot silently go vacuous.
#[test]
fn a_foreign_topic_crosses_the_ring_exactly_once() {
    let shards = 4;
    let metrics = ShardedBrokerMetrics::detached(shards);
    let broker = ShardedBroker::builder(shards)
        .metrics(std::sync::Arc::clone(&metrics))
        .spawn();
    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("#").expect("valid filter"));
    broker.quiesce();
    let foreign = (0..)
        .map(|i| Topic::from_segments([format!("head{i}"), "video".to_string()]))
        .find(|t| broker.shard_for_topic(t) != subscriber.home_shard())
        .expect("some head hashes to a foreign shard");
    let publisher = broker.attach();
    publisher.publish_class(foreign.clone(), EventClass::Rtp, Bytes::from_static(b"frame"));
    broker.quiesce();
    let event = subscriber
        .recv_timeout(Duration::from_secs(1))
        .expect("forwarded event arrives");
    assert_eq!(event.topic, foreign);
    assert_eq!(&event.payload[..], b"frame");
    let forwards: u64 = metrics.shards().map(|m| m.cross_shard_forwards.get()).sum();
    assert_eq!(forwards, 1, "exactly one ring hop");
    broker.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// The cross-shard forward path — encode to a pooled frame, hop the
    /// ring, decode zero-copy — is invisible to subscribers: at 1, 2
    /// and 4 shards the delivered multiset is exactly the published
    /// one, and at > 1 shard the ring demonstrably carried frames.
    #[test]
    fn forward_path_is_transparent_at_every_shard_count(
        published in prop::collection::vec(
            (topic_strategy(), class_strategy(),
             prop::collection::vec(any::<u8>(), 0..300).prop_map(Bytes::from)),
            8..24,
        ),
    ) {
        let mut reference: Option<DeliveredMultiset> = None;
        for shards in [1usize, 2, 4] {
            let (delivered, forwards, expected_forwards) =
                sharded_deliveries(&published, shards);
            prop_assert_eq!(
                delivered.values().sum::<usize>(),
                published.len(),
                "every publish must be delivered exactly once at {} shards",
                shards
            );
            match &reference {
                None => reference = Some(delivered),
                Some(expected) => prop_assert_eq!(
                    &delivered, expected,
                    "shard count {} changed the delivered multiset", shards
                ),
            }
            // Every publish whose owner shard is not the subscriber's
            // home shard crossed the ring as a wire frame — no more, no
            // fewer. At one shard there is no ring at all.
            prop_assert_eq!(forwards, expected_forwards);
            if shards == 1 {
                prop_assert_eq!(forwards, 0, "a single shard has no ring");
            }
        }
    }
}

fn frame_kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop::sample::select(vec![
        FrameKind::Event,
        FrameKind::GossipDigest,
        FrameKind::GossipEntries,
        FrameKind::Ack,
    ])
}

/// An arbitrary valid cluster frame: event kinds embed a real wire
/// event, gossip kinds carry opaque bytes (the gossip codec validates
/// them later, in the worker), acks are empty by contract.
fn cluster_frame_strategy() -> impl Strategy<Value = (FrameKind, u16, u16, u8, u64, Vec<u8>)> {
    (
        frame_kind_strategy(),
        any::<u16>(),
        any::<u16>(),
        0u8..MAX_HOPS,
        any::<u64>(),
        (topic_strategy(), prop::collection::vec(any::<u8>(), 0..200)),
    )
        .prop_map(|(kind, origin, dest, hops, generation, (topic, raw))| {
            let body = match kind {
                FrameKind::Event => {
                    let event = Event::new(
                        topic,
                        ClientId::from_raw(7),
                        42,
                        EventClass::Data,
                        Bytes::from(raw),
                    );
                    wire::encode(&event).freeze().to_vec()
                }
                FrameKind::Ack => Vec::new(),
                FrameKind::GossipDigest | FrameKind::GossipEntries => raw,
            };
            (kind, origin, dest, hops, generation, body)
        })
}

proptest! {
    /// Every header field of the federation envelope round-trips, for
    /// every kind — including generations that are stale next to a
    /// newer advert: staleness is routing policy, never a wire error.
    #[test]
    fn cluster_frame_round_trips((kind, origin, dest, hops, generation, body)
        in cluster_frame_strategy())
    {
        let frame = encode_frame(kind, origin, dest, hops, generation, &body).freeze();
        prop_assert_eq!(frame.len(), CLUSTER_HEADER_LEN + body.len());
        let view = ClusterFrame::parse(&frame).expect("own encoding parses");
        prop_assert_eq!(view.kind(), kind);
        prop_assert_eq!(view.origin(), origin);
        prop_assert_eq!(view.dest(), dest);
        prop_assert_eq!(view.hops(), hops);
        prop_assert_eq!(view.generation(), generation);
        prop_assert_eq!(view.body(), &body[..]);

        // A frame stamped with an *older* generation than a sibling
        // still parses — the delivery path counts staleness instead of
        // dropping, so the wire layer must accept every generation.
        if generation > 0 {
            let stale = encode_frame(kind, origin, dest, hops, generation - 1, &body).freeze();
            let stale_view = ClusterFrame::parse(&stale).expect("stale generation still valid");
            prop_assert_eq!(stale_view.generation(), generation - 1);
        }
    }

    /// Truncation at every prefix is rejected with a typed error, never
    /// a panic: envelope cuts are `Truncated`, body cuts of an event
    /// frame are `BadEvent`, and a hop count at or past `MAX_HOPS` is
    /// `HopLimit` no matter the rest of the frame.
    #[test]
    fn malformed_cluster_frames_are_rejected(
        (kind, origin, dest, hops, generation, body) in cluster_frame_strategy(),
        over_hops in (MAX_HOPS + 1)..=u8::MAX,
    ) {
        let frame = encode_frame(kind, origin, dest, hops, generation, &body).freeze();
        for len in 0..frame.len() {
            let result = ClusterFrame::parse(&frame[..len]);
            match result {
                Err(DecodeClusterError::Truncated) => {
                    prop_assert!(len < CLUSTER_HEADER_LEN, "Truncated past the envelope");
                }
                Err(_) => {
                    prop_assert!(len >= CLUSTER_HEADER_LEN, "body errors need a full envelope");
                }
                Ok(view) => {
                    // Gossip bodies are opaque at this layer, so a cut
                    // body still parses; events and acks must not.
                    prop_assert!(matches!(
                        kind,
                        FrameKind::GossipDigest | FrameKind::GossipEntries
                    ));
                    prop_assert_eq!(view.body().len(), len - CLUSTER_HEADER_LEN);
                }
            }
        }

        let looped = encode_frame(kind, origin, dest, over_hops, generation, &body).freeze();
        prop_assert_eq!(
            ClusterFrame::parse(&looped).err(),
            Some(DecodeClusterError::HopLimit(over_hops))
        );
    }

    /// The event-frame convenience encoder agrees with the generic one:
    /// parse yields the same envelope and an embedded event that
    /// decodes back to the original.
    #[test]
    fn event_frames_embed_the_event_exactly(
        event in event_strategy(),
        origin in any::<u16>(),
        dest in any::<u16>(),
        hops in 0u8..MAX_HOPS,
        generation in any::<u64>(),
    ) {
        let frame = encode_event_frame(origin, dest, hops, generation, &event).freeze();
        let view = ClusterFrame::parse(&frame).expect("event frame parses");
        prop_assert_eq!(view.kind(), FrameKind::Event);
        prop_assert_eq!(view.origin(), origin);
        prop_assert_eq!(view.dest(), dest);
        prop_assert_eq!(view.hops(), hops);
        prop_assert_eq!(view.generation(), generation);
        let embedded = wire::decode(view.body()).expect("embedded event decodes");
        prop_assert_eq!(&embedded, &event);
    }
}

/// The envelope layout, regenerated from the live constants and pinned
/// against `tests/golden/cluster_frame_schema.json`. A mismatch means
/// the wire format drifted — bump `CLUSTER_VERSION` and regenerate the
/// golden deliberately, never silently.
#[test]
fn cluster_frame_schema_matches_golden() {
    let schema = format!(
        r#"{{
  "format": "mmcs-cluster-frame",
  "version": {version},
  "header_len": {header_len},
  "max_hops": {max_hops},
  "byte_order": "big-endian",
  "fields": [
    {{ "name": "version", "offset": {off_version}, "len": 1 }},
    {{ "name": "kind", "offset": {off_kind}, "len": 1 }},
    {{ "name": "origin", "offset": {off_origin}, "len": 2 }},
    {{ "name": "dest", "offset": {off_dest}, "len": 2 }},
    {{ "name": "hops", "offset": {off_hops}, "len": 1 }},
    {{ "name": "reserved", "offset": {off_reserved}, "len": 1, "must_be": 0 }},
    {{ "name": "generation", "offset": {off_generation}, "len": 8 }}
  ],
  "kinds": [
    {{ "name": "Event", "value": {k_event}, "body": "wire event frame" }},
    {{ "name": "GossipDigest", "value": {k_digest}, "body": "gossip digest" }},
    {{ "name": "GossipEntries", "value": {k_entries}, "body": "gossip entries" }},
    {{ "name": "Ack", "value": {k_ack}, "body": "empty; generation carries the acked link seq" }}
  ]
}}
"#,
        version = cluster::CLUSTER_VERSION,
        header_len = CLUSTER_HEADER_LEN,
        max_hops = MAX_HOPS,
        off_version = cluster::OFF_VERSION,
        off_kind = cluster::OFF_KIND,
        off_origin = cluster::OFF_ORIGIN,
        off_dest = cluster::OFF_DEST,
        off_hops = cluster::OFF_HOPS,
        off_reserved = cluster::OFF_RESERVED,
        off_generation = cluster::OFF_GENERATION,
        k_event = FrameKind::Event as u8,
        k_digest = FrameKind::GossipDigest as u8,
        k_entries = FrameKind::GossipEntries as u8,
        k_ack = FrameKind::Ack as u8,
    );
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/cluster_frame_schema.json"
    ))
    .expect("read cluster frame schema golden");
    assert_eq!(
        schema, golden,
        "cluster frame layout drifted from the golden schema"
    );
}
