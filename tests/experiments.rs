//! Reduced-scale regression tests guarding the *shape* of every
//! experiment in EXPERIMENTS.md, runnable in CI without the full
//! paper-scale benches.

use mmcs_bench::ablation::{run_batching_ablation, run_dissemination};
use mmcs_bench::capacity::{run_point, CapacityConfig, Media};
use mmcs_bench::fig3::{run, Fig3Config};
use mmcs_util::rate::Bandwidth;
use mmcs_util::time::SimDuration;

/// Fig 3 shape: broker beats reflector clearly; everything delivered.
#[test]
fn fig3_shape_holds_at_reduced_scale() {
    let config = Fig3Config::reduced();
    let result = run(&config);
    assert!(result.narada.received >= config.packets as f64 * 0.98);
    assert!(
        result.jmf.avg_delay_ms > result.narada.avg_delay_ms * 1.5,
        "jmf {:.1} vs narada {:.1}",
        result.jmf.avg_delay_ms,
        result.narada.avg_delay_ms
    );
    // Jitter magnitudes are comparable (the paper reports 13.4 vs 15.6).
    assert!(result.narada.avg_jitter_ms < 60.0);
    assert!(result.jmf.avg_jitter_ms < 60.0);
    // Delay/jitter series are plot-ready per-packet curves.
    assert!(result.narada.delay_series.len() >= 250);
    assert!(result.jmf.jitter_series.len() >= 250);
}

/// Fig 3 determinism: same seed, same curves.
#[test]
fn fig3_reduced_is_reproducible() {
    let config = Fig3Config::reduced();
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a.narada.delay_series, b.narada.delay_series);
    assert_eq!(a.jmf.delay_series, b.jmf.delay_series);
}

/// Capacity shape (audio, scaled 1:10): good below the knee, bad above.
#[test]
fn audio_capacity_knee_scaled() {
    // Scale: 10x CPU cost, 1/10 clients — the knee lands around 110-120.
    let mut below = CapacityConfig::new(Media::Audio, 100);
    below.broker_cost.per_send = below.broker_cost.per_send * 10;
    below.duration = SimDuration::from_secs(5);
    let mut above = CapacityConfig::new(Media::Audio, 140);
    above.broker_cost.per_send = above.broker_cost.per_send * 10;
    above.duration = SimDuration::from_secs(5);
    let good = run_point(&below);
    let bad = run_point(&above);
    assert!(good.good, "100 scaled clients should be good: {good:?}");
    assert!(
        !bad.good || bad.avg_delay_ms > good.avg_delay_ms * 3.0,
        "140 scaled clients should degrade: {bad:?} vs {good:?}"
    );
}

/// Capacity shape (video, scaled 1:10): NIC-bound knee between 40 and 60.
#[test]
fn video_capacity_knee_scaled() {
    let mut below = CapacityConfig::new(Media::Video, 40);
    below.broker_nic = Bandwidth::from_mbps(31);
    below.duration = SimDuration::from_secs(5);
    let mut above = CapacityConfig::new(Media::Video, 60);
    above.broker_nic = Bandwidth::from_mbps(31);
    above.duration = SimDuration::from_secs(5);
    let good = run_point(&below);
    let bad = run_point(&above);
    assert!(good.good, "{good:?}");
    assert!(!bad.good, "{bad:?}");
}

/// Ablation A1 shape: batching off costs delay.
#[test]
fn batching_matters_at_reduced_scale() {
    let mut config = Fig3Config::reduced();
    config.packets = 250;
    let (batched, unbatched) = run_batching_ablation(&config);
    assert!(unbatched.avg_delay_ms > batched.avg_delay_ms * 1.5);
}

/// Ablation A2 shape: more brokers, less delay under load.
#[test]
fn dissemination_scales_at_reduced_scale() {
    let mut config = Fig3Config::reduced();
    config.packets = 250;
    config.relay_nic = Bandwidth::from_mbps(26);
    let one = run_dissemination(&config, 1);
    let two = run_dissemination(&config, 2);
    let four = run_dissemination(&config, 4);
    assert!(two.avg_delay_ms < one.avg_delay_ms);
    assert!(four.avg_delay_ms < one.avg_delay_ms);
}
