//! Property tests for the telemetry histogram: quantiles checked
//! against an exact sorted-vector oracle, counts exact, and merge
//! equivalent to recording the union of the inputs.

use proptest::prelude::*;

use mmcs::telemetry::Histogram;

/// Nearest-rank oracle, matching `HistogramSnapshot::quantile`'s rank
/// selection but on the raw samples.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix tiny exact-region values with values spread across many
    // octaves so both histogram regimes are exercised.
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..100_000,
            100_000u64..10_000_000_000,
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_match_oracle_within_documented_error(samples in sample_strategy()) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let snapshot = hist.snapshot();
        prop_assert_eq!(snapshot.count(), samples.len() as u64);
        prop_assert_eq!(snapshot.sum(), samples.iter().sum::<u64>());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snapshot.min(), Some(sorted[0]));
        prop_assert_eq!(snapshot.max(), Some(*sorted.last().unwrap()));

        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let approx = snapshot.quantile(q).expect("non-empty");
            // The documented bound: bucket-midpoint reporting is within
            // REL_ERROR of the true sample (exact below 64).
            let tolerance = (exact as f64 * Histogram::REL_ERROR).ceil() as u64;
            let diff = exact.abs_diff(approx);
            prop_assert!(
                diff <= tolerance,
                "q={} exact={} approx={} diff={} tol={}",
                q, exact, approx, diff, tolerance
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in sample_strategy(),
        b in sample_strategy(),
    ) {
        let ha = Histogram::new();
        for &s in &a {
            ha.record(s);
        }
        let hb = Histogram::new();
        for &s in &b {
            hb.record(s);
        }
        let merged = ha.snapshot().merge(&hb.snapshot());

        let hu = Histogram::new();
        for &s in a.iter().chain(b.iter()) {
            hu.record(s);
        }
        prop_assert_eq!(merged, hu.snapshot());
    }
}
