//! Property tests: every codec in the workspace round-trips arbitrary
//! well-formed values, and rejects (never panics on) arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;

use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::h323::codec as h323_codec;
use mmcs::h323::msg::{Capability, H245Message, H323Message, Q931Message, RasMessage, RejectReason};
use mmcs::rtp::packet::{RtpHeader, RtpPacket};
use mmcs::rtp::rtcp::{ReportBlock, RtcpPacket};
use mmcs::sip::message::{SipMessage, SipMethod};
use mmcs::sip::sdp::{Sdp, SdpMedia};
use mmcs::streaming::rtsp::{RtspMethod, RtspRequest};
use mmcs::util::xml::Element;
use mmcs::xgsp::media::{MediaDescription, MediaKind};
use mmcs::xgsp::message::{SessionMode, XgspMessage};

fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9._-]{1,16}"
}

proptest! {
    #[test]
    fn rtp_round_trips(
        pt in 0u8..128,
        seq: u16,
        ts: u32,
        ssrc: u32,
        marker: bool,
        csrc in prop::collection::vec(any::<u32>(), 0..=15),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut header = RtpHeader::new(pt, seq, ts, ssrc);
        header.marker = marker;
        header.csrc = csrc;
        let packet = RtpPacket::new(header, Bytes::from(payload));
        let wire = packet.encode();
        prop_assert_eq!(RtpPacket::decode(&wire).unwrap(), packet);
    }

    #[test]
    fn rtp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = RtpPacket::decode(&bytes);
    }

    #[test]
    fn rtcp_compound_round_trips(
        ssrc: u32,
        blocks in prop::collection::vec(
            (any::<u32>(), any::<u8>(), 0u32..0x00FF_FFFF, any::<u32>(), any::<u32>()),
            0..=4,
        ),
        cname in "[a-z0-9@.]{1,32}",
        bye in prop::collection::vec(any::<u32>(), 0..=4),
    ) {
        let reports: Vec<ReportBlock> = blocks
            .iter()
            .map(|(ssrc, lost, cum, seq, jitter)| ReportBlock {
                ssrc: *ssrc,
                fraction_lost: *lost,
                cumulative_lost: *cum,
                highest_seq: *seq,
                jitter: *jitter,
                last_sr: 0,
                delay_since_last_sr: 0,
            })
            .collect();
        let packets = vec![
            RtcpPacket::ReceiverReport { ssrc, reports },
            RtcpPacket::Sdes { chunks: vec![(ssrc, cname)] },
            RtcpPacket::Bye { ssrcs: bye },
        ];
        let wire = RtcpPacket::encode_compound(&packets);
        prop_assert_eq!(RtcpPacket::decode_compound(&wire).unwrap(), packets);
    }

    #[test]
    fn rtcp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = RtcpPacket::decode_compound(&bytes);
    }

    #[test]
    fn xml_round_trips(
        name in token(),
        attrs in prop::collection::vec((token(), "[ -~]{0,24}"), 0..4),
        texts in prop::collection::vec("[ -~]{1,24}", 0..3),
        children in prop::collection::vec(token(), 0..4),
    ) {
        let mut element = Element::new(name);
        for (k, v) in attrs {
            element.set_attr(k, v);
        }
        for child in children {
            element.push_child(Element::new(child));
        }
        // Adjacent text nodes merge on reparse (standard XML), so emit a
        // single substantive text node; whitespace-only runs would be
        // dropped as formatting.
        if !texts.is_empty() {
            element.push_text(format!("x{}", texts.join("")));
        }
        let xml = element.to_xml();
        prop_assert_eq!(Element::parse(&xml).unwrap(), element);
    }

    #[test]
    fn xml_parse_never_panics(input in "[ -~]{0,64}") {
        let _ = Element::parse(&input);
    }

    #[test]
    fn sip_round_trips(
        method_idx in 0usize..9,
        user in token(),
        host in token(),
        headers in prop::collection::vec((token(), "[ -~&&[^\r\n]]{0,32}"), 0..6),
        body in "[ -~]{0,64}",
    ) {
        let methods = [
            SipMethod::Invite, SipMethod::Ack, SipMethod::Bye, SipMethod::Cancel,
            SipMethod::Register, SipMethod::Options, SipMethod::Message,
            SipMethod::Subscribe, SipMethod::Notify,
        ];
        let mut message = SipMessage::request(methods[method_idx], format!("sip:{user}@{host}"));
        for (name, value) in headers {
            // Content-Length is recomputed on the wire; header values are
            // trimmed by the parser, so use trimmed inputs.
            if !name.eq_ignore_ascii_case("content-length") {
                message.headers.push((name, value.trim().to_owned()));
            }
        }
        message.body = body;
        let wire = message.to_wire();
        let parsed = SipMessage::parse(&wire).unwrap();
        prop_assert_eq!(parsed.method(), message.method());
        prop_assert_eq!(&parsed.body, &message.body);
        for (name, value) in &message.headers {
            prop_assert!(parsed.header_all(name).any(|v| v == value));
        }
    }

    #[test]
    fn sip_parse_never_panics(input in "[ -~\r\n]{0,128}") {
        let _ = SipMessage::parse(&input);
    }

    #[test]
    fn sdp_round_trips(
        user in token(),
        addr in token(),
        media in prop::collection::vec(
            (prop::sample::select(vec!["audio", "video", "application"]), any::<u16>(),
             prop::collection::vec(any::<u8>(), 1..4)),
            0..3,
        ),
    ) {
        let mut sdp = Sdp::new(user, addr);
        for (kind, port, formats) in media {
            sdp = sdp.with_media(SdpMedia::new(kind, port, formats));
        }
        prop_assert_eq!(Sdp::parse(&sdp.to_wire()).unwrap(), sdp);
    }

    #[test]
    fn rtsp_round_trips(
        method_idx in 0usize..6,
        path in token(),
        cseq: u32,
    ) {
        let methods = [
            RtspMethod::Options, RtspMethod::Describe, RtspMethod::Setup,
            RtspMethod::Play, RtspMethod::Pause, RtspMethod::Teardown,
        ];
        let request = RtspRequest::new(methods[method_idx], format!("rtsp://h/{path}"), cseq);
        prop_assert_eq!(RtspRequest::parse(&request.to_wire()).unwrap(), request);
    }

    #[test]
    fn xgsp_round_trips(
        raw_name in "[ -~&&[^<>&\"']]{0,23}",
        session in 1u64..10_000,
        user in token(),
        adhoc: bool,
        with_audio: bool,
        with_video: bool,
    ) {
        // Whitespace-only text nodes are XML formatting and would not
        // round-trip; anchor the name with a non-space character.
        let name = format!("n{raw_name}");
        let mut media = Vec::new();
        if with_audio {
            media.push(MediaDescription::new(MediaKind::Audio, "PCMU"));
        }
        if with_video {
            media.push(MediaDescription::new(MediaKind::Video, "H263").with_bitrate(600_000));
        }
        let messages = vec![
            XgspMessage::CreateSession {
                name: name.clone(),
                mode: if adhoc { SessionMode::AdHoc } else { SessionMode::Scheduled },
                media: media.clone(),
            },
            XgspMessage::Join {
                session: session.into(),
                user: user.clone(),
                terminal: 1.into(),
                media,
            },
            XgspMessage::Leave { session: session.into(), user: user.clone() },
            XgspMessage::AppData { session: session.into(), user, body: name },
        ];
        for message in messages {
            let xml = message.to_xml();
            prop_assert_eq!(XgspMessage::parse(&xml).unwrap(), message);
        }
    }

    #[test]
    fn h323_round_trips(
        alias in token(),
        dest in token(),
        endpoint_id: u32,
        call_reference: u16,
        bandwidth: u32,
        channel: u16,
        sequence: u8,
        caps in prop::collection::vec((token(), token()), 0..4),
    ) {
        let messages = vec![
            H323Message::Ras(RasMessage::RegistrationRequest {
                endpoint_alias: alias.clone(),
                signal_address: dest.clone(),
            }),
            H323Message::Ras(RasMessage::AdmissionRequest {
                endpoint_id,
                destination: dest.clone(),
                bandwidth,
            }),
            H323Message::Ras(RasMessage::AdmissionReject {
                reason: RejectReason::InsufficientBandwidth,
            }),
            H323Message::Q931(Q931Message::Setup {
                call_reference,
                caller: alias,
                callee: dest,
            }),
            H323Message::H245(H245Message::TerminalCapabilitySet {
                sequence,
                capabilities: caps
                    .into_iter()
                    .map(|(kind, codec)| Capability { kind, codec })
                    .collect(),
            }),
            H323Message::H245(H245Message::OpenLogicalChannelAck {
                channel,
                media_address: "rtp:1".into(),
            }),
        ];
        for message in messages {
            let wire = h323_codec::encode(&message);
            prop_assert_eq!(h323_codec::decode(&wire).unwrap(), message);
        }
    }

    #[test]
    fn h323_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = h323_codec::decode(&bytes);
    }

    #[test]
    fn topic_display_parse_round_trips(segments in prop::collection::vec(token(), 1..5)) {
        let topic = Topic::from_segments(segments);
        prop_assert_eq!(Topic::parse(&topic.to_string()).unwrap(), topic);
    }

    #[test]
    fn filter_display_parse_round_trips(
        segments in prop::collection::vec(
            prop::sample::select(vec!["a".to_owned(), "b".to_owned(), "*".to_owned()]),
            0..4,
        ),
        tail: bool,
    ) {
        let mut pattern: Vec<String> = segments;
        if tail {
            pattern.push("#".to_owned());
        }
        prop_assume!(!pattern.is_empty());
        let text = pattern.join("/");
        let filter = TopicFilter::parse(&text).unwrap();
        prop_assert_eq!(TopicFilter::parse(&filter.to_string()).unwrap(), filter);
    }
}
