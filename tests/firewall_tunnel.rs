//! Firewall traversal over the simulator: a publisher behind a firewall
//! reaches the broker only through an outbound tunnel via a proxy host.
//! The handshake runs as real simulated message exchange; after
//! establishment, events flow with the tunnel's framing overhead and
//! the extra hop's latency — and a publisher whose tunnel is refused
//! gets nothing through.

use std::sync::Arc;

use mmcs::broker::batch::CostModel;
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::firewall::{TunnelClient, TunnelMessage, TunnelProxy};
use mmcs::broker::simdrv::{BrokerMsg, BrokerProcess, RtpReceiver};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::rtp::packet::payload_type;
use mmcs::rtp::source::{AudioCodec, AudioSource};
use mmcs::sim::net::NicConfig;
use mmcs::sim::{Context, Packet, Process, ProcessId, Simulation};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::time::{SimDuration, SimTime};

/// The firewalled publisher: handshakes the tunnel, then publishes
/// paced audio through the proxy.
struct FirewalledPublisher {
    proxy: ProcessId,
    client: ClientId,
    topic: Topic,
    tunnel: TunnelClient,
    source: AudioSource,
    to_send: u64,
    sent: u64,
    seq: u64,
    registered: bool,
}

impl Process for FirewalledPublisher {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let connect = self.tunnel.start();
        ctx.send(self.proxy, connect, 96);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(message) = packet.payload::<TunnelMessage>() else {
            return;
        };
        if let Ok(Some(reply)) = self.tunnel.on_message(message.clone()) {
            ctx.send(self.proxy, reply, 96);
        }
        if self.tunnel.is_established() && !self.registered {
            self.registered = true;
            // Attach + subscribe travel through the tunnel like any
            // other frame; media starts shortly after.
            ctx.send(
                self.proxy,
                TunnelFrame(BrokerMsg::Attach {
                    client: self.client,
                    process: ctx.me(),
                    profile: Default::default(),
                }),
                self.tunnel.frame_len(96),
            );
            ctx.set_timer(SimDuration::from_millis(50), 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if !self.tunnel.is_established() || self.sent >= self.to_send {
            return;
        }
        let rtp = self.source.next_packet();
        let event = Event::new(
            self.topic.clone(),
            self.client,
            self.seq,
            EventClass::Rtp,
            rtp.encode(),
        )
        .with_published_at(ctx.now())
        .into_shared();
        self.seq += 1;
        let wire = self.tunnel.frame_len(event.wire_len());
        ctx.send(
            self.proxy,
            TunnelFrame(BrokerMsg::Publish {
                client: self.client,
                event,
            }),
            wire,
        );
        self.sent += 1;
        ctx.set_timer(self.source.frame_interval(), 0);
    }
}

/// A broker message wrapped in tunnel framing.
#[derive(Debug, Clone)]
struct TunnelFrame(BrokerMsg);

/// The proxy host process: answers the handshake, then relays frames to
/// the broker (adding the configured extra hop latency is the network's
/// job; the proxy just forwards).
struct ProxyProcess {
    broker: ProcessId,
    proxy: TunnelProxy,
}

impl Process for ProxyProcess {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if let Some(message) = packet.payload::<TunnelMessage>() {
            if let Ok(Some(reply)) = self.proxy.on_message(message.clone()) {
                ctx.send(packet.src, reply, 96);
            }
            return;
        }
        if let Some(TunnelFrame(inner)) = packet.payload::<TunnelFrame>() {
            if !self.proxy.is_established() {
                ctx.count("tunnel.dropped_unestablished", 1);
                return;
            }
            ctx.spend_cpu(SimDuration::from_micros(6));
            ctx.send_shared(self.broker, Arc::new(inner.clone()), packet.wire_bytes);
        }
    }
}

fn run(allowed: bool) -> (u64, u64) {
    let mut sim = Simulation::new(17);
    let inside = sim.add_host("behind-firewall", NicConfig::default());
    let dmz = sim.add_host("proxy", NicConfig::default());
    let broker_host = sim.add_host("broker", NicConfig::default());
    let listener_host = sim.add_host("listener", NicConfig::default());
    sim.set_default_latency(SimDuration::from_micros(350));

    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
    );
    let topic = Topic::parse("fw/audio").unwrap();
    let receiver = sim.add_typed_process(
        listener_host,
        RtpReceiver::new(
            broker,
            ClientId::from_raw(2),
            TopicFilter::exact(&topic),
            payload_type::PCMU,
            SimDuration::from_micros(10),
        ),
    );
    let allow = if allowed {
        vec!["broker-1".to_owned()]
    } else {
        vec![]
    };
    let proxy = sim.add_typed_process(
        dmz,
        ProxyProcess {
            broker,
            proxy: TunnelProxy::new(0xF00D, allow),
        },
    );
    sim.add_typed_process(
        inside,
        FirewalledPublisher {
            proxy,
            client: ClientId::from_raw(1),
            topic,
            tunnel: TunnelClient::new("broker-1"),
            source: AudioSource::new(AudioCodec::Pcmu, 5),
            to_send: 40,
            sent: 0,
            seq: 0,
            registered: false,
        },
    );
    sim.run_until(SimTime::from_secs(5));
    let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
    (stats.received(), sim.counter("tunnel.dropped_unestablished"))
}

#[test]
fn established_tunnel_carries_media_through() {
    let (received, dropped) = run(true);
    assert_eq!(received, 40, "all tunnelled packets delivered");
    assert_eq!(dropped, 0);
}

#[test]
fn refused_tunnel_carries_nothing() {
    let (received, _) = run(false);
    assert_eq!(received, 0, "refused tunnel must stay dark");
}
