//! Concurrency guarantees of the telemetry primitives: eight threads
//! hammering one shared `Counter`/`Gauge`/`Histogram` lose nothing and
//! tear nothing, and the instrumented threaded broker runtime keeps the
//! lock-order deadlock detector silent while metrics are live.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use mmcs::broker::metrics::BrokerMetrics;
use mmcs::broker::threaded::ThreadedBroker;
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::telemetry::{Counter, Gauge, Histogram};

const THREADS: u64 = 8;
const OPS: u64 = 100_000;

#[test]
fn shared_instruments_survive_eight_threads_of_contention() {
    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    let histogram = Arc::new(Histogram::new());

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let counter = Arc::clone(&counter);
        let gauge = Arc::clone(&gauge);
        let histogram = Arc::clone(&histogram);
        handles.push(std::thread::spawn(move || {
            for i in 0..OPS {
                counter.inc();
                // Balanced add/sub pairs: the gauge must come back to 0.
                if i % 2 == 0 {
                    gauge.add(3);
                } else {
                    gauge.sub(3);
                }
                // Spread values across both histogram regimes; the
                // per-thread offset decorrelates bucket contention.
                histogram.record(t * 1000 + (i % 997));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("no telemetry op may panic");
    }

    // Exact totals: nothing lost to races, nothing double-counted.
    assert_eq!(counter.get(), THREADS * OPS);
    assert_eq!(gauge.get(), 0);
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count(), THREADS * OPS);
    // No torn reads: the sum equals what the loops deterministically
    // recorded, independent of interleaving.
    let expected_sum: u64 = (0..THREADS)
        .map(|t| (0..OPS).map(|i| t * 1000 + (i % 997)).sum::<u64>())
        .sum();
    assert_eq!(snapshot.sum(), expected_sum);
    assert_eq!(snapshot.min(), Some(0));
    assert_eq!(snapshot.max(), Some((THREADS - 1) * 1000 + 996));
}

/// The instrumented broker loop under churn, with the PR 2 lock-order
/// detector watching: installing metrics must not add any lock the
/// detector could object to (instruments are lock-free atomics).
#[test]
fn instrumented_threaded_broker_counts_exactly_and_stays_deadlock_free() {
    let registry = mmcs::telemetry::Registry::new();
    let metrics = BrokerMetrics::register(&registry, "broker");
    let broker = Arc::new(ThreadedBroker::spawn_with_metrics(Arc::clone(&metrics)));
    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("tel/#").unwrap());

    const PUBLISHERS: u64 = 4;
    const EVENTS: u64 = 500;
    let mut handles = Vec::new();
    for worker in 0..PUBLISHERS {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            for i in 0..EVENTS {
                publisher.publish(
                    Topic::parse(&format!("tel/{worker}")).unwrap(),
                    Bytes::from(format!("{i}").into_bytes()),
                );
            }
        }));
    }
    for handle in handles {
        handle.join().expect("publisher thread must not panic");
    }

    let mut received = 0u64;
    while subscriber.recv_timeout(Duration::from_millis(500)).is_some() {
        received += 1;
        if received == PUBLISHERS * EVENTS {
            break;
        }
    }
    assert_eq!(received, PUBLISHERS * EVENTS);
    assert_eq!(metrics.events_in.get(), PUBLISHERS * EVENTS);
    assert_eq!(metrics.deliveries.get(), PUBLISHERS * EVENTS);
    assert_eq!(metrics.fanout.snapshot().count(), PUBLISHERS * EVENTS);
    // Publisher clients dropped at thread exit enqueue Detach commands
    // behind their publishes, so the last delivery can land while those
    // are still queued; wait (bounded) for the loop to drain them, then
    // every enqueue must have been matched by a dequeue.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while metrics.queue_depth.get() != 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(metrics.queue_depth.get(), 0);

    #[cfg(debug_assertions)]
    {
        use parking_lot::deadlock;
        assert!(deadlock::is_active(), "debug build must carry the detector");
        let broker_holds: Vec<_> = deadlock::long_holds()
            .into_iter()
            .filter(|h| h.site.contains("crates/broker"))
            .collect();
        assert!(
            broker_holds.is_empty(),
            "instrumentation must not stretch any broker lock hold: {broker_holds:?}"
        );
    }
}
