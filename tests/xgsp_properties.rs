//! Property tests on the XGSP session server: invariants that must hold
//! under arbitrary interleavings of create/join/leave/floor/terminate.

use proptest::prelude::*;

use mmcs::xgsp::message::{FloorOp, SessionMode, XgspMessage};
use mmcs::xgsp::server::{ServerOutput, SessionServer};
use mmcs_util::id::SessionId;

#[derive(Debug, Clone)]
enum Op {
    Create,
    Join(usize, usize),      // user, session slot
    Leave(usize, usize),
    FloorRequest(usize, usize),
    FloorRelease(usize, usize),
    Terminate(usize, usize), // by user
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::Create),
        4 => (0usize..5, 0usize..3).prop_map(|(u, s)| Op::Join(u, s)),
        3 => (0usize..5, 0usize..3).prop_map(|(u, s)| Op::Leave(u, s)),
        2 => (0usize..5, 0usize..3).prop_map(|(u, s)| Op::FloorRequest(u, s)),
        2 => (0usize..5, 0usize..3).prop_map(|(u, s)| Op::FloorRelease(u, s)),
        1 => (0usize..5, 0usize..3).prop_map(|(u, s)| Op::Terminate(u, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn session_server_invariants(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let users = ["u0", "u1", "u2", "u3", "u4"];
        let mut server = SessionServer::new();
        let mut created: Vec<SessionId> = Vec::new();

        for op in ops {
            match op {
                Op::Create => {
                    let outputs = server.handle(
                        None,
                        XgspMessage::CreateSession {
                            name: "s".into(),
                            mode: SessionMode::Scheduled,
                            media: vec![],
                        },
                    );
                    if let Some(id) = outputs.iter().find_map(|o| match o {
                        ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => {
                            Some(*session)
                        }
                        _ => None,
                    }) {
                        created.push(id);
                    }
                }
                Op::Join(u, s) => {
                    if let Some(&session) = created.get(s) {
                        let _ = server.handle(
                            Some(users[u]),
                            XgspMessage::Join {
                                session,
                                user: users[u].into(),
                                terminal: 1.into(),
                                media: vec![],
                            },
                        );
                    }
                }
                Op::Leave(u, s) => {
                    if let Some(&session) = created.get(s) {
                        let _ = server.handle(
                            Some(users[u]),
                            XgspMessage::Leave {
                                session,
                                user: users[u].into(),
                            },
                        );
                    }
                }
                Op::FloorRequest(u, s) => {
                    if let Some(&session) = created.get(s) {
                        let _ = server.handle(
                            Some(users[u]),
                            XgspMessage::Floor {
                                session,
                                op: FloorOp::Request,
                                user: users[u].into(),
                            },
                        );
                    }
                }
                Op::FloorRelease(u, s) => {
                    if let Some(&session) = created.get(s) {
                        let _ = server.handle(
                            Some(users[u]),
                            XgspMessage::Floor {
                                session,
                                op: FloorOp::Release,
                                user: users[u].into(),
                            },
                        );
                    }
                }
                Op::Terminate(u, s) => {
                    if let Some(&session) = created.get(s) {
                        let _ = server.handle(
                            Some(users[u]),
                            XgspMessage::TerminateSession { session },
                        );
                    }
                }
            }

            // Invariants across every live session, after every op:
            for id in server.session_ids().collect::<Vec<_>>() {
                let session = server.session(id).expect("listed session exists");
                // 1. A non-empty session always has exactly one chair.
                if session.member_count() > 0 {
                    let chairs = session
                        .members()
                        .filter(|m| m.role == mmcs::xgsp::session::Role::Chair)
                        .count();
                    prop_assert_eq!(chairs, 1, "exactly one chair");
                    prop_assert!(session.chair().is_some());
                }
                // 2. The floor holder, if any, is a member.
                if let Some(holder) = session.floor().holder() {
                    prop_assert!(
                        session.member(holder).is_some(),
                        "floor holder {} is not a member",
                        holder
                    );
                }
                // 3. Every queued floor requester is a member.
                for waiting in session.floor().queue() {
                    prop_assert!(session.member(waiting).is_some());
                }
                // 4. Topics are unique per session.
                let mut topics: Vec<&str> =
                    session.streams().iter().map(|s| s.topic.as_str()).collect();
                let before = topics.len();
                topics.sort_unstable();
                topics.dedup();
                prop_assert_eq!(topics.len(), before, "duplicate topics");
            }
        }
    }
}
