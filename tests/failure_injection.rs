//! Failure injection: the system under partial failure — lossy links,
//! broker partitions, crashing clients, overload drops, protocol abuse.

use bytes::Bytes;
use mmcs::broker::batch::CostModel;
use mmcs::broker::network::{BrokerNetwork, NetworkError};
use mmcs::broker::simdrv::{BrokerProcess, PublisherConfig, RtpReceiver, VideoPublisher};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::rtp::packet::payload_type;
use mmcs::rtp::source::{VideoSource, VideoSourceConfig};
use mmcs::sim::net::NicConfig;
use mmcs::sim::{LinkConfig, Simulation};
use mmcs::sip::message::{SipMessage, SipMethod};
use mmcs::xgsp::message::XgspMessage;
use mmcs::xgsp::server::{ServerOutput, SessionServer};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rate::Bandwidth;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

/// A lossy access link: receivers detect the loss via sequence gaps and
/// their RTCP-style stats agree with the simulator's drop counters.
#[test]
fn receivers_measure_injected_loss() {
    let mut sim = Simulation::new(11);
    let sender_host = sim.add_host("sender", NicConfig::default());
    let broker_host = sim.add_host("broker", NicConfig::default());
    let client_host = sim.add_host("client", NicConfig::default());
    // 10% loss between broker and the client machine.
    sim.set_link(
        broker_host,
        client_host,
        LinkConfig {
            latency: SimDuration::from_micros(200),
            loss: 0.10,
            ..LinkConfig::default()
        },
    );
    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
    );
    let receiver = sim.add_typed_process(
        client_host,
        RtpReceiver::new(
            broker,
            ClientId::from_raw(2),
            TopicFilter::parse("s/video").unwrap(),
            payload_type::H263,
            SimDuration::from_micros(10),
        ),
    );
    let mut config = PublisherConfig::new(
        broker,
        ClientId::from_raw(1),
        Topic::parse("s/video").unwrap(),
    );
    config.max_packets = 1000;
    let source = VideoSource::new(VideoSourceConfig::default(), 1, DetRng::new(3));
    sim.add_typed_process(sender_host, VideoPublisher::new(config, source));
    sim.run_until(SimTime::from_secs(60));

    let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
    let dropped = sim.counter("net.dropped.loss");
    assert!(dropped > 0, "loss should have occurred");
    // The receiver's sequence-gap estimate matches the true drops
    // exactly on an otherwise in-order path (trailing losses after the
    // last received packet are invisible to the estimator).
    assert!(
        stats.lost() <= dropped && stats.lost() + 15 >= dropped,
        "estimated {} vs injected {}",
        stats.lost(),
        dropped
    );
    assert!((0.05..0.20).contains(&stats.loss_fraction()));
}

/// Broker overload: a undersized relay NIC drops tail packets; the
/// system degrades (loss) instead of deadlocking.
#[test]
fn overload_degrades_with_queue_drops() {
    let mut sim = Simulation::new(5);
    let sender_host = sim.add_host("sender", NicConfig::default());
    let broker_host = sim.add_host(
        "broker",
        NicConfig {
            bandwidth: Bandwidth::from_kbps(400), // < 600 Kbps stream
            queue_bytes: 32 * 1024,
            ..NicConfig::default()
        },
    );
    let client_host = sim.add_host("client", NicConfig::default());
    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
    );
    let receiver = sim.add_typed_process(
        client_host,
        RtpReceiver::new(
            broker,
            ClientId::from_raw(2),
            TopicFilter::parse("s/video").unwrap(),
            payload_type::H263,
            SimDuration::from_micros(10),
        ),
    );
    let mut config = PublisherConfig::new(
        broker,
        ClientId::from_raw(1),
        Topic::parse("s/video").unwrap(),
    );
    config.max_packets = 500;
    let source = VideoSource::new(VideoSourceConfig::default(), 1, DetRng::new(9));
    sim.add_typed_process(sender_host, VideoPublisher::new(config, source));
    sim.run_until(SimTime::from_secs(30));

    assert!(sim.counter("net.dropped.queue") > 0, "queue should overflow");
    let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
    assert!(stats.received() > 0, "some media still flows");
    assert!(stats.loss_fraction() > 0.2, "overload must be visible");
}

/// A broker link flaps mid-conference: delivery stops during the
/// partition and resumes after healing, with interest re-advertised.
#[test]
fn broker_partition_heals() {
    let mut net = BrokerNetwork::new();
    let b1 = net.add_broker();
    let b2 = net.add_broker();
    net.link(b1, b2).unwrap();
    let publisher = net.attach_client(b1);
    let subscriber = net.attach_client(b2);
    net.subscribe(subscriber, TopicFilter::parse("conf/#").unwrap())
        .unwrap();

    let topic = Topic::parse("conf/av").unwrap();
    net.publish(publisher, topic.clone(), Bytes::from_static(b"1"));
    assert_eq!(net.drain_deliveries().len(), 1);

    net.unlink(b1, b2).unwrap();
    net.publish(publisher, topic.clone(), Bytes::from_static(b"2"));
    assert!(net.drain_deliveries().is_empty(), "partitioned");

    net.link(b1, b2).unwrap();
    net.publish(publisher, topic, Bytes::from_static(b"3"));
    let after = net.drain_deliveries();
    assert_eq!(after.len(), 1);
    assert_eq!(&after[0].event.payload[..], b"3");
}

/// A client crash (detach) mid-session: XGSP cleans membership, the
/// floor is freed, and the broker withdraws interest.
#[test]
fn client_crash_cleans_up() {
    let mut server = SessionServer::new();
    let outputs = server.handle(
        None,
        XgspMessage::CreateSession {
            name: "fragile".into(),
            mode: mmcs::xgsp::message::SessionMode::Scheduled,
            media: vec![],
        },
    );
    let session = outputs
        .iter()
        .find_map(|o| match o {
            ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => Some(*session),
            _ => None,
        })
        .unwrap();
    for user in ["alice", "bob"] {
        server.handle(
            Some(user),
            XgspMessage::Join {
                session,
                user: user.into(),
                terminal: 1.into(),
                media: vec![],
            },
        );
    }
    // Alice takes the floor, then "crashes" (the gateway reports Leave).
    server.handle(
        Some("alice"),
        XgspMessage::Floor {
            session,
            op: mmcs::xgsp::message::FloorOp::Request,
            user: "alice".into(),
        },
    );
    assert_eq!(server.session(session).unwrap().floor().holder(), Some("alice"));
    server.handle(
        Some("alice"),
        XgspMessage::Leave {
            session,
            user: "alice".into(),
        },
    );
    let remaining = server.session(session).unwrap();
    assert_eq!(remaining.member_count(), 1);
    assert_eq!(remaining.floor().holder(), None);
    assert_eq!(remaining.chair(), Some("bob"), "chair failed over");
}

/// Protocol abuse at the SIP gateway: garbage dialogs and unknown
/// conferences produce clean SIP errors, never panics.
#[test]
fn sip_gateway_rejects_abuse() {
    let mut mmcs = mmcs::global_mmcs::system::GlobalMmcs::new();
    // BYE for a dialog that never existed.
    let stray_bye = SipMessage::request(SipMethod::Bye, "sip:conf-1@mmcs.example")
        .with_header("Via", "SIP/2.0/UDP x;branch=z9hG4bK9")
        .with_header("Call-ID", "ghost")
        .with_header("CSeq", "1 BYE");
    let replies = mmcs.handle_sip(&stray_bye);
    assert_eq!(replies[0].status(), Some(481));
    // INVITE to a dead conference id.
    let invite = SipMessage::request(SipMethod::Invite, "sip:conf-424242@mmcs.example")
        .with_header("Via", "SIP/2.0/UDP x;branch=z9hG4bKa")
        .with_header("From", "<sip:m@x>;tag=1")
        .with_header("To", "<sip:conf-424242@mmcs.example>")
        .with_header("Call-ID", "dead")
        .with_header("CSeq", "1 INVITE");
    let replies = mmcs.handle_sip(&invite);
    assert_eq!(replies[0].status(), Some(404));
    // A REGISTER with no To header.
    let broken = SipMessage::request(SipMethod::Register, "sip:mmcs.example")
        .with_header("Via", "SIP/2.0/UDP x;branch=z9hG4bKb");
    let replies = mmcs.handle_sip(&broken);
    assert_eq!(replies[0].status(), Some(400));
}

/// Detaching an unknown client and double-detach produce errors, not
/// corruption.
#[test]
fn broker_detach_abuse() {
    let mut net = BrokerNetwork::new();
    let broker = net.add_broker();
    let client = net.attach_client(broker);
    assert!(net.detach_client(client).is_ok());
    assert!(matches!(
        net.detach_client(client),
        Err(NetworkError::UnknownClient(_))
    ));
    // The broker still works for new clients.
    let publisher = net.attach_client(broker);
    let subscriber = net.attach_client(broker);
    net.subscribe(subscriber, TopicFilter::parse("t").unwrap())
        .unwrap();
    net.publish(publisher, Topic::parse("t").unwrap(), Bytes::new());
    assert_eq!(net.drain_deliveries().len(), 1);
}

#[test]
fn broker_crash_restart_mid_reliable_stream_recovers() {
    // A mid-chain broker crashes while reliable streams are in flight
    // and restarts with all volatile state (routes, client attachments,
    // peer links) gone. The senders' retransmission timers plus the
    // rejoin/re-advertise protocol must resume every conference stream
    // with no losses, duplicates or reordering surfacing past the
    // reliable layer.
    use mmcs_chaos::scenario::{self, ScenarioConfig};
    use mmcs_chaos::schedule::{Fault, FaultKind, Target};

    let config = ScenarioConfig {
        horizon_ms: 6000,
        settle_ms: 8000,
        events_per_pair: 80,
        ..ScenarioConfig::for_seed(7)
    };
    // Crash broker 1 from 2s to 4s: pair (0,3) and pair (3,0) transit
    // it, pair (1,2) terminates on it — both roles are exercised.
    let faults = [Fault {
        kind: FaultKind::BrokerCrash,
        target: Target::Broker(1),
        start_ms: 2000,
        end_ms: 4000,
    }];
    let report = scenario::run(&config, &faults);
    let violations = mmcs_chaos::check(&report);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert_eq!(report.counters.iter().find(|(n, _)| n == "broker.restarted").map(|(_, v)| *v), Some(1));
    // The crash must actually have bitten: frames queued to or through
    // broker 1 were lost and recovered by retransmission.
    let transit_retransmissions: u64 = report.pairs.iter().map(|p| p.retransmissions).sum();
    assert!(
        transit_retransmissions > 0,
        "crash window produced no retransmissions — fault did not bite"
    );
    for (k, pair) in report.pairs.iter().enumerate() {
        assert_eq!(pair.offered, 80, "pair {k} did not finish offering");
        assert_eq!(
            pair.delivered,
            (0..80).collect::<Vec<u64>>(),
            "pair {k} stream broken across the crash"
        );
        assert!(pair.sender_idle, "pair {k} sender still has unacked frames");
    }
}
