//! Proves the routing fast path is allocation-free: once a topic's plan
//! is memoized and the caller's action buffer has grown to the fan-out,
//! publishing does not touch the heap at all — including with full
//! telemetry installed (counters and the fan-out histogram are relaxed
//! atomic increments into preallocated storage), and including the wire
//! encode of every routed event when the frame buffer comes from a warm
//! buffer pool. An unpooled control phase re-encodes the same events
//! into fresh `BytesMut` buffers and shows the allocations come back,
//! so the zero reading measures the pool, not a blind spot. A final
//! phase stacks the federation layer on top: resolving gossip interest
//! targets (`targets_for`, memoized per table stamp) and wrapping the
//! event in the 16-byte `ClusterFrame` envelope must also be free once
//! warm.
//!
//! This file holds exactly one test so the counting allocator sees no
//! traffic from sibling tests in the same binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use mmcs::broker::cluster::{encode_event_frame, CLUSTER_HEADER_LEN};
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::gossip::GossipState;
use mmcs::broker::metrics::BrokerMetrics;
use mmcs::broker::node::{Action, BrokerNode, Input, Origin};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::broker::wire;
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::pool;

struct CountingAlloc;

thread_local! {
    // Per-thread so the libtest harness threads cannot perturb the
    // measurement. `const` init keeps the TLS access itself alloc-free.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn bump() {
    // `try_with` so allocations during TLS teardown don't panic.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_publish_allocates_nothing() {
    const FANOUT: usize = 100;
    const PUBLISHES: u64 = 1000;

    let mut node = BrokerNode::new(BrokerId::from_raw(1));
    let metrics = BrokerMetrics::detached();
    node.set_metrics(Arc::clone(&metrics));
    let topic = Topic::parse("conf/1/video").unwrap();
    for i in 0..FANOUT {
        let client = ClientId::from_raw(i as u64 + 1);
        node.handle(Input::AttachClient {
            client,
            profile: Default::default(),
        })
        .unwrap();
        node.handle(Input::Subscribe {
            client,
            filter: TopicFilter::exact(&topic),
        })
        .unwrap();
    }
    let publisher = ClientId::from_raw(9999);
    node.handle(Input::AttachClient {
        client: publisher,
        profile: Default::default(),
    })
    .unwrap();
    let event = Event::new(
        topic,
        publisher,
        0,
        EventClass::Rtp,
        Bytes::from(vec![0u8; 1000]),
    )
    .into_shared();

    // Warm-up: builds and memoizes the plan, grows the action buffer.
    let mut actions: Vec<Action> = Vec::new();
    node.handle_into(
        Input::Publish {
            origin: Origin::Client(publisher),
            event: Arc::clone(&event),
        },
        &mut actions,
    )
    .unwrap();
    assert_eq!(actions.len(), FANOUT);
    let generation = node.generation();

    let before = thread_allocs();
    for _ in 0..PUBLISHES {
        actions.clear();
        node.handle_into(
            Input::Publish {
                origin: Origin::Client(publisher),
                event: Arc::clone(&event),
            },
            &mut actions,
        )
        .unwrap();
        assert_eq!(actions.len(), FANOUT);
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "warm route path must not allocate ({} allocations across {} publishes)",
        after - before,
        PUBLISHES,
    );
    // The plan was served from cache the whole time, and telemetry saw
    // every one of those warm publishes without costing an allocation.
    assert_eq!(node.generation(), generation);
    assert_eq!(node.plan_cache_len(), 1);
    // The warm-up publish built the plan (one miss); every timed
    // publish hit the cache.
    assert_eq!(metrics.route_cache_misses.get(), 1);
    assert_eq!(metrics.route_cache_hits.get(), PUBLISHES);
    assert_eq!(metrics.events_in.get(), PUBLISHES + 1);
    assert_eq!(metrics.fanout.snapshot().count(), PUBLISHES + 1);

    // Phase 2 — publish → deliver → wire-encode, pooled. One warm-up
    // encode charges the pool's one-time class allocation; after that,
    // acquire → encode_into → drop recycles the same buffer and the
    // whole loop stays off the heap. (Plain drop, not `freeze`: the
    // shared-`Bytes` handle costs one `Arc`, which belongs on the
    // cross-thread hand-off path, not in this proof.)
    {
        let mut warm = pool::acquire(wire::encoded_len(&event));
        wire::encode_into(&event, &mut warm);
        drop(warm);
    }
    let pool_before = pool::stats();
    let before = thread_allocs();
    for _ in 0..PUBLISHES {
        actions.clear();
        node.handle_into(
            Input::Publish {
                origin: Origin::Client(publisher),
                event: Arc::clone(&event),
            },
            &mut actions,
        )
        .unwrap();
        assert_eq!(actions.len(), FANOUT);
        let mut frame = pool::acquire(wire::encoded_len(&event));
        wire::encode_into(&event, &mut frame);
        assert_eq!(frame.len(), wire::encoded_len(&event));
        drop(frame);
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "warm publish→deliver→wire-encode path must not allocate \
         ({} allocations across {} publishes)",
        after - before,
        PUBLISHES,
    );
    let pool_after = pool::stats();
    assert_eq!(
        pool_after.hits - pool_before.hits,
        PUBLISHES,
        "every encode was served from the warm free list"
    );
    assert_eq!(pool_after.misses, pool_before.misses);

    // Phase 3 — control: the same encode into a fresh `BytesMut` per
    // publish. If the counting allocator were blind to this path the
    // zero above would be meaningless; instead every iteration's buffer
    // shows up.
    let before = thread_allocs();
    for _ in 0..PUBLISHES {
        let mut frame = BytesMut::with_capacity(wire::encoded_len(&event));
        wire::encode_into(&event, &mut frame);
        assert_eq!(frame.len(), wire::encoded_len(&event));
    }
    let after = thread_allocs();
    assert!(
        after - before >= PUBLISHES,
        "unpooled control must allocate per publish (saw {} across {})",
        after - before,
        PUBLISHES,
    );

    // Phase 4 — the federation layer on top of the same event. One
    // anti-entropy exchange teaches node 0 that node 1 subscribed a
    // filter covering the topic; from then on the cluster publish hot
    // path is `targets_for` (an `Arc` clone out of the stamp-keyed
    // route cache) plus the 16-byte envelope encode into a pooled
    // frame. The warm-up block charges the one-time costs: the target
    // cache entry and any new pool class for the envelope-sized frame.
    let filter = TopicFilter::parse("conf/1/#").unwrap();
    let mut remote = GossipState::new(1, 2);
    assert!(remote.subscribe(&filter));
    let mut local = GossipState::new(0, 2);
    let mut digest = Vec::new();
    local.digest_into(&mut digest);
    let fresh = remote.entries_newer_than(&digest);
    assert_eq!(local.apply(&fresh), 1);
    {
        let targets = local.targets_for(&event.topic);
        assert_eq!(&targets[..], &[1]);
        let generation = local.entry(1).generation;
        let frame = encode_event_frame(0, 1, 0, generation, &event);
        assert_eq!(frame.len(), CLUSTER_HEADER_LEN + wire::encoded_len(&event));
        drop(frame);
    }
    let pool_before = pool::stats();
    let before = thread_allocs();
    for _ in 0..PUBLISHES {
        let targets = local.targets_for(&event.topic);
        assert_eq!(targets.len(), 1);
        for &target in targets.iter() {
            let generation = local.entry(target).generation;
            let frame = encode_event_frame(0, target, 0, generation, &event);
            assert_eq!(frame.len(), CLUSTER_HEADER_LEN + wire::encoded_len(&event));
            drop(frame);
        }
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "warm federation target-resolve + envelope-encode path must not \
         allocate ({} allocations across {} publishes)",
        after - before,
        PUBLISHES,
    );
    let pool_after = pool::stats();
    assert_eq!(
        pool_after.hits - pool_before.hits,
        PUBLISHES,
        "every envelope frame was served from the warm free list"
    );
    assert_eq!(pool_after.misses, pool_before.misses);
}
