//! Cross-protocol integration: the whole Global-MMCS stack in one
//! process — SIP, H.323, IM, Admire, web services, calendar, media.

use mmcs::admire::service::AdmireService;
use mmcs::global_mmcs::bridge::CommunityBridge;
use mmcs::global_mmcs::system::{Egress, EndpointKind, GlobalMmcs};
use mmcs::global_mmcs::web::XgspWebServer;
use mmcs::h323::endpoint::{EndpointState, H323Endpoint};
use mmcs::im::stanza::Stanza;
use mmcs::rtp::source::{AudioCodec, AudioSource};
use mmcs::sip::message::{SipMessage, SipMethod};
use mmcs::soap::service::SoapClient;
use mmcs::xgsp::message::XgspMessage;
use mmcs_util::id::TerminalId;
use mmcs_util::time::{SimDuration, SimTime};

fn sip_invite(uri: &str, from: &str, call_id: &str) -> SipMessage {
    SipMessage::request(SipMethod::Invite, uri)
        .with_header("Via", "SIP/2.0/UDP ua;branch=z9hG4bK1")
        .with_header("From", format!("<{from}>;tag=1"))
        .with_header("To", format!("<{uri}>"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", "1 INVITE")
}

/// A SIP UA and an H.323 terminal meet in one session; media published
/// by the SIP side reaches a subscriber; chat relays through XGSP.
#[test]
fn sip_and_h323_share_a_conference_with_media() {
    let mut mmcs = GlobalMmcs::new();

    // SIP side creates the conference.
    let replies = mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-1",
    ));
    assert_eq!(replies[0].status(), Some(200));
    let session = mmcs.session_server().session_ids().next().unwrap();

    // H.323 side joins the same conference.
    let mut endpoint = H323Endpoint::new("bob-h323");
    let mut queue = vec![endpoint.start()];
    let mut placed = false;
    while let Some(message) = queue.pop() {
        for reply in mmcs.handle_h323(&message) {
            queue.extend(endpoint.on_message(&reply));
        }
        if endpoint.state() == EndpointState::Registered && !placed {
            placed = true;
            queue.push(endpoint.place_call(format!("conf-{}", session.value()), 6400));
        }
    }
    assert_eq!(endpoint.state(), EndpointState::InCall);
    let conference = mmcs.session_server().session(session).unwrap();
    assert_eq!(conference.member_count(), 2);
    assert!(conference.member("sip:alice@example.org").is_some());
    assert!(conference.member("bob-h323").is_some());

    // Media: alice publishes audio on the session topic; a subscriber
    // bound to bob's side receives it.
    let topic = format!("globalmmcs/session-{}/audio", session.value());
    let alice_media = mmcs.attach_media_client("alice", &topic).unwrap();
    let bob_media = mmcs.attach_media_client("bob", &topic).unwrap();
    let mut source = AudioSource::new(AudioCodec::Pcmu, 0xA);
    let mut bob_received = 0;
    for i in 0..25u64 {
        mmcs.set_now(SimTime::ZERO + SimDuration::from_millis(20 * i));
        let packet = source.next_packet();
        for egress in mmcs.publish_rtp(alice_media, &topic, &packet) {
            if matches!(egress, Egress::Media { client, .. } if client == bob_media) {
                bob_received += 1;
            }
        }
    }
    assert_eq!(bob_received, 25);
    // The media service fed the stream tap too.
    assert_eq!(mmcs.helix().fed_count(&topic), 25);

    // Chat (XGSP app-data) relays from alice to bob only.
    mmcs.bind_endpoint("bob-h323", EndpointKind::Im("bob@mmcs".into()));
    let outputs = mmcs.handle_xgsp(
        Some("sip:alice@example.org"),
        XgspMessage::AppData {
            session,
            user: "sip:alice@example.org".into(),
            body: "hello from SIP land".into(),
        },
    );
    let notified: Vec<&str> = outputs
        .iter()
        .filter_map(|o| match o {
            mmcs::xgsp::server::ServerOutput::Notify { user, .. } => Some(user.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(notified, vec!["bob-h323"]);
}

/// The scheduled-mode flow: book via SOAP, open at the due time, join
/// by web service, terminate.
#[test]
fn scheduled_meeting_via_web_services() {
    let web = XgspWebServer::new();
    let mut soap = web.soap_server();

    let response = soap.handle(&SoapClient::request(
        "schedule",
        &[
            ("room", "auditorium"),
            ("organizer", "gcf"),
            ("title", "community grids talk"),
            ("startSecs", "100"),
            ("durationSecs", "1800"),
            ("invitees", "wu,uyar"),
        ],
    ));
    SoapClient::decode_response("schedule", &response).unwrap();

    assert!(web.open_due_meetings(SimTime::from_secs(99)).is_empty());
    let opened = web.open_due_meetings(SimTime::from_secs(100));
    assert_eq!(opened.len(), 1);
    let session_id = opened[0].value().to_string();

    // Two invitees join over SOAP.
    for user in ["wu", "uyar"] {
        let response = soap.handle(&SoapClient::request(
            "join",
            &[("sessionId", &session_id), ("user", user), ("terminal", "2")],
        ));
        let topics = SoapClient::decode_response("join", &response).unwrap();
        assert!(topics.iter().any(|(k, _)| k == "topic-audio"));
    }
    {
        let state = web.state();
        let state = state.borrow();
        let session = state.sessions.session(opened[0]).unwrap();
        assert_eq!(session.member_count(), 3);
        assert_eq!(session.chair(), Some("gcf"));
    }

    // Organizer terminates.
    let response = soap.handle(&SoapClient::request(
        "terminate",
        &[("sessionId", &session_id), ("user", "gcf")],
    ));
    SoapClient::decode_response("terminate", &response).unwrap();
    assert_eq!(web.state().borrow().sessions.session_count(), 0);
}

/// IM room escalation wires presence, chat, escalation and invitation
/// delivery together.
#[test]
fn im_room_escalates_to_meeting_with_invites() {
    let mut mmcs = GlobalMmcs::new();
    for user in ["alice", "bob", "carol", "dave"] {
        mmcs.handle_stanza(Stanza::Iq {
            from: user.into(),
            kind: "set".into(),
            query: "join-room".into(),
            arg: "war-room".into(),
        });
    }
    let escalation = mmcs.escalate_room("war-room", "carol").unwrap();
    assert_eq!(escalation.invites.len(), 3);
    let session = mmcs.session_server().session(escalation.session).unwrap();
    assert_eq!(session.chair(), Some("carol"));

    // Invitees join through plain XGSP.
    for (i, user) in ["alice", "bob"].iter().enumerate() {
        let outputs = mmcs.handle_xgsp(
            Some(user),
            XgspMessage::Join {
                session: escalation.session,
                user: (*user).into(),
                terminal: TerminalId::from_raw(10 + i as u64),
                media: vec![],
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            mmcs::xgsp::server::ServerOutput::Reply(XgspMessage::JoinAck { .. })
        )));
    }
    assert_eq!(
        mmcs.session_server()
            .session(escalation.session)
            .unwrap()
            .member_count(),
        3
    );
}

/// The Admire bridge mirrors membership and relays media through the
/// rendezvous agents.
#[test]
fn admire_bridge_end_to_end() {
    let mut mmcs = GlobalMmcs::new();
    // Create a session with one local member.
    let replies = mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-b",
    ));
    assert_eq!(replies[0].status(), Some(200));
    let session = mmcs.session_server().session_ids().next().unwrap();

    let mut bridge = CommunityBridge::new(
        "admire.cn",
        Box::new(AdmireService::new("admire.cn", "rdv.admire.cn")),
        "rdv.mmcs.example:8000",
    );
    let remote = bridge.bridge_session(session, "joint").unwrap();
    assert!(remote.starts_with("rdv.admire.cn:"));
    bridge
        .mirror_join(session, "sip:alice@example.org", TerminalId::from_raw(1))
        .unwrap();

    // Media relays through our agent at the rendezvous.
    let bridged = bridge.bridged_mut(session).unwrap();
    for _ in 0..10 {
        bridged
            .agent
            .relay(mmcs::admire::agent::Direction::Outbound, 1000)
            .unwrap();
    }
    assert_eq!(bridged.agent.outbound_stats(), (10, 10_000));
    bridge.unbridge_session(session).unwrap();
}

/// The directory listing renders communities and live sessions.
#[test]
fn directory_listing_reflects_state() {
    let mut mmcs = GlobalMmcs::new();
    mmcs.communities_mut()
        .register("admire.cn", "Admire, China")
        .unwrap();
    mmcs.communities_mut()
        .publish_server("admire.cn", "AdmireConferenceService", "http://a/soap", "conference")
        .unwrap();
    mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-d",
    ));
    let listing = mmcs.directory_listing();
    let xml = listing.to_xml();
    assert!(xml.contains("admire.cn"));
    assert!(xml.contains("AdmireConferenceService"));
    let sessions = listing.child("sessions").unwrap();
    assert_eq!(sessions.children_named("session").count(), 1);
}

/// Publishing to a topic nobody (but the media tap) subscribes to still
/// feeds streaming, and returns no client egress.
#[test]
fn media_tap_alone_consumes_unwatched_streams() {
    let mut mmcs = GlobalMmcs::new();
    mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-m",
    ));
    let session = mmcs.session_server().session_ids().next().unwrap();
    let topic = format!("globalmmcs/session-{}/audio", session.value());
    let publisher = mmcs.attach_media_client("alice", &topic).unwrap();
    let mut source = AudioSource::new(AudioCodec::Pcmu, 1);
    let egress = mmcs.publish_rtp(publisher, &topic, &source.next_packet());
    // Publisher is itself subscribed (it attached to the topic), so the
    // only egress is its own loopback.
    assert!(egress
        .iter()
        .all(|e| matches!(e, Egress::Media { client, .. } if *client == publisher)));
    assert_eq!(mmcs.helix().fed_count(&topic), 1);
}

/// Video switching follows audio activity and respects chair pins,
/// driven through the public GlobalMmcs surface.
#[test]
fn video_switching_follows_activity_and_pins() {
    let mut mmcs = GlobalMmcs::new();
    let replies = mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-v",
    ));
    assert_eq!(replies[0].status(), Some(200));
    let session = mmcs.session_server().session_ids().next().unwrap();
    mmcs.handle_xgsp(
        Some("bob"),
        XgspMessage::Join {
            session,
            user: "bob".into(),
            terminal: TerminalId::from_raw(2),
            media: vec![],
        },
    );

    // Alice talks: she is selected.
    mmcs.set_now(SimTime::ZERO);
    mmcs.report_audio_level(session, "sip:alice@example.org", 0.8);
    assert_eq!(mmcs.selected_video(session), Some("sip:alice@example.org"));

    // The chair pins bob via XGSP media control.
    mmcs.handle_xgsp(
        Some("sip:alice@example.org"),
        XgspMessage::MediaControl {
            session,
            user: "bob".into(),
            op: mmcs::xgsp::message::MediaOp::Select,
            kind: "video".into(),
        },
    );
    assert_eq!(mmcs.selected_video(session), Some("bob"));
    // Loud audio does not displace the pin.
    mmcs.set_now(SimTime::ZERO + SimDuration::from_secs(10));
    mmcs.report_audio_level(session, "sip:alice@example.org", 1.0);
    assert_eq!(mmcs.selected_video(session), Some("bob"));

    // Bob leaves: the pin clears with him.
    mmcs.handle_xgsp(
        Some("bob"),
        XgspMessage::Leave {
            session,
            user: "bob".into(),
        },
    );
    assert_eq!(mmcs.selected_video(session), None);
}

/// Directory-authenticated joins: credentials and the active terminal
/// gate entry; the terminal's capabilities become the offered media.
#[test]
fn authenticated_join_uses_directory_binding() {
    let mut mmcs = GlobalMmcs::new();
    let replies = mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:host@example.org",
        "cid-auth",
    ));
    assert_eq!(replies[0].status(), Some(200));
    let session = mmcs.session_server().session_ids().next().unwrap();

    let alice = mmcs
        .users_mut()
        .create_user("alice", "Alice", "secret")
        .unwrap();
    let terminal = mmcs
        .users_mut()
        .register_terminal(
            alice,
            "sip",
            "10.0.0.4:5060",
            vec!["audio/PCMU".into(), "video/H263".into()],
        )
        .unwrap();

    // No active terminal yet: refused.
    let err = mmcs
        .join_authenticated("alice", "secret", session)
        .unwrap_err();
    assert!(err.contains("no active terminal"));

    mmcs.users_mut().set_active_terminal(alice, terminal).unwrap();

    // Wrong password: refused.
    assert!(mmcs
        .join_authenticated("alice", "wrong", session)
        .unwrap_err()
        .contains("bad credentials"));

    // Correct credentials: joined with the terminal's media.
    let outputs = mmcs
        .join_authenticated("alice", "secret", session)
        .unwrap();
    let topics = outputs
        .iter()
        .find_map(|o| match o {
            mmcs::xgsp::server::ServerOutput::Reply(XgspMessage::JoinAck { topics, .. }) => {
                Some(topics.clone())
            }
            _ => None,
        })
        .expect("join ack");
    assert_eq!(topics.len(), 2, "audio + video from terminal capabilities");
    let member = mmcs
        .session_server()
        .session(session)
        .unwrap()
        .member("alice")
        .unwrap()
        .clone();
    assert_eq!(member.terminal, terminal);
}

/// RTCP receiver reports flow into the quality monitor and flag
/// degraded members.
#[test]
fn rtcp_reports_drive_quality_monitoring() {
    use mmcs::rtp::rtcp::ReportBlock;
    let mut mmcs = GlobalMmcs::new();
    mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-q",
    ));
    let session = mmcs.session_server().session_ids().next().unwrap();

    let healthy = ReportBlock {
        ssrc: 1,
        fraction_lost: 1,
        jitter: 80, // 10 ms at 8 kHz
        ..ReportBlock::default()
    };
    let lossy = ReportBlock {
        ssrc: 2,
        fraction_lost: 80, // ~31 %
        jitter: 80,
        ..ReportBlock::default()
    };
    mmcs.ingest_rtcp(session, "sip:alice@example.org", &healthy, 8000);
    mmcs.ingest_rtcp(session, "bob-h323", &lossy, 8000);
    assert!(!mmcs.quality().session_is_good(session));
    let degraded = mmcs.quality().degraded(session);
    assert_eq!(degraded.len(), 1);
    assert_eq!(degraded[0].0, "bob-h323");
}

/// XGSP notifications translate per the bound endpoint kind: SIP users
/// get NOTIFY, IM users get stanzas, H.323 users get nothing (their
/// state rides the call signaling).
#[test]
fn notifications_translate_per_endpoint_kind() {
    use mmcs::global_mmcs::system::{Egress, EndpointKind};
    let mut mmcs = GlobalMmcs::new();
    mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-n",
    ));
    let session = mmcs.session_server().session_ids().next().unwrap();
    for (user, kind) in [
        ("sip-user", Some(EndpointKind::Sip("sip:su@ua.example".into()))),
        ("im-user", Some(EndpointKind::Im("im-user@mmcs".into()))),
        ("h323-user", Some(EndpointKind::H323)),
        ("unbound-user", None),
    ] {
        if let Some(kind) = kind {
            mmcs.bind_endpoint(user, kind);
        }
        mmcs.handle_xgsp(
            Some(user),
            XgspMessage::Join {
                session,
                user: user.into(),
                terminal: TerminalId::from_raw(9),
                media: vec![],
            },
        );
    }
    // alice (the SIP creator, unbound) plus the four above are members.
    assert_eq!(
        mmcs.session_server().session(session).unwrap().member_count(),
        5
    );
    // A floor grant notifies every member; check the translations via a
    // fresh event that fans out.
    let outputs = mmcs.handle_xgsp(
        Some("sip-user"),
        XgspMessage::Floor {
            session,
            op: mmcs::xgsp::message::FloorOp::Request,
            user: "sip-user".into(),
        },
    );
    // Count raw notifications: all five members.
    let notify_count = outputs
        .iter()
        .filter(|o| matches!(o, mmcs::xgsp::server::ServerOutput::Notify { .. }))
        .count();
    assert_eq!(notify_count, 5);
    // The SIP-bound member's NOTIFY egress shape:
    if let Some(Egress::Sip(notify)) =
        test_support::egress_for(&mut mmcs, session, "sip-user")
    {
        assert_eq!(notify.method(), Some(mmcs::sip::message::SipMethod::Notify));
        assert_eq!(notify.header("Event"), Some("conference"));
    } else {
        panic!("sip-bound member must yield SIP egress");
    }
    if let Some(Egress::Stanza { to, .. }) =
        test_support::egress_for(&mut mmcs, session, "im-user")
    {
        assert_eq!(to, "im-user@mmcs");
    } else {
        panic!("im-bound member must yield stanza egress");
    }
    assert!(test_support::egress_for(&mut mmcs, session, "h323-user").is_none());
    assert!(test_support::egress_for(&mut mmcs, session, "unbound-user").is_none());
}

mod test_support {
    use mmcs::global_mmcs::system::{Egress, GlobalMmcs};
    use mmcs::xgsp::message::XgspMessage;
    use mmcs_util::id::SessionId;

    /// Produces one notification toward `user` and returns its egress
    /// translation, if any.
    pub fn egress_for(
        mmcs: &mut GlobalMmcs,
        session: SessionId,
        user: &str,
    ) -> Option<Egress> {
        mmcs.egress_for_notification(
            user,
            &XgspMessage::Notify {
                session,
                what: "probe".into(),
                user: user.into(),
            },
        )
    }
}
