//! Property tests on the RTP bookkeeping: the sequence tracker's loss
//! arithmetic, the jitter estimator's bounds, and the RTP proxy's
//! wrap/unwrap identity.

use bytes::Bytes;
use proptest::prelude::*;

use mmcs::broker::rtpproxy::{unwrap_event, wrap_rtp};
use mmcs::broker::topic::Topic;
use mmcs::rtp::jitter::JitterEstimator;
use mmcs::rtp::seq::SequenceTracker;
use mmcs_util::id::ClientId;
use mmcs_util::time::SimTime;

proptest! {
    /// Delivering a sorted, deduplicated subset of a contiguous range:
    /// expected == span, received == subset size, lost == difference.
    #[test]
    fn tracker_loss_arithmetic(
        start: u16,
        mut offsets in prop::collection::btree_set(0u16..500, 1..100),
    ) {
        let offsets: Vec<u16> = std::mem::take(&mut offsets).into_iter().collect();
        let first = start.wrapping_add(offsets[0]);
        let mut tracker = SequenceTracker::new(first);
        for offset in &offsets[1..] {
            tracker.record(start.wrapping_add(*offset));
        }
        let span = (offsets[offsets.len() - 1] - offsets[0]) as u64 + 1;
        prop_assert_eq!(tracker.expected(), span);
        prop_assert_eq!(tracker.received(), offsets.len() as u64);
        prop_assert_eq!(tracker.lost(), span - offsets.len() as u64);
        prop_assert!(tracker.loss_fraction() >= 0.0 && tracker.loss_fraction() < 1.0);
    }

    /// The smoothed jitter is always non-negative and never exceeds the
    /// largest instantaneous |D| observed.
    #[test]
    fn jitter_is_bounded_by_max_displacement(
        arrivals in prop::collection::vec(0u64..5_000, 2..50),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut estimator = JitterEstimator::new(8_000);
        let mut max_d: f64 = 0.0;
        for (i, at_ms) in sorted.iter().enumerate() {
            // Timestamps advance one 20 ms frame per packet.
            let d = estimator.record(SimTime::from_millis(*at_ms), i as u32 * 160);
            max_d = max_d.max(d);
        }
        prop_assert!(estimator.jitter_ms() >= 0.0);
        prop_assert!(
            estimator.jitter_ms() <= max_d + 1e-9,
            "J {} > max |D| {}",
            estimator.jitter_ms(),
            max_d
        );
    }

    /// wrap_rtp / unwrap_event is the identity on payload and send time.
    #[test]
    fn proxy_wrap_unwrap_identity(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        seq: u64,
        sent_ms in 0u64..1_000_000,
    ) {
        let topic = Topic::parse("conf/x/video").unwrap();
        let sent_at = SimTime::from_millis(sent_ms);
        let event = wrap_rtp(
            &topic,
            ClientId::from_raw(9),
            seq,
            Bytes::from(payload.clone()),
            sent_at,
        );
        let raw = unwrap_event(&event).expect("rtp event unwraps");
        prop_assert_eq!(&raw.bytes[..], &payload[..]);
        prop_assert_eq!(raw.sent_at, sent_at);
        prop_assert_eq!(event.seq, seq);
    }
}
