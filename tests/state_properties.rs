//! Property tests on the stateful cores: the ordered-delivery
//! reassembler, floor control, the calendar's conflict detection, and
//! the A/V switch.

use proptest::prelude::*;

use bytes::Bytes;
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::ordering::Reassembler;
use mmcs::broker::topic::Topic;
use mmcs::global_mmcs::avs::MediaSwitch;
use mmcs::xgsp::calendar::Calendar;
use mmcs::xgsp::floor::Floor;
use mmcs_util::id::{ClientId, SessionId};
use mmcs_util::time::{SimDuration, SimTime};

fn event(seq: u64) -> std::sync::Arc<Event> {
    Event::new(
        Topic::parse("t").unwrap(),
        ClientId::from_raw(1),
        seq,
        EventClass::Data,
        Bytes::new(),
    )
    .into_shared()
}

proptest! {
    /// Any permutation of a window-bounded burst is released in exact
    /// sequence order with nothing lost.
    #[test]
    fn reassembler_sorts_any_window_bounded_permutation(
        len in 1usize..24,
        seed: u64,
    ) {
        let mut order: Vec<u64> = (0..len as u64).collect();
        let mut rng = mmcs_util::rng::DetRng::new(seed);
        rng.shuffle(&mut order);
        // Window >= len: nothing may be skipped.
        let mut reassembler = Reassembler::new(len as u64 + 1);
        let mut released = Vec::new();
        for seq in order {
            released.extend(reassembler.offer(event(seq)).iter().map(|e| e.seq));
        }
        prop_assert_eq!(released, (0..len as u64).collect::<Vec<_>>());
        prop_assert_eq!(reassembler.skipped(ClientId::from_raw(1)), 0);
        prop_assert_eq!(reassembler.buffered(), 0);
    }

    /// Whatever arrives, output sequence numbers are strictly increasing
    /// per source and every offered event is delivered at most once.
    #[test]
    fn reassembler_output_is_strictly_increasing(
        seqs in prop::collection::vec(0u64..40, 1..60),
        window in 1u64..8,
    ) {
        let mut reassembler = Reassembler::new(window);
        let mut out = Vec::new();
        for seq in seqs {
            out.extend(reassembler.offer(event(seq)).iter().map(|e| e.seq));
        }
        for pair in out.windows(2) {
            prop_assert!(pair[0] < pair[1], "out of order: {:?}", out);
        }
        let mut deduped = out.clone();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), out.len(), "duplicate release");
    }

    /// Floor invariants under arbitrary operation sequences: at most one
    /// holder; the queue never contains the holder or duplicates.
    #[test]
    fn floor_invariants_hold(
        ops in prop::collection::vec((0u8..4, 0usize..4), 0..40),
    ) {
        let users = ["a", "b", "c", "d"];
        let mut floor = Floor::new();
        for (op, user_index) in ops {
            let user = users[user_index];
            match op {
                0 => { floor.request(user.to_owned()); }
                1 => { floor.grant_next(); }
                2 => { floor.release(user); }
                _ => { floor.remove_member(user); }
            }
            let queue: Vec<&str> = floor.queue().collect();
            if let Some(holder) = floor.holder() {
                prop_assert!(!queue.contains(&holder), "holder also queued");
            }
            let mut deduped = queue.clone();
            deduped.sort_unstable();
            deduped.dedup();
            prop_assert_eq!(deduped.len(), queue.len(), "queue has duplicates");
        }
    }

    /// Calendar conflict detection: bookings accepted for one room never
    /// overlap pairwise; rejected bookings always overlap something.
    #[test]
    fn calendar_accepts_exactly_nonoverlapping(
        slots in prop::collection::vec((0u64..100, 1u64..20), 1..20),
    ) {
        let mut calendar = Calendar::new();
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for (start, len) in slots {
            let result = calendar.book(
                "room",
                "user",
                vec![],
                SimTime::from_secs(start),
                SimDuration::from_secs(len),
                "t",
            );
            let overlaps_existing = accepted
                .iter()
                .any(|(s, l)| start < s + l && *s < start + len);
            prop_assert_eq!(
                result.is_err(),
                overlaps_existing,
                "slot ({}, {}) vs {:?}",
                start,
                len,
                accepted
            );
            if result.is_ok() {
                accepted.push((start, len));
            }
        }
        prop_assert_eq!(calendar.len(), accepted.len());
    }

    /// The A/V switch always selects someone who actually reported audio,
    /// and never switches while a pin is set.
    #[test]
    fn media_switch_selects_reporters_only(
        reports in prop::collection::vec((0usize..4, 0.0f64..1.0, 0u64..10_000), 1..40),
        pin_at in prop::option::of(0usize..20),
    ) {
        let users = ["a", "b", "c", "d"];
        let session = SessionId::from_raw(1);
        let mut switch = MediaSwitch::new();
        let mut reported: Vec<&str> = Vec::new();
        for (i, (user_index, level, at_ms)) in reports.iter().enumerate() {
            if pin_at == Some(i) {
                switch.pin(session, Some("pinned"));
            }
            let user = users[*user_index];
            reported.push(user);
            switch.report_audio(session, user, *level, SimTime::from_millis(*at_ms));
            if let Some(selected) = switch.selected(session) {
                if pin_at.is_some_and(|p| p <= i) {
                    prop_assert_eq!(selected, "pinned");
                } else {
                    prop_assert!(reported.contains(&selected), "phantom selection");
                }
            }
        }
    }
}

proptest! {
    /// OnlineStats::merge is associative-enough: merging arbitrary
    /// partitions of a sample set matches the sequential accumulation.
    #[test]
    fn online_stats_merge_matches_sequential(
        samples in prop::collection::vec(-1e6f64..1e6, 1..200),
        cut in 0usize..200,
    ) {
        use mmcs_util::stats::OnlineStats;
        let cut = cut.min(samples.len());
        let mut whole = OnlineStats::new();
        for &x in &samples {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &samples[..cut] {
            left.record(x);
        }
        for &x in &samples[cut..] {
            right.record(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                <= 1e-6 * whole.variance().abs().max(1.0)
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }
}

proptest! {
    /// The batcher never exceeds its limits, preserves order, and drops
    /// nothing: concatenating every flushed batch (plus the residue)
    /// reproduces the input exactly.
    #[test]
    fn batcher_conserves_items_within_limits(
        max_items in 1usize..8,
        max_bytes in 1usize..2000,
        items in prop::collection::vec(1usize..600, 0..60),
    ) {
        use mmcs::broker::batch::Batcher;
        let mut batcher: Batcher<usize> = Batcher::new(max_items, max_bytes);
        let mut flushed: Vec<usize> = Vec::new();
        for (tag, bytes) in items.iter().enumerate() {
            if let Some(batch) = batcher.push(tag, *bytes) {
                // Batches only exceed the byte limit when a single item
                // does (oversized items travel merged with the residue).
                prop_assert!(
                    batch.items.len() <= max_items + 1,
                    "{} items in a batch of limit {}",
                    batch.items.len(),
                    max_items
                );
                flushed.extend(batch.items);
            }
        }
        if let Some(batch) = batcher.flush() {
            flushed.extend(batch.items);
        }
        prop_assert_eq!(flushed, (0..items.len()).collect::<Vec<_>>());
    }

    /// The token bucket never goes negative and never exceeds its burst;
    /// conforming traffic over a long window respects the average rate.
    #[test]
    fn token_bucket_respects_rate(
        arrivals in prop::collection::vec((1u64..200, 1usize..500), 1..80),
    ) {
        use mmcs_util::rate::{Bandwidth, TokenBucket};
        use mmcs_util::time::{SimDuration, SimTime};
        let rate = Bandwidth::from_kbps(80); // 10_000 bytes/s
        let burst = 2_000u64;
        let mut bucket = TokenBucket::new(rate, burst, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut accepted_bytes = 0u64;
        for (gap_ms, bytes) in arrivals {
            now += SimDuration::from_millis(gap_ms);
            prop_assert!(bucket.available(now) <= burst);
            if bucket.try_consume(bytes, now) {
                accepted_bytes += bytes as u64;
            }
        }
        // Everything accepted fits within burst + rate x elapsed.
        let budget = burst + rate.bytes_in(now.saturating_duration_since(SimTime::ZERO));
        prop_assert!(
            accepted_bytes <= budget,
            "accepted {} > budget {}",
            accepted_bytes,
            budget
        );
    }
}
