//! Property tests on the discrete-event simulator: determinism,
//! conservation (every packet is delivered or accounted as dropped),
//! and time monotonicity under random workloads.

use proptest::prelude::*;

use mmcs::sim::net::NicConfig;
use mmcs::sim::{Context, Packet, Process, ProcessId, Simulation};
use mmcs_util::rate::Bandwidth;
use mmcs_util::time::{SimDuration, SimTime};

/// Sends `count` packets of `bytes` to `dst`, `gap` apart.
struct Pacer {
    dst: ProcessId,
    count: u64,
    bytes: usize,
    gap: SimDuration,
    sent: u64,
}

impl Process for Pacer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.gap, 0);
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.sent >= self.count {
            return;
        }
        ctx.send(self.dst, self.sent, self.bytes);
        self.sent += 1;
        ctx.count("pacer.sent", 1);
        ctx.set_timer(self.gap, 0);
    }
}

/// Records arrivals and asserts monotonic time.
#[derive(Default)]
struct MonotonicSink {
    arrivals: Vec<SimTime>,
    cpu: SimDuration,
}

impl Process for MonotonicSink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _packet: Packet) {
        let now = ctx.now();
        if let Some(last) = self.arrivals.last() {
            assert!(now >= *last, "arrivals ran backwards");
        }
        self.arrivals.push(now);
        ctx.spend_cpu(self.cpu);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_world(
    seed: u64,
    senders: usize,
    count: u64,
    bytes: usize,
    gap_us: u64,
    bandwidth_kbps: u64,
    loss: f64,
    cpu_us: u64,
) -> (u64, u64, u64, u64, Vec<u64>) {
    let mut sim = Simulation::new(seed);
    let sink_host = sim.add_host("sink", NicConfig::default());
    let sink = sim.add_typed_process(
        sink_host,
        MonotonicSink {
            arrivals: Vec::new(),
            cpu: SimDuration::from_micros(cpu_us),
        },
    );
    for i in 0..senders {
        let host = sim.add_host(
            &format!("sender-{i}"),
            NicConfig {
                bandwidth: Bandwidth::from_kbps(bandwidth_kbps),
                queue_bytes: 16 * 1024,
                ..NicConfig::default()
            },
        );
        sim.set_link(
            host,
            sink_host,
            mmcs::sim::LinkConfig {
                latency: SimDuration::from_micros(200),
                loss,
                ..mmcs::sim::LinkConfig::default()
            },
        );
        sim.add_typed_process(
            host,
            Pacer {
                dst: sink,
                count,
                bytes,
                gap: SimDuration::from_micros(gap_us),
                sent: 0,
            },
        );
    }
    sim.run_until(SimTime::from_secs(120));
    let arrivals = sim
        .process_ref::<MonotonicSink>(sink)
        .unwrap()
        .arrivals
        .iter()
        .map(|t| t.as_nanos())
        .collect();
    (
        sim.counter("pacer.sent"),
        sim.counter("net.delivered"),
        sim.counter("net.dropped.loss"),
        sim.counter("net.dropped.queue"),
        arrivals,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sent packet is delivered or counted in exactly one drop
    /// bucket, under random load/loss/bandwidth.
    #[test]
    fn packets_are_conserved(
        seed: u64,
        senders in 1usize..4,
        count in 1u64..80,
        bytes in 32usize..1400,
        gap_us in 100u64..20_000,
        bandwidth_kbps in 64u64..10_000,
        loss in 0.0f64..0.5,
        cpu_us in 0u64..200,
    ) {
        let (sent, delivered, lost, queued, _) =
            run_world(seed, senders, count, bytes, gap_us, bandwidth_kbps, loss, cpu_us);
        prop_assert_eq!(sent, delivered + lost + queued,
            "sent {} != delivered {} + loss {} + queue {}", sent, delivered, lost, queued);
    }

    /// The same seed reproduces the identical arrival trace; a different
    /// seed (with loss active) almost surely does not.
    #[test]
    fn identical_seeds_identical_traces(
        seed: u64,
        count in 10u64..60,
        loss in 0.05f64..0.4,
    ) {
        let a = run_world(seed, 2, count, 200, 1000, 1_000, loss, 10);
        let b = run_world(seed, 2, count, 200, 1000, 1_000, loss, 10);
        prop_assert_eq!(&a.4, &b.4);
        prop_assert_eq!(a.1, b.1);
    }
}

/// Zero-capacity corner: a queue too small for one packet drops all.
#[test]
fn tiny_queue_drops_everything() {
    let mut sim = Simulation::new(1);
    let a = sim.add_host(
        "a",
        NicConfig {
            bandwidth: Bandwidth::from_kbps(8),
            queue_bytes: 10,
            ..NicConfig::default()
        },
    );
    let b = sim.add_host("b", NicConfig::default());
    let sink = sim.add_typed_process(b, MonotonicSink::default());
    sim.add_typed_process(
        a,
        Pacer {
            dst: sink,
            count: 5,
            bytes: 100,
            gap: SimDuration::from_millis(1),
            sent: 0,
        },
    );
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(sim.counter("net.delivered"), 0);
    assert_eq!(sim.counter("net.dropped.queue"), 5);
}
