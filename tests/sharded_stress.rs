//! Detector-supervised soak of the sharded broker runtime: 4 shards,
//! 8 concurrent publisher threads, 100k events, with **exact** per-shard
//! counter totals cross-checked against `ShardedBrokerMetrics`
//! snapshots. In debug builds the instrumented `parking_lot` shim's
//! lock-order deadlock detector supervises every acquisition; any
//! inversion panics a worker or publisher thread and fails the joins.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use mmcs::broker::metrics::ShardedBrokerMetrics;
use mmcs::broker::sharded::ShardedBroker;
use mmcs::broker::topic::{Topic, TopicFilter};

const SHARDS: usize = 4;
const PUBLISHERS: usize = 8;
const PER_PUBLISHER: u64 = 12_500;
const TOTAL: u64 = PUBLISHERS as u64 * PER_PUBLISHER;

#[test]
fn four_shard_soak_has_exact_counters() {
    #[cfg(debug_assertions)]
    assert!(
        parking_lot::deadlock::is_active(),
        "debug build must carry the deadlock detector"
    );

    let metrics = ShardedBrokerMetrics::detached(SHARDS);
    let broker = Arc::new(ShardedBroker::spawn_with_metrics(Arc::clone(&metrics)));
    // Two full-wildcard subscribers; their (possibly equal) home shards
    // are where every event must land exactly once each.
    let sub_a = broker.attach();
    let sub_b = broker.attach();
    sub_a.subscribe(TopicFilter::parse("#").unwrap());
    sub_b.subscribe(TopicFilter::parse("#").unwrap());
    broker.quiesce();

    // Each publisher owns one first-segment family, so its events have
    // one deterministic owner shard and per-source order is total.
    let mut handles = Vec::new();
    for p in 0..PUBLISHERS {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            let topic = Topic::parse(&format!("fam{p}/events")).unwrap();
            for _ in 0..PER_PUBLISHER {
                publisher.publish(topic.clone(), Bytes::new());
            }
        }));
    }
    for handle in handles {
        handle
            .join()
            .expect("no publisher may panic (deadlock detector supervises in debug)");
    }
    broker.quiesce();

    // ---- Exact per-shard expectations, derived from the hash layout.
    let mut owned = [0u64; SHARDS]; // direct publishes per owner shard
    for p in 0..PUBLISHERS {
        let topic = Topic::parse(&format!("fam{p}/events")).unwrap();
        owned[broker.shard_for_topic(&topic)] += PER_PUBLISHER;
    }
    let homes: HashSet<usize> = [sub_a.id(), sub_b.id()]
        .into_iter()
        .map(|id| broker.home_shard(id))
        .collect();
    let mut subs_at_home = [0u64; SHARDS];
    for id in [sub_a.id(), sub_b.id()] {
        subs_at_home[broker.home_shard(id)] += 1;
    }
    for shard in 0..SHARDS {
        let m = metrics.shard(shard);
        // Events entering a shard: its own publishes, plus one forwarded
        // copy of every *other* shard's event if a subscriber lives here.
        let forwarded_in = if homes.contains(&shard) {
            TOTAL - owned[shard]
        } else {
            0
        };
        assert_eq!(
            m.events_in.get(),
            owned[shard] + forwarded_in,
            "events_in on shard {shard}"
        );
        // Ring sends: one per event per distinct remote subscriber home.
        let remote_homes = homes.iter().filter(|h| **h != shard).count() as u64;
        assert_eq!(
            m.cross_shard_forwards.get(),
            owned[shard] * remote_homes,
            "cross_shard_forwards on shard {shard}"
        );
        // Deliveries happen only at subscriber homes: every event, once
        // per subscriber homed here.
        assert_eq!(
            m.deliveries.get(),
            TOTAL * subs_at_home[shard],
            "deliveries on shard {shard}"
        );
        // Fan-out histogram records once per routed event.
        assert_eq!(m.fanout.count(), owned[shard] + forwarded_in);
        assert_eq!(m.unroutable.get(), 0, "unroutable on shard {shard}");
        // Quiesced: ingress queues fully drained.
        assert_eq!(m.queue_depth.get(), 0, "queue_depth on shard {shard}");
    }
    // Global identities.
    assert_eq!(
        metrics.total(|s| s.events_in.get()),
        TOTAL + metrics.total(|s| s.cross_shard_forwards.get())
    );
    assert_eq!(metrics.total(|s| s.deliveries.get()), TOTAL * 2);
    assert!(metrics.total(|s| s.batch_size.count()) > 0);

    // ---- Both subscribers drain exactly TOTAL events, in per-source
    // order (each publisher uses one topic, so source order is topic
    // order).
    for (name, sub) in [("a", &sub_a), ("b", &sub_b)] {
        let mut last_seq: HashMap<u64, u64> = HashMap::new();
        let mut got = 0u64;
        while let Some(event) = sub.try_recv() {
            let source = event.source.value();
            if let Some(prev) = last_seq.get(&source) {
                assert!(
                    event.seq > *prev,
                    "subscriber {name}: source {source} out of order"
                );
            }
            last_seq.insert(source, event.seq);
            got += 1;
        }
        assert_eq!(got, TOTAL, "subscriber {name} delivery count");
        assert_eq!(last_seq.len(), PUBLISHERS, "subscriber {name} source count");
    }

    // In debug builds, no broker lock may have been held past the
    // watchdog threshold either.
    #[cfg(debug_assertions)]
    {
        let broker_holds: Vec<_> = parking_lot::deadlock::long_holds()
            .into_iter()
            .filter(|h| h.site.contains("crates/broker"))
            .collect();
        assert!(
            broker_holds.is_empty(),
            "broker locks held past the watchdog threshold: {broker_holds:?}"
        );
    }
}

/// Shutdown mid-soak: publishers spinning on backpressure must unblock
/// and no thread may hang or panic.
#[test]
fn shutdown_under_sharded_load_is_clean() {
    let broker = Arc::new(ShardedBroker::builder(SHARDS).capacity(64).spawn());
    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("#").unwrap());
    broker.quiesce();
    let mut handles = Vec::new();
    for p in 0..4 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            let topic = Topic::parse(&format!("load{p}/x")).unwrap();
            for _ in 0..5_000 {
                publisher.publish(topic.clone(), Bytes::new());
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(5));
    broker.shutdown();
    for handle in handles {
        handle.join().expect("publisher must unblock after shutdown");
    }
    while subscriber.recv_timeout(Duration::from_millis(50)).is_some() {}
}
