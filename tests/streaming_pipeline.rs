//! End-to-end streaming: conference RTP -> RealProducer -> Helix ->
//! RTSP players, plus archiving and replay.

use mmcs::global_mmcs::system::GlobalMmcs;
use mmcs::rtp::source::{AudioCodec, AudioSource, VideoSource, VideoSourceConfig};
use mmcs::streaming::producer::ChunkKind;
use mmcs::streaming::rtsp::{RtspMethod, RtspRequest};
use mmcs::xgsp::media::{MediaDescription, MediaKind};
use mmcs::xgsp::message::{SessionMode, XgspMessage};
use mmcs::xgsp::server::ServerOutput;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

fn session_with_media(mmcs: &mut GlobalMmcs, media: Vec<MediaDescription>) -> u64 {
    let outputs = mmcs.handle_xgsp(
        Some("host"),
        XgspMessage::CreateSession {
            name: "pipeline".into(),
            mode: SessionMode::Scheduled,
            media,
        },
    );
    outputs
        .iter()
        .find_map(|o| match o {
            ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => {
                Some(session.value())
            }
            _ => None,
        })
        .expect("created")
}

#[test]
fn video_pipeline_transcodes_frames_not_packets() {
    let mut mmcs = GlobalMmcs::new();
    let session = session_with_media(
        &mut mmcs,
        vec![MediaDescription::new(MediaKind::Video, "H263")],
    );
    let topic = format!("globalmmcs/session-{session}/video");
    let publisher = mmcs.attach_media_client("host", &topic).unwrap();

    // One RTSP player.
    let setup = RtspRequest::new(RtspMethod::Setup, format!("rtsp://h/{topic}"), 1);
    let rtsp_session = mmcs
        .helix_mut()
        .handle_rtsp(&setup)
        .header("Session")
        .unwrap()
        .to_owned();
    let play = RtspRequest::new(RtspMethod::Play, format!("rtsp://h/{topic}"), 2)
        .with_header("Session", &rtsp_session);
    assert_eq!(mmcs.helix_mut().handle_rtsp(&play).code, 200);

    // 25 frames of video, multiple RTP packets each.
    let mut source = VideoSource::new(VideoSourceConfig::default(), 7, DetRng::new(1));
    let mut clock = SimTime::ZERO;
    let mut rtp_packets = 0;
    for _ in 0..25 {
        for packet in source.next_frame() {
            mmcs.set_now(clock);
            mmcs.publish_rtp(publisher, &topic, &packet);
            rtp_packets += 1;
        }
        clock += source.frame_interval();
    }
    assert!(rtp_packets > 25, "frames span multiple packets");

    // The producer reassembled frames: chunk count == frame count.
    let deliveries = mmcs.helix_mut().take_deliveries();
    let player_chunks: Vec<_> = deliveries
        .iter()
        .filter(|d| d.session_id == rtsp_session)
        .collect();
    assert_eq!(player_chunks.len(), 25);
    assert!(player_chunks
        .iter()
        .all(|d| d.chunk.kind == ChunkKind::Video));
    // Chunks are compressed relative to the raw frame bytes.
    assert!(player_chunks[0].chunk.data.starts_with(b"REAL"));
}

#[test]
fn pause_stops_chunks_and_archive_replays_with_pacing() {
    let mut mmcs = GlobalMmcs::new();
    let session = session_with_media(
        &mut mmcs,
        vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
    );
    let topic = format!("globalmmcs/session-{session}/audio");
    let publisher = mmcs.attach_media_client("host", &topic).unwrap();
    mmcs.archive_mut().start(&topic);

    let setup = RtspRequest::new(RtspMethod::Setup, format!("rtsp://h/{topic}"), 1);
    let rtsp_session = mmcs
        .helix_mut()
        .handle_rtsp(&setup)
        .header("Session")
        .unwrap()
        .to_owned();
    let play = RtspRequest::new(RtspMethod::Play, format!("rtsp://h/{topic}"), 2)
        .with_header("Session", &rtsp_session);
    mmcs.helix_mut().handle_rtsp(&play);

    let mut source = AudioSource::new(AudioCodec::Pcmu, 1);
    for i in 0..10u64 {
        mmcs.set_now(SimTime::ZERO + SimDuration::from_millis(20 * i));
        let packet = source.next_packet();
        mmcs.publish_rtp(publisher, &topic, &packet);
    }
    assert_eq!(mmcs.helix_mut().take_deliveries().len(), 10);

    // Pause, publish more: no deliveries, but archive keeps recording.
    let pause = RtspRequest::new(RtspMethod::Pause, format!("rtsp://h/{topic}"), 3)
        .with_header("Session", &rtsp_session);
    assert_eq!(mmcs.helix_mut().handle_rtsp(&pause).code, 200);
    for i in 10..20u64 {
        mmcs.set_now(SimTime::ZERO + SimDuration::from_millis(20 * i));
        let packet = source.next_packet();
        mmcs.publish_rtp(publisher, &topic, &packet);
    }
    assert!(mmcs.helix_mut().take_deliveries().is_empty());

    let recording = mmcs.archive_mut().recording(&topic).unwrap();
    assert_eq!(recording.chunks().len(), 20);
    assert_eq!(recording.duration(), SimDuration::from_millis(380));
    let replay = recording.playback_schedule(SimTime::from_secs(100));
    assert_eq!(replay[0].0, SimTime::from_secs(100));
    assert_eq!(
        replay.last().unwrap().0,
        SimTime::from_secs(100) + SimDuration::from_millis(380)
    );
}

#[test]
fn multiple_players_independent_state() {
    let mut mmcs = GlobalMmcs::new();
    let session = session_with_media(
        &mut mmcs,
        vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
    );
    let topic = format!("globalmmcs/session-{session}/audio");
    let publisher = mmcs.attach_media_client("host", &topic).unwrap();

    let mut sessions = Vec::new();
    for cseq in 0..3 {
        let setup =
            RtspRequest::new(RtspMethod::Setup, format!("rtsp://h/{topic}"), cseq * 10 + 1);
        let id = mmcs
            .helix_mut()
            .handle_rtsp(&setup)
            .header("Session")
            .unwrap()
            .to_owned();
        sessions.push(id);
    }
    // Only players 0 and 2 press play.
    for idx in [0usize, 2] {
        let play = RtspRequest::new(RtspMethod::Play, format!("rtsp://h/{topic}"), 99)
            .with_header("Session", &sessions[idx]);
        assert_eq!(mmcs.helix_mut().handle_rtsp(&play).code, 200);
    }
    let mut source = AudioSource::new(AudioCodec::Pcmu, 1);
    mmcs.publish_rtp(publisher, &topic, &source.next_packet());
    let deliveries = mmcs.helix_mut().take_deliveries();
    let recipients: Vec<&str> = deliveries.iter().map(|d| d.session_id.as_str()).collect();
    assert!(recipients.contains(&sessions[0].as_str()));
    assert!(!recipients.contains(&sessions[1].as_str()));
    assert!(recipients.contains(&sessions[2].as_str()));
}
