//! Concurrency stress on the threaded broker runtime: client churn
//! while publishers blast, subscription add/remove races, and shutdown
//! during traffic. These run on real OS threads (no virtual time).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use mmcs::broker::threaded::ThreadedBroker;
use mmcs::broker::topic::{Topic, TopicFilter};

#[test]
fn churn_does_not_lose_stable_subscribers() {
    let broker = Arc::new(ThreadedBroker::spawn());
    let stable = broker.attach();
    stable.subscribe(TopicFilter::parse("load/#").unwrap());

    // Churners attach, subscribe, receive a bit, and vanish, while two
    // publishers keep a steady stream going.
    let mut handles = Vec::new();
    for worker in 0..2 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            for i in 0..300 {
                publisher.publish(
                    Topic::parse(&format!("load/{worker}")).unwrap(),
                    Bytes::from(format!("{i}").into_bytes()),
                );
                if i % 50 == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }
    for _ in 0..3 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            for _ in 0..20 {
                let churner = broker.attach();
                churner.subscribe(TopicFilter::parse("load/#").unwrap());
                let _ = churner.recv_timeout(Duration::from_millis(1));
                drop(churner); // detach
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    let mut received = 0;
    while stable.recv_timeout(Duration::from_millis(500)).is_some() {
        received += 1;
        if received == 600 {
            break;
        }
    }
    assert_eq!(received, 600, "stable subscriber must see every event");
}

#[test]
fn unsubscribe_race_converges() {
    let broker = ThreadedBroker::spawn();
    let publisher = broker.attach();
    let subscriber = broker.attach();
    // Rapid subscribe/unsubscribe cycles end subscribed.
    for _ in 0..50 {
        subscriber.subscribe(TopicFilter::parse("flip").unwrap());
        subscriber.unsubscribe(TopicFilter::parse("flip").unwrap());
    }
    subscriber.subscribe(TopicFilter::parse("flip").unwrap());
    publisher.publish(Topic::parse("flip").unwrap(), Bytes::new());
    assert!(
        subscriber.recv_timeout(Duration::from_secs(2)).is_some(),
        "final subscribe must win"
    );
}

/// Positive run under the lock-order deadlock detector: the same churn
/// the other tests apply, executed while the instrumented `parking_lot`
/// shim watches every acquisition. Any lock-order inversion in the
/// threaded broker would panic the broker or a client thread; the
/// watchdog must also stay quiet for broker-owned locks (its hot-path
/// holds are microseconds).
#[cfg(debug_assertions)]
#[test]
fn stress_is_lock_inversion_free_under_detector() {
    use parking_lot::deadlock;
    assert!(deadlock::is_active(), "debug build must carry the detector");
    let broker = Arc::new(ThreadedBroker::spawn());
    let stable = broker.attach();
    stable.subscribe(TopicFilter::parse("det/#").unwrap());
    let mut handles = Vec::new();
    for worker in 0..3 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            for i in 0..200 {
                publisher.publish(
                    Topic::parse(&format!("det/{worker}")).unwrap(),
                    Bytes::from(format!("{i}").into_bytes()),
                );
            }
        }));
    }
    for _ in 0..2 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            for _ in 0..15 {
                let churner = broker.attach();
                churner.subscribe(TopicFilter::parse("det/#").unwrap());
                let _ = churner.recv_timeout(Duration::from_millis(1));
                drop(churner);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("no thread may trip the deadlock detector");
    }
    let mut received = 0;
    while stable.recv_timeout(Duration::from_millis(500)).is_some() {
        received += 1;
        if received == 600 {
            break;
        }
    }
    assert_eq!(received, 600, "delivery must be unaffected by the detector");
    let broker_holds: Vec<_> = deadlock::long_holds()
        .into_iter()
        .filter(|h| h.site.contains("crates/broker"))
        .collect();
    assert!(
        broker_holds.is_empty(),
        "broker locks held past the watchdog threshold: {broker_holds:?}"
    );
}

/// Regression: the queue-depth gauge is incremented **before** the
/// command is enqueued, so the broker loop's decrement can never race
/// it below zero. A concurrent sampler watches the gauge while four
/// publishers hammer the queue; with the old increment-after-enqueue
/// ordering the loop could dequeue (and decrement) between the two
/// steps and the sampler would observe a negative depth.
#[test]
fn queue_depth_gauge_never_underflows() {
    use mmcs::broker::metrics::BrokerMetrics;
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

    let metrics = BrokerMetrics::detached();
    let broker = Arc::new(ThreadedBroker::spawn_with_metrics(Arc::clone(&metrics)));
    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("q/#").unwrap());

    let stop = Arc::new(AtomicBool::new(false));
    let min_seen = Arc::new(AtomicI64::new(0));
    let sampler = {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        let min_seen = Arc::clone(&min_seen);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let depth = metrics.queue_depth.get();
                min_seen.fetch_min(depth, Ordering::Relaxed);
            }
        })
    };
    let mut handles = Vec::new();
    for _ in 0..4 {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            let publisher = broker.attach();
            for _ in 0..2_000 {
                publisher.publish(Topic::parse("q/x").unwrap(), Bytes::new());
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let mut received = 0;
    while subscriber.recv_timeout(Duration::from_millis(500)).is_some() {
        received += 1;
        if received == 8_000 {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();
    assert_eq!(received, 8_000);
    assert!(
        min_seen.load(Ordering::Relaxed) >= 0,
        "queue-depth gauge underflowed to {}",
        min_seen.load(Ordering::Relaxed)
    );
    // Fully drained: the gauge must read empty.
    assert_eq!(metrics.queue_depth.get(), 0);
    // Revert path: once the loop is gone, a rejected send must take its
    // depth bump back and the gauge must stay non-negative.
    broker.shutdown();
    for _ in 0..500 {
        if metrics.queue_depth.get() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let publisher = broker.attach();
    publisher.publish(Topic::parse("q/x").unwrap(), Bytes::new());
    assert!(
        metrics.queue_depth.get() >= 0,
        "rejected sends must never drive the gauge negative"
    );
}

#[test]
fn shutdown_under_load_is_clean() {
    let broker = Arc::new(ThreadedBroker::spawn());
    let subscriber = broker.attach();
    subscriber.subscribe(TopicFilter::parse("s/#").unwrap());
    let publisher_broker = Arc::clone(&broker);
    let handle = std::thread::spawn(move || {
        let publisher = publisher_broker.attach();
        for i in 0..10_000 {
            publisher.publish(Topic::parse("s/x").unwrap(), Bytes::new());
            if i == 500 {
                std::thread::yield_now();
            }
        }
    });
    // Shut down mid-stream: no deadlock, no panic; the publisher thread
    // finishes (its sends go nowhere).
    std::thread::sleep(Duration::from_millis(5));
    broker.shutdown();
    handle.join().unwrap();
    // Drain whatever made it through before shutdown.
    while subscriber.recv_timeout(Duration::from_millis(50)).is_some() {}
}
