//! Golden-schema tests for the two machine-readable bench artifacts:
//! the criterion shim's `MMCS_BENCH_JSON` dump and the frontier's
//! `BENCH_capacity.json`. The goldens pin the *schema* — key names, key
//! order, value kinds — not the measured numbers: each document is
//! parsed and normalized ([`Json::schema_normal`]: numbers → 0, bools →
//! false, arrays → first element) before comparison, so timing noise
//! never trips CI but a silently renamed or reordered field does.
//!
//! To regenerate after an intentional schema change:
//! `UPDATE_GOLDEN=1 cargo test --test bench_json_golden`.

use std::path::Path;
use std::time::Duration;

use mmcs_bench::capacity::Media;
use mmcs_bench::frontier::{
    FrontierConfig, FrontierPoint, FrontierReport, ScenarioResult, SweepResult, SweepSpec,
};
use mmcs_bench::json::Json;
use mmcs_telemetry::HistogramSnapshot;

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; run with UPDATE_GOLDEN=1 if intentional"
    );
}

/// Normalizes a JSON document to its schema skeleton plus a newline.
fn normalize(document: &str) -> String {
    let parsed = Json::parse(document).expect("artifact parses as JSON");
    let mut out = parsed.schema_normal().render();
    out.push('\n');
    out
}

#[test]
fn criterion_shim_json_matches_golden_schema() {
    // Run one real (tiny) benchmark through the shim so the dump is the
    // genuine article, then strip the measurements.
    let mut criterion = criterion::Criterion::default()
        .sample_size(2)
        .measurement_time(Duration::from_millis(10))
        .warm_up_time(Duration::from_millis(2));
    let mut group = criterion.benchmark_group("golden");
    group.throughput(criterion::Throughput::Elements(1));
    let mut counter = 0u64;
    group.bench_function("spin", |b| b.iter(|| counter += 1));
    group.finish();
    assert!(counter > 0);
    check_golden(
        "bench_criterion_schema.json",
        &normalize(&criterion::render_json()),
    );
}

/// A synthetic frontier point with fixed nonzero numbers (all erased by
/// normalization anyway).
fn fixed_point(clients: u64) -> FrontierPoint {
    FrontierPoint {
        clients,
        shards: 2,
        fanout: 5,
        mean_delay_ms: 1.25,
        p99_delay_ms: 3.5,
        loss: 0.0,
        expected: clients * 10,
        delivered: clients * 10,
        spot_expected: 0,
        spot_delivered: 0,
        good: true,
        shard_delay: vec![HistogramSnapshot::empty(), HistogramSnapshot::empty()],
    }
}

#[test]
fn frontier_report_json_matches_golden_schema() {
    // Hand-assembled report: every schema element present (knee both
    // set and null, multiple points, one scenario) without paying for a
    // real sweep in a debug-mode test.
    let sweeps = vec![
        SweepResult {
            spec: SweepSpec {
                media: Media::Audio,
                shards: 2,
                fanout: 5,
                ladder: vec![10, 20],
            },
            points: vec![fixed_point(10), fixed_point(20)],
            knee: Some(20),
        },
        SweepResult {
            spec: SweepSpec {
                media: Media::Video,
                shards: 1,
                fanout: 5,
                ladder: vec![10],
            },
            points: vec![FrontierPoint {
                good: false,
                ..fixed_point(10)
            }],
            knee: None,
        },
    ];
    let config = FrontierConfig::new(Media::Video, 2, 1000, 1000);
    let mut point = fixed_point(1000);
    point.spot_expected = 30;
    point.spot_delivered = 30;
    let report = FrontierReport {
        mode: "reduced".to_owned(),
        seed: 77,
        sweeps,
        scenarios: vec![ScenarioResult {
            name: "broadcast_1m".to_owned(),
            config,
            point,
        }],
    };
    let json = report.render_json();
    // The renderer's output must round-trip through the parser.
    Json::parse(&json).expect("frontier JSON parses");
    check_golden("bench_capacity_schema.json", &normalize(&json));
}

#[test]
fn schema_normalization_erases_measurements_but_not_structure() {
    let a = r#"{"mean_ns": 17.5, "good": true, "id": "x"}"#;
    let b = r#"{"mean_ns": 9000.1, "good": false, "id": "x"}"#;
    let na = Json::parse(a).unwrap().schema_normal().render();
    let nb = Json::parse(b).unwrap().schema_normal().render();
    assert_eq!(na, nb, "differing measurements must normalize identically");
    let c = r#"{"mean_ns": 17.5, "renamed": true, "id": "x"}"#;
    let nc = Json::parse(c).unwrap().schema_normal().render();
    assert_ne!(na, nc, "a renamed key must change the schema skeleton");
}
