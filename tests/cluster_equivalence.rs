//! Oracle equivalence for the federation runtime.
//!
//! The single-loop broker state machine (`BrokerNode`) is the oracle: a
//! federation of N gossiping nodes must be observationally equivalent
//! to one broker. Any random sequence of subscribe / unsubscribe /
//! publish / client-zone-move operations run against a live [`Cluster`]
//! — at 1, 2 and 4 nodes, mesh and chain — must produce the
//! **identical sorted delivery multiset** the oracle produces when fed
//! the same sequence, with every event delivered exactly once and
//! per-(receiver, source, topic) sequences strictly increasing.
//!
//! Interest spreads by gossip, so the sequence is settled with
//! [`Cluster::quiesce`] after every op (the equivalence contract is
//! exact between settled epochs; the chaos harness covers the faulted
//! regime). A second property checks gossip convergence itself: after
//! any churn sequence, a bounded number of anti-entropy rounds makes
//! every node's view of every other node match that node's local truth.
//!
//! [`Cluster`]: mmcs::broker::cluster::Cluster

use bytes::Bytes;
use proptest::prelude::*;

use mmcs::broker::cluster::{Cluster, ClusterClient, LatencyMap};
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::node::{Action, BrokerNode, Input, Origin};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs_util::id::{BrokerId, ClientId};

const CLIENTS: usize = 4;

/// One delivery, in a form that sorts: (receiver, topic, source, seq).
type Delivery = (u64, String, u64, u64);

/// One step of a random run.
#[derive(Debug, Clone)]
enum Op {
    Subscribe(usize, TopicFilter),
    Unsubscribe(usize, TopicFilter),
    Publish(usize, Topic),
    Move(usize, usize),
}

fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d", "e"]), 1..=3)
        .prop_map(Topic::from_segments)
}

fn filter_strategy() -> impl Strategy<Value = TopicFilter> {
    (
        prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d", "e", "*"]), 1..=3),
        any::<bool>(),
    )
        .prop_map(|(mut segments, tail)| {
            if tail {
                segments.push("#");
            }
            TopicFilter::parse(&segments.join("/")).expect("valid filter")
        })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..CLIENTS, filter_strategy()).prop_map(|(c, f)| Op::Subscribe(c, f)),
        2 => (0usize..CLIENTS, filter_strategy()).prop_map(|(c, f)| Op::Unsubscribe(c, f)),
        5 => (0usize..CLIENTS, topic_strategy()).prop_map(|(c, t)| Op::Publish(c, t)),
        1 => (0usize..CLIENTS, 0usize..8).prop_map(|(c, z)| Op::Move(c, z)),
    ]
}

/// Runs the sequence against the single-loop state machine. Zone moves
/// are invisible to the oracle: a move must not lose subscriptions or
/// pending deliveries.
fn oracle_run(ops: &[Op]) -> Vec<Delivery> {
    let mut node = BrokerNode::new(BrokerId::from_raw(99));
    let clients: Vec<ClientId> = (1..=CLIENTS as u64).map(ClientId::from_raw).collect();
    for &client in &clients {
        node.handle(Input::AttachClient {
            client,
            profile: Default::default(),
        })
        .expect("oracle attach");
    }
    let mut seqs = [0u64; CLIENTS];
    let mut deliveries: Vec<Delivery> = Vec::new();
    for op in ops {
        match op {
            Op::Subscribe(index, filter) => {
                let _ = node.handle(Input::Subscribe {
                    client: clients[*index],
                    filter: filter.clone(),
                });
            }
            Op::Unsubscribe(index, filter) => {
                let _ = node.handle(Input::Unsubscribe {
                    client: clients[*index],
                    filter: filter.clone(),
                });
            }
            Op::Move(..) => {}
            Op::Publish(index, topic) => {
                let seq = seqs[*index];
                seqs[*index] += 1;
                let event = Event::new(
                    topic.clone(),
                    clients[*index],
                    seq,
                    EventClass::Data,
                    Bytes::new(),
                )
                .into_shared();
                if let Ok(actions) = node.handle(Input::Publish {
                    origin: Origin::Client(clients[*index]),
                    event,
                }) {
                    for action in actions {
                        if let Action::Deliver { client, event, .. } = action {
                            deliveries.push((
                                client.value(),
                                event.topic.to_string(),
                                event.source.value(),
                                event.seq,
                            ));
                        }
                    }
                }
            }
        }
    }
    deliveries.sort_unstable();
    deliveries
}

/// Runs the sequence against a live federation and returns the sorted
/// delivery multiset, asserting per-(receiver, source, topic) sequence
/// monotonicity in arrival order. Clients start spread across zones so
/// most publishes cross node boundaries.
fn cluster_run(ops: &[Op], latency: LatencyMap) -> Vec<Delivery> {
    let nodes = latency.node_count();
    let zones = 2 * nodes;
    // Interest spreads by anti-entropy: every control op must gossip to
    // convergence before the next publish sees its effect. On a chain
    // the far end is node_count-1 pushes away, so converge() gets a
    // bound past that.
    let settle = nodes + 2;
    let cluster = Cluster::spawn(latency);
    let clients: Vec<ClusterClient> = (0..CLIENTS).map(|i| cluster.attach(i % zones)).collect();
    cluster.quiesce();
    for op in ops {
        match op {
            Op::Subscribe(index, filter) => {
                clients[*index].subscribe(filter.clone());
                assert!(cluster.converge(settle), "gossip stuck after subscribe");
            }
            Op::Unsubscribe(index, filter) => {
                clients[*index].unsubscribe(filter);
                assert!(cluster.converge(settle), "gossip stuck after unsubscribe");
            }
            Op::Move(index, zone) => {
                cluster.quiesce();
                clients[*index].move_to_zone(zone % zones);
                assert!(cluster.converge(settle), "gossip stuck after move");
            }
            Op::Publish(index, topic) => {
                clients[*index].publish(topic.clone(), Bytes::new());
                // Settle so the delivery set is exact between epochs: a
                // later unsubscribe must not race the in-flight frame.
                cluster.quiesce();
            }
        }
    }
    cluster.quiesce();
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut last_seq: std::collections::HashMap<(u64, u64, String), u64> =
        std::collections::HashMap::new();
    for client in &clients {
        let mut batch = Vec::new();
        client.drain_into(&mut batch);
        for event in batch {
            let key = (
                client.id().value(),
                event.source.value(),
                event.topic.to_string(),
            );
            if let Some(prev) = last_seq.get(&key) {
                assert!(
                    event.seq > *prev,
                    "per-topic order violated for {key:?}: {} after {prev}",
                    event.seq
                );
            }
            last_seq.insert(key, event.seq);
            deliveries.push((
                client.id().value(),
                event.topic.to_string(),
                event.source.value(),
                event.seq,
            ));
        }
    }
    deliveries.sort_unstable();
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The federation delivers exactly what the single-loop oracle
    /// delivers — at 1, 2 and 4 nodes over a full mesh.
    #[test]
    fn cluster_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let expected = oracle_run(&ops);
        for nodes in [1usize, 2, 4] {
            let actual = cluster_run(&ops, LatencyMap::full_mesh(nodes, 2));
            prop_assert_eq!(&actual, &expected, "{} mesh nodes diverged", nodes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same property on a 4-node chain, where cross-cluster events
    /// relay through intermediate nodes (real multi-hop forwarding).
    #[test]
    fn chain_cluster_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..20)) {
        let expected = oracle_run(&ops);
        let actual = cluster_run(&ops, LatencyMap::chain(4, 2));
        prop_assert_eq!(&actual, &expected, "4-node chain diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Gossip convergence: after any churn sequence (applied without
    /// per-op settling), a bounded number of anti-entropy rounds makes
    /// every node's view of every peer match that peer's local truth.
    #[test]
    fn gossip_converges_after_churn(
        ops in prop::collection::vec(op_strategy(), 1..24),
        nodes in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let zones = 2 * nodes;
        let cluster = Cluster::spawn(LatencyMap::full_mesh(nodes, 2));
        let clients: Vec<ClusterClient> =
            (0..CLIENTS).map(|i| cluster.attach(i % zones)).collect();
        for op in &ops {
            match op {
                Op::Subscribe(index, filter) => clients[*index].subscribe(filter.clone()),
                Op::Unsubscribe(index, filter) => clients[*index].unsubscribe(filter),
                Op::Publish(index, topic) => {
                    clients[*index].publish(topic.clone(), Bytes::new())
                }
                Op::Move(index, zone) => {
                    // Moves still need settled queues to relocate.
                    cluster.quiesce();
                    clients[*index].move_to_zone(zone % zones);
                }
            }
        }
        cluster.quiesce();
        prop_assert!(
            cluster.converge(nodes + 2),
            "{} nodes failed to converge after churn",
            nodes
        );
    }
}

/// Deterministic regression: overlapping wildcard and literal filters
/// across clients homed at different gateways, with a zone move
/// mid-stream. Also the soak entry point: `MMCS_CLUSTER_SOAK=1` scales
/// the publish stream up for the CI soak job.
#[test]
fn mixed_filters_and_moves_match_oracle() {
    let f = |s: &str| TopicFilter::parse(s).expect("filter");
    let t = |s: &str| Topic::parse(s).expect("topic");
    let rounds: usize = match std::env::var("MMCS_CLUSTER_SOAK") {
        Ok(v) if v == "1" => 40,
        _ => 2,
    };
    let mut ops = vec![
        Op::Subscribe(0, f("#")),
        Op::Subscribe(1, f("a/#")),
        Op::Subscribe(2, f("*/x")),
        Op::Subscribe(0, f("a/x")),
    ];
    for round in 0..rounds {
        ops.push(Op::Publish(3, t("a/x")));
        ops.push(Op::Publish(3, t("b/x")));
        ops.push(Op::Publish(3, t("a/y")));
        ops.push(Op::Move(1, round % 8));
        ops.push(Op::Publish(3, t("a/x")));
        ops.push(Op::Publish(2, t("c/z")));
    }
    ops.push(Op::Unsubscribe(0, f("#")));
    ops.push(Op::Publish(3, t("c/z")));
    let expected = oracle_run(&ops);
    for nodes in [1usize, 2, 4] {
        assert_eq!(
            cluster_run(&ops, LatencyMap::full_mesh(nodes, 2)),
            expected,
            "{nodes} mesh nodes diverged"
        );
    }
    assert_eq!(
        cluster_run(&ops, LatencyMap::chain(4, 2)),
        expected,
        "4-node chain diverged"
    );
}
