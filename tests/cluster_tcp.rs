//! The federation over real loopback TCP sockets.
//!
//! Three node workers linked by `TcpLink` senders (length-prefixed
//! frames, pooled buffers, capped exponential backoff) and per-node
//! listener/reader threads. Two properties the simulator cannot prove:
//!
//! * **mid-stream kill** — dropping a node's listener (and shutting
//!   every accepted connection) while events stream must not lose or
//!   duplicate anything: publishes issued during the outage queue as
//!   unacked link frames, the sender reconnects with backoff once the
//!   listener is rebound, retransmits in order, and the receiver's
//!   per-peer link-sequence dedup keeps delivery exactly-once;
//! * **garbage at the socket edge** — a malformed `ClusterFrame` body
//!   on an otherwise intact framing layer is rejected with a typed
//!   decode error, counted in telemetry, and the connection keeps
//!   working; an unframeable length prefix is counted and ends only
//!   that connection, never the node.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use bytes::Bytes;

use mmcs::broker::cluster::{
    encode_event_frame, encode_frame, Cluster, FrameKind, LatencyMap, CLUSTER_HEADER_LEN,
};
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs_util::id::ClientId;

/// Drains until `want` events arrived or `deadline` passed.
fn collect(
    client: &mmcs::broker::cluster::ClusterClient,
    want: usize,
    deadline: Duration,
) -> Vec<std::sync::Arc<Event>> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < want && start.elapsed() < deadline {
        if let Some(event) = client.recv_timeout(Duration::from_millis(100)) {
            got.push(event);
        }
    }
    got
}

/// Kill a gateway's listener mid-stream: everything published during
/// the outage arrives after the rebind, exactly once and in order.
#[test]
fn listener_kill_mid_stream_reconnects_without_loss_or_duplication() {
    let mut cluster = Cluster::builder(LatencyMap::full_mesh(3, 2)).tcp().spawn();
    let publisher = cluster.attach(0);
    let subscriber = cluster.attach(2);
    subscriber.subscribe(TopicFilter::parse("s/#").expect("filter"));
    assert!(cluster.converge(8), "interest gossip converged");
    assert_ne!(
        publisher.node(),
        subscriber.node(),
        "publisher and subscriber must sit on different gateways"
    );

    let topic = Topic::parse("s/tcp").expect("topic");
    for _ in 0..10 {
        publisher.publish(topic.clone(), Bytes::new());
    }
    let before = collect(&subscriber, 10, Duration::from_secs(15));
    assert_eq!(before.len(), 10, "clean-link stream fully delivered");

    // Mid-stream kill: listener gone, accepted connections shut. The
    // next ten publishes hit a dead or refusing socket and queue as
    // unacked link frames.
    cluster.drop_listener(subscriber.node() as usize);
    for _ in 0..10 {
        publisher.publish(topic.clone(), Bytes::new());
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let the sender discover the dead socket and start its capped
    // backoff loop against the closed port.
    std::thread::sleep(Duration::from_millis(100));
    cluster.restore_listener(subscriber.node() as usize);

    let after = collect(&subscriber, 10, Duration::from_secs(30));
    assert_eq!(after.len(), 10, "outage-window events retransmitted");
    let mut seqs: Vec<u64> = before.iter().chain(after.iter()).map(|e| e.seq).collect();
    let sorted = {
        let mut s = seqs.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(seqs, sorted, "per-source order survived the reconnect");
    seqs.dedup();
    assert_eq!(seqs.len(), 20, "exactly-once across the kill: no duplicates");
    assert_eq!(seqs, (0..20).collect::<Vec<u64>>(), "nothing lost");

    let reconnects = cluster.metrics().total(|m| m.reconnects.get());
    assert!(reconnects >= 1, "the link reconnected at least once");
    cluster.quiesce();
    assert!(subscriber.try_recv().is_none(), "no stragglers after settle");
}

/// Garbage at the socket edge: typed rejection, telemetry, and the
/// node keeps serving real traffic.
#[test]
fn malformed_frames_are_counted_and_do_not_poison_the_node() {
    let cluster = Cluster::builder(LatencyMap::full_mesh(2, 2)).tcp().spawn();
    let subscriber = cluster.attach(0);
    subscriber.subscribe(TopicFilter::parse("edge/#").expect("filter"));
    cluster.quiesce();
    let addr = cluster.listener_addr(0).expect("tcp listener address");
    let node0 = || cluster.metrics().node(0).decode_errors.get();
    let baseline = node0();

    // One connection, three records: a frame body with a bogus version
    // (BadVersion), a truncated envelope (Truncated), then a valid
    // event frame — framing stays intact across the rejects, so the
    // valid frame must still be delivered.
    let mut stream = TcpStream::connect(addr).expect("connect to node 0");
    stream.write_all(&1u16.to_be_bytes()).expect("peer preamble");
    let mut bad_version = encode_frame(FrameKind::Ack, 1, 0, 0, 0, &[]).freeze().to_vec();
    bad_version[0] = 9;
    let truncated = vec![0u8; CLUSTER_HEADER_LEN - 4];
    let event = Event::new(
        Topic::parse("edge/ok").expect("topic"),
        ClientId::from_raw(424242),
        0,
        EventClass::Data,
        Bytes::new(),
    );
    let valid = encode_event_frame(1, 0, 0, 0, &event).freeze().to_vec();
    for frame in [&bad_version, &truncated, &valid] {
        let total = (frame.len() + 8) as u32;
        stream.write_all(&total.to_be_bytes()).expect("len prefix");
        stream.write_all(&0u64.to_be_bytes()).expect("link seq");
        stream.write_all(frame).expect("frame body");
    }
    stream.flush().expect("flush");

    let delivered = collect(&subscriber, 1, Duration::from_secs(10));
    assert_eq!(delivered.len(), 1, "valid frame after garbage still lands");
    assert_eq!(delivered[0].topic.to_string(), "edge/ok");
    assert_eq!(
        node0() - baseline,
        2,
        "both malformed frames counted as decode errors"
    );

    // A garbage length prefix cannot be resynced: it is counted and
    // ends that connection only.
    let desync = node0();
    let mut evil = TcpStream::connect(addr).expect("second connection");
    evil.write_all(&1u16.to_be_bytes()).expect("peer preamble");
    evil.write_all(&3u32.to_be_bytes()).expect("impossible length");
    evil.write_all(&0u64.to_be_bytes()).expect("seq");
    evil.flush().expect("flush");
    let deadline = Instant::now() + Duration::from_secs(10);
    while node0() == desync && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(node0() - desync, 1, "bad length counted once");

    // The node is unharmed: a real cross-gateway publish still flows.
    let publisher = cluster.attach(1);
    assert!(cluster.converge(6), "gossip still converges");
    publisher.publish(Topic::parse("edge/after").expect("topic"), Bytes::new());
    let tail = collect(&subscriber, 1, Duration::from_secs(10));
    assert_eq!(tail.len(), 1, "node still serves real traffic");
    assert_eq!(tail[0].topic.to_string(), "edge/after");
}
