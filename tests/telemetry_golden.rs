//! Golden-file test for the registry exposition formats: a fixed set of
//! instruments with fixed values must render byte-identically to the
//! checked-in Prometheus-text and JSON snapshots (which also pins the
//! deterministic lexicographic ordering).
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test --test telemetry_golden`.

use std::path::Path;

use mmcs::telemetry::Registry;

fn fixed_registry() -> Registry {
    let registry = Registry::new();
    let events = registry.counter("broker_events_in_total", "Events accepted by the broker");
    events.add(656);
    let drops = registry.counter("broker_unroutable_total", "Events with no route");
    drops.add(3);
    let depth = registry.gauge("broker_queue_depth", "Commands queued to the broker loop");
    depth.set(7);
    let fanout = registry.histogram("broker_fanout_width", "Receivers per routed event");
    // One exact-region value per bucket 0/1/12, a two-octave value, and
    // a large one: exercises linear buckets, log buckets and +Inf math.
    fanout.record(0);
    fanout.record_n(1, 5);
    fanout.record_n(12, 3);
    fanout.record(100);
    fanout.record(5000);
    let latency = registry.histogram("sip_call_setup_latency_ns", "INVITE to final response");
    latency.record_n(250_000, 2);
    registry
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted from its golden file; run with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn prometheus_rendering_matches_golden() {
    check_golden("registry.prom", &fixed_registry().render_prometheus());
}

#[test]
fn json_rendering_matches_golden() {
    check_golden("registry.json", &fixed_registry().render_json());
}

#[test]
fn rendering_is_stable_across_calls() {
    let registry = fixed_registry();
    assert_eq!(registry.render_prometheus(), registry.render_prometheus());
    assert_eq!(registry.render_json(), registry.render_json());
}
