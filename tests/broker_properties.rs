//! Property tests on the broker network's core invariant: on any tree of
//! brokers with any placement of subscribers, a published event is
//! delivered exactly once to every matching subscriber and to no one
//! else — plus invariants for the trie and the interest protocol.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::network::BrokerNetwork;
use mmcs::broker::node::{Action, BrokerNode, Input, Origin};
use mmcs::broker::topic::{SubscriptionTable, Topic, TopicFilter};
use mmcs_util::id::{BrokerId, ClientId};

/// Strategy: a topic from a small alphabet, 1–4 segments deep.
fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec(prop::sample::select(vec!["a", "b", "c"]), 1..=4)
        .prop_map(Topic::from_segments)
}

/// Strategy: a filter from the same alphabet with wildcards.
fn filter_strategy() -> impl Strategy<Value = TopicFilter> {
    (
        prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "*"]), 1..=4),
        any::<bool>(),
    )
        .prop_map(|(mut segments, tail)| {
            if tail {
                segments.push("#");
            }
            TopicFilter::parse(&segments.join("/")).expect("valid filter")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once delivery on a random tree with random subscriptions.
    #[test]
    fn exactly_once_delivery_on_random_trees(
        broker_count in 1usize..6,
        parents in prop::collection::vec(any::<u16>(), 5),
        subscriptions in prop::collection::vec((0usize..8, filter_strategy()), 0..12),
        publishes in prop::collection::vec(topic_strategy(), 1..6),
    ) {
        let mut net = BrokerNetwork::new();
        let brokers: Vec<_> = (0..broker_count).map(|_| net.add_broker()).collect();
        // Random tree: each broker i>0 links to a random earlier broker.
        for i in 1..broker_count {
            let parent = brokers[parents[i - 1] as usize % i];
            net.link(brokers[i], parent).expect("tree link");
        }
        // 8 clients spread round-robin across brokers.
        let clients: Vec<ClientId> = (0..8)
            .map(|i| net.attach_client(brokers[i % broker_count]))
            .collect();
        let mut expected: Vec<(ClientId, TopicFilter)> = Vec::new();
        for (client_index, filter) in &subscriptions {
            let client = clients[*client_index];
            net.subscribe(client, filter.clone()).expect("subscribe");
            expected.push((client, filter.clone()));
        }
        let publisher = clients[0];

        for topic in &publishes {
            net.publish(publisher, topic.clone(), Bytes::from_static(b"x"));
            let mut delivered: Vec<ClientId> =
                net.drain_deliveries().into_iter().map(|d| d.client).collect();
            delivered.sort_unstable();
            let mut should: Vec<ClientId> = expected
                .iter()
                .filter(|(_, f)| f.matches(topic))
                .map(|(c, _)| *c)
                .collect();
            should.sort_unstable();
            should.dedup();
            prop_assert_eq!(delivered, should, "topic {}", topic);
        }
    }

    /// Trie matching agrees with direct filter matching for arbitrary
    /// filter sets.
    #[test]
    fn trie_agrees_with_oracle(
        filters in prop::collection::vec(filter_strategy(), 0..20),
        topics in prop::collection::vec(topic_strategy(), 1..10),
    ) {
        let mut table: SubscriptionTable<usize> = SubscriptionTable::new();
        for (id, filter) in filters.iter().enumerate() {
            table.subscribe(filter, id);
        }
        for topic in &topics {
            let mut actual = table.matches(topic);
            actual.sort_unstable();
            let mut expected: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.matches(topic))
                .map(|(id, _)| id)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(actual, expected);
        }
    }

    /// subscribe then unsubscribe leaves the table exactly as before.
    #[test]
    fn unsubscribe_is_inverse_of_subscribe(
        base in prop::collection::vec(filter_strategy(), 0..8),
        extra in filter_strategy(),
        topics in prop::collection::vec(topic_strategy(), 1..8),
    ) {
        let mut table: SubscriptionTable<usize> = SubscriptionTable::new();
        for (id, filter) in base.iter().enumerate() {
            table.subscribe(filter, id);
        }
        let before: Vec<Vec<usize>> = topics.iter().map(|t| {
            let mut m = table.matches(t);
            m.sort_unstable();
            m
        }).collect();
        table.subscribe(&extra, 999);
        table.unsubscribe(&extra, &999);
        let after: Vec<Vec<usize>> = topics.iter().map(|t| {
            let mut m = table.matches(t);
            m.sort_unstable();
            m
        }).collect();
        prop_assert_eq!(before, after);
    }

    /// Detaching a client is equivalent to never having subscribed it.
    #[test]
    fn detach_equals_never_subscribed(
        filters in prop::collection::vec(filter_strategy(), 1..6),
        topic in topic_strategy(),
    ) {
        // World A: subscribe a victim client, then detach it.
        let mut a = BrokerNetwork::new();
        let broker_a = a.add_broker();
        let publisher_a = a.attach_client(broker_a);
        let keeper_a = a.attach_client(broker_a);
        a.subscribe(keeper_a, TopicFilter::parse("#").unwrap()).unwrap();
        let victim = a.attach_client(broker_a);
        for filter in &filters {
            a.subscribe(victim, filter.clone()).unwrap();
        }
        a.detach_client(victim).unwrap();
        a.publish(publisher_a, topic.clone(), Bytes::new());
        let deliveries_a = a.drain_deliveries().len();

        // World B: the victim never existed.
        let mut b = BrokerNetwork::new();
        let broker_b = b.add_broker();
        let publisher_b = b.attach_client(broker_b);
        let keeper_b = b.attach_client(broker_b);
        b.subscribe(keeper_b, TopicFilter::parse("#").unwrap()).unwrap();
        b.publish(publisher_b, topic, Bytes::new());
        let deliveries_b = b.drain_deliveries().len();

        prop_assert_eq!(deliveries_a, deliveries_b);
    }
}

/// One step of the route-cache churn property below.
#[derive(Debug, Clone)]
enum ChurnOp {
    Subscribe(usize, TopicFilter),
    Unsubscribe(usize, TopicFilter),
    RemoteSubscribe(usize, TopicFilter),
    RemoteUnsubscribe(usize, TopicFilter),
    Publish(Topic),
}

fn churn_op_strategy() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        3 => (0usize..6, filter_strategy()).prop_map(|(c, f)| ChurnOp::Subscribe(c, f)),
        2 => (0usize..6, filter_strategy()).prop_map(|(c, f)| ChurnOp::Unsubscribe(c, f)),
        2 => (0usize..2, filter_strategy()).prop_map(|(p, f)| ChurnOp::RemoteSubscribe(p, f)),
        1 => (0usize..2, filter_strategy()).prop_map(|(p, f)| ChurnOp::RemoteUnsubscribe(p, f)),
        4 => topic_strategy().prop_map(ChurnOp::Publish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memoized route cache never changes what a publish delivers:
    /// under arbitrary subscribe/unsubscribe/publish interleavings
    /// (local and remote), the cached plan's delivery and forward sets
    /// equal a naive re-walk oracle over the tracked subscriptions.
    #[test]
    fn route_cache_agrees_with_oracle_under_churn(
        ops in prop::collection::vec(churn_op_strategy(), 1..50),
    ) {
        let mut node = BrokerNode::new(BrokerId::from_raw(1));
        let clients: Vec<ClientId> = (0..6).map(|i| ClientId::from_raw(i + 1)).collect();
        for &client in &clients {
            node.handle(Input::AttachClient { client, profile: Default::default() }).unwrap();
        }
        let peers: Vec<BrokerId> = (0..2).map(|i| BrokerId::from_raw(i + 10)).collect();
        for &peer in &peers {
            node.handle(Input::LinkUp { peer }).unwrap();
        }
        // The oracle: flat lists of live subscriptions, re-walked from
        // scratch on every publish.
        let mut local_subs: Vec<(ClientId, TopicFilter)> = Vec::new();
        let mut remote_subs: Vec<(BrokerId, TopicFilter)> = Vec::new();
        let mut actions: Vec<Action> = Vec::new();
        let mut seq = 0u64;

        for op in ops {
            match op {
                ChurnOp::Subscribe(index, filter) => {
                    let client = clients[index];
                    node.handle(Input::Subscribe { client, filter: filter.clone() }).unwrap();
                    if !local_subs.contains(&(client, filter.clone())) {
                        local_subs.push((client, filter));
                    }
                }
                ChurnOp::Unsubscribe(index, filter) => {
                    let client = clients[index];
                    node.handle(Input::Unsubscribe { client, filter: filter.clone() }).unwrap();
                    local_subs.retain(|entry| *entry != (client, filter.clone()));
                }
                ChurnOp::RemoteSubscribe(index, filter) => {
                    let peer = peers[index];
                    node.handle(Input::RemoteSubscribe { peer, filter: filter.clone() }).unwrap();
                    if !remote_subs.contains(&(peer, filter.clone())) {
                        remote_subs.push((peer, filter));
                    }
                }
                ChurnOp::RemoteUnsubscribe(index, filter) => {
                    let peer = peers[index];
                    node.handle(Input::RemoteUnsubscribe { peer, filter: filter.clone() }).unwrap();
                    remote_subs.retain(|entry| *entry != (peer, filter.clone()));
                }
                ChurnOp::Publish(topic) => {
                    let event = Event::new(
                        topic.clone(),
                        clients[0],
                        seq,
                        EventClass::Data,
                        Bytes::new(),
                    )
                    .into_shared();
                    seq += 1;
                    actions.clear();
                    node.handle_into(
                        Input::Publish {
                            origin: Origin::Client(clients[0]),
                            event: Arc::clone(&event),
                        },
                        &mut actions,
                    )
                    .unwrap();
                    let mut delivered: Vec<ClientId> = actions
                        .iter()
                        .filter_map(|a| match a {
                            Action::Deliver { client, .. } => Some(*client),
                            _ => None,
                        })
                        .collect();
                    delivered.sort_unstable();
                    let mut forwarded: Vec<BrokerId> = actions
                        .iter()
                        .filter_map(|a| match a {
                            Action::Forward { peer, .. } => Some(*peer),
                            _ => None,
                        })
                        .collect();
                    forwarded.sort_unstable();

                    let mut expected_clients: Vec<ClientId> = local_subs
                        .iter()
                        .filter(|(_, f)| f.matches(&topic))
                        .map(|(c, _)| *c)
                        .collect();
                    expected_clients.sort_unstable();
                    expected_clients.dedup();
                    let mut expected_peers: Vec<BrokerId> = remote_subs
                        .iter()
                        .filter(|(_, f)| f.matches(&topic))
                        .map(|(p, _)| *p)
                        .collect();
                    expected_peers.sort_unstable();
                    expected_peers.dedup();

                    prop_assert_eq!(delivered, expected_clients, "deliveries for {}", &topic);
                    prop_assert_eq!(forwarded, expected_peers, "forwards for {}", &topic);
                }
            }
        }
    }
}

/// Deterministic (non-proptest) regression: a deep chain still delivers
/// exactly once end to end.
#[test]
fn five_hop_chain_delivers_once() {
    let mut net = BrokerNetwork::new();
    let brokers: Vec<_> = (0..5).map(|_| net.add_broker()).collect();
    for pair in brokers.windows(2) {
        net.link(pair[0], pair[1]).unwrap();
    }
    let publisher = net.attach_client(brokers[0]);
    let subscriber = net.attach_client(brokers[4]);
    net.subscribe(subscriber, TopicFilter::parse("deep/#").unwrap())
        .unwrap();
    net.publish(publisher, Topic::parse("deep/chain").unwrap(), Bytes::new());
    let deliveries = net.drain_deliveries();
    assert_eq!(deliveries.len(), 1);
    assert_eq!(deliveries[0].client, subscriber);
}
