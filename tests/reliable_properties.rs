//! Property tests on the reliable channel: a [`ReliableSender`] and
//! [`ReliableReceiver`] connected through an adversarial channel model
//! (per-frame loss, reordering, duplication, ack loss) must still
//! deliver exactly the offered events, in order, without duplicates,
//! while never exceeding the in-flight window.

use std::sync::Arc;

use proptest::prelude::*;

use bytes::Bytes;
use mmcs::broker::event::{Event, EventClass};
use mmcs::broker::reliable::{Ack, ReliableFrame, ReliableReceiver, ReliableSender};
use mmcs::broker::topic::Topic;
use mmcs_util::id::ClientId;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

fn event(i: u64) -> Arc<Event> {
    Event::new(
        Topic::parse("rel/prop").unwrap(),
        ClientId::from_raw(1),
        i,
        EventClass::Control,
        Bytes::from(i.to_be_bytes().to_vec()),
    )
    .into_shared()
}

/// The adversarial channel: each direction is a bag of frames the RNG
/// may drop, duplicate, or deliver in random order.
struct Channel {
    rng: DetRng,
    loss: f64,
    duplicate: f64,
    data: Vec<ReliableFrame>,
    acks: Vec<Ack>,
}

impl Channel {
    fn offer_frames(&mut self, frames: Vec<ReliableFrame>) {
        for frame in frames {
            if self.rng.chance(self.loss) {
                continue;
            }
            if self.rng.chance(self.duplicate) {
                self.data.push(frame.clone());
            }
            self.data.push(frame);
        }
    }

    fn offer_ack(&mut self, ack: Ack) {
        if !self.rng.chance(self.loss) {
            self.acks.push(ack);
        }
    }

    /// Removes a random in-flight frame (reordering: the channel hands
    /// frames back in arbitrary order, not arrival order).
    fn pop_frame(&mut self) -> Option<ReliableFrame> {
        if self.data.is_empty() {
            return None;
        }
        let i = self.rng.range_usize(0, self.data.len());
        Some(self.data.swap_remove(i))
    }

    fn pop_ack(&mut self) -> Option<Ack> {
        if self.acks.is_empty() {
            return None;
        }
        let i = self.rng.range_usize(0, self.acks.len());
        Some(self.acks.swap_remove(i))
    }
}

/// Drives sender → channel → receiver → channel → sender until the
/// stream completes, returning the delivered payload indices and the
/// max in-flight count ever observed.
fn drive(seed: u64, total: u64, window: usize, loss: f64, duplicate: f64) -> (Vec<u64>, usize) {
    let rto = SimDuration::from_millis(50);
    let mut sender = ReliableSender::new(window, rto);
    let mut receiver = ReliableReceiver::new();
    let mut channel = Channel {
        rng: DetRng::new(seed),
        loss,
        duplicate,
        data: Vec::new(),
        acks: Vec::new(),
    };
    let mut delivered: Vec<u64> = Vec::new();
    let mut max_in_flight = 0usize;
    let mut now = SimTime::ZERO;
    let mut offered = 0u64;
    // Each iteration is one 10 ms step: maybe offer an event, shuttle a
    // few frames/acks across the adversarial channel, tick the RTO.
    // 20k steps bounds the run; exactly-once must hold well before.
    for step in 0..20_000u64 {
        now = SimTime::from_millis(step * 10);
        if offered < total {
            channel.offer_frames(sender.send(event(offered), now));
            offered += 1;
        }
        max_in_flight = max_in_flight.max(sender.in_flight());
        for _ in 0..4 {
            if let Some(frame) = channel.pop_frame() {
                let (events, ack) = receiver.on_frame(frame);
                for e in events {
                    delivered.push(e.seq);
                }
                channel.offer_ack(ack);
            }
            if let Some(ack) = channel.pop_ack() {
                channel.offer_frames(sender.on_ack(ack, now));
            }
        }
        channel.offer_frames(sender.on_tick(now));
        max_in_flight = max_in_flight.max(sender.in_flight());
        if sender.is_idle() && offered == total && channel.data.is_empty() {
            break;
        }
    }
    let _ = now;
    (delivered, max_in_flight)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once, in-order delivery under loss + reorder + duplication:
    /// whatever the channel does, the receiver surfaces exactly the
    /// offered stream and the sender never exceeds its window.
    #[test]
    fn delivered_equals_sent_in_order(
        seed in any::<u64>(),
        total in 1u64..120,
        window in 1usize..12,
        loss in 0.0f64..0.45,
        duplicate in 0.0f64..0.3,
    ) {
        let (delivered, max_in_flight) = drive(seed, total, window, loss, duplicate);
        let expected: Vec<u64> = (0..total).collect();
        prop_assert_eq!(
            &delivered, &expected,
            "stream broken: {} delivered of {} offered", delivered.len(), total
        );
        prop_assert!(
            max_in_flight <= window,
            "window exceeded: {max_in_flight} > {window}"
        );
    }

    /// A lossless, ordered channel never retransmits and the receiver
    /// never reports duplicates.
    #[test]
    fn clean_channel_is_silent(
        seed in any::<u64>(),
        total in 1u64..80,
        window in 1usize..12,
    ) {
        let rto = SimDuration::from_millis(50);
        let mut sender = ReliableSender::new(window, rto);
        let mut receiver = ReliableReceiver::new();
        let mut delivered = Vec::new();
        let mut now = SimTime::ZERO;
        let mut pending: Vec<ReliableFrame> = Vec::new();
        for i in 0..total {
            now = SimTime::from_millis(i * 10);
            pending.extend(sender.send(event(i), now));
            // Deliver promptly in order; ack immediately. Acks can
            // release backlogged frames, so keep draining until quiet.
            while !pending.is_empty() {
                let frame = pending.remove(0);
                let (events, ack) = receiver.on_frame(frame);
                delivered.extend(events.iter().map(|e| e.seq));
                pending.extend(sender.on_ack(ack, now));
            }
        }
        let _ = (seed, now);
        prop_assert_eq!(delivered, (0..total).collect::<Vec<_>>());
        prop_assert_eq!(sender.retransmissions(), 0);
        prop_assert_eq!(receiver.duplicates(), 0);
        prop_assert!(sender.is_idle());
    }
}
