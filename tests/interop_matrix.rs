//! Cross-protocol interop matrix over the sharded broker: one XGSP
//! conference joined simultaneously by a SIP client, an H.323 client,
//! and a streaming subscriber, with the media plane carried by a
//! `ShardedBroker`. Every party must see the full roster digest, and
//! every party must receive every other party's media events exactly
//! once, in order — at 1, 2, and 4 shards.
//!
//! The session's control and media topics all share the
//! `session-{id}` first segment, so they colocate on one shard and
//! the roster announcement cannot overtake or trail the media stream
//! out of order.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use mmcs::broker::event::EventClass;
use mmcs::broker::sharded::{ShardedBroker, ShardedClient};
use mmcs::broker::topic::{Topic, TopicFilter};
use mmcs::global_mmcs::system::GlobalMmcs;
use mmcs::h323::endpoint::{EndpointState, H323Endpoint};
use mmcs::sip::message::{SipMessage, SipMethod};
use mmcs::xgsp::message::XgspMessage;
use mmcs_util::id::TerminalId;

const MEDIA_EVENTS: u64 = 40;

fn sip_invite(uri: &str, from: &str, call_id: &str) -> SipMessage {
    SipMessage::request(SipMethod::Invite, uri)
        .with_header("Via", "SIP/2.0/UDP ua;branch=z9hG4bK1")
        .with_header("From", format!("<{from}>;tag=1"))
        .with_header("To", format!("<{uri}>"))
        .with_header("Call-ID", call_id)
        .with_header("CSeq", "1 INVITE")
}

/// One conference participant: an XGSP identity plus a media-plane
/// client on the sharded broker.
struct Party {
    name: &'static str,
    media: ShardedClient,
}

#[test]
fn sip_h323_and_streaming_share_a_conference_over_sharded_broker() {
    for shards in [1usize, 2, 4] {
        run_matrix(shards);
    }
}

fn run_matrix(shards: usize) {
    let mut mmcs = GlobalMmcs::new();

    // --- SIP party creates the conference.
    let replies = mmcs.handle_sip(&sip_invite(
        "sip:new-conf@mmcs.example",
        "sip:alice@example.org",
        "cid-matrix",
    ));
    assert_eq!(replies[0].status(), Some(200), "{shards} shards: SIP invite");
    let session = mmcs.session_server().session_ids().next().unwrap();

    // --- H.323 party registers and calls into the same conference.
    let mut endpoint = H323Endpoint::new("bob-h323");
    let mut queue = vec![endpoint.start()];
    let mut placed = false;
    while let Some(message) = queue.pop() {
        for reply in mmcs.handle_h323(&message) {
            queue.extend(endpoint.on_message(&reply));
        }
        if endpoint.state() == EndpointState::Registered && !placed {
            placed = true;
            queue.push(endpoint.place_call(format!("conf-{}", session.value()), 6400));
        }
    }
    assert_eq!(endpoint.state(), EndpointState::InCall);

    // --- Streaming subscriber joins over plain XGSP.
    let outputs = mmcs.handle_xgsp(
        Some("carol-stream"),
        XgspMessage::Join {
            session,
            user: "carol-stream".into(),
            terminal: TerminalId::from_raw(77),
            media: vec![],
        },
    );
    assert!(outputs.iter().any(|o| matches!(
        o,
        mmcs::xgsp::server::ServerOutput::Reply(XgspMessage::JoinAck { .. })
    )));

    let conference = mmcs.session_server().session(session).unwrap();
    assert_eq!(conference.member_count(), 3, "{shards} shards: roster size");
    let digest = conference.membership_digest();

    // --- Media plane: all three parties attach to the sharded broker
    // and watch the whole session topic family.
    let broker = ShardedBroker::spawn(shards);
    let control_topic = Topic::parse(&format!("session-{}/control/roster", session.value())).unwrap();
    let session_filter = TopicFilter::parse(&format!("session-{}/#", session.value())).unwrap();
    let parties: Vec<Party> = ["sip:alice@example.org", "bob-h323", "carol-stream"]
        .into_iter()
        .map(|name| {
            let media = broker.attach();
            media.subscribe(session_filter.clone());
            Party { name, media }
        })
        .collect();
    broker.quiesce();

    // Control and media topics share a first segment: one owner shard.
    for party in &parties {
        let media_topic =
            Topic::parse(&format!("session-{}/media/{}", session.value(), party.name)).unwrap();
        assert_eq!(
            broker.shard_for_topic(&media_topic),
            broker.shard_for_topic(&control_topic),
            "session topics must colocate"
        );
    }

    // The server announces the roster digest on the control topic.
    let announcer = broker.attach();
    announcer.publish_class(
        control_topic.clone(),
        EventClass::Control,
        Bytes::from(digest.to_le_bytes().to_vec()),
    );

    // Every party publishes its media stream on its own topic.
    for party in &parties {
        let media_topic =
            Topic::parse(&format!("session-{}/media/{}", session.value(), party.name)).unwrap();
        for i in 0..MEDIA_EVENTS {
            party.media.publish_class(
                media_topic.clone(),
                EventClass::Rtp,
                Bytes::from(i.to_le_bytes().to_vec()),
            );
        }
    }
    broker.quiesce();

    // --- Assertions: full roster digest seen by everyone; every other
    // party's media received exactly once, in order.
    let publisher_ids: HashMap<u64, &str> = parties
        .iter()
        .map(|p| (p.media.id().value(), p.name))
        .collect();
    for party in &parties {
        let mut roster: Vec<u64> = Vec::new();
        // events per publisher id -> (count, last seq)
        let mut media_seen: HashMap<u64, (u64, Option<u64>)> = HashMap::new();
        while let Some(event) = party.media.try_recv() {
            if event.class == EventClass::Control {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&event.payload[..8]);
                roster.push(u64::from_le_bytes(raw));
            } else {
                let entry = media_seen.entry(event.source.value()).or_insert((0, None));
                if let Some(prev) = entry.1 {
                    assert!(
                        event.seq > prev,
                        "{}: media from {} out of order",
                        party.name,
                        event.source
                    );
                }
                *entry = (entry.0 + 1, Some(event.seq));
            }
        }
        assert_eq!(
            roster,
            vec![digest],
            "{} must see the full roster digest exactly once ({shards} shards)",
            party.name
        );
        // The matrix: one entry per party (own loopback included), each
        // exactly MEDIA_EVENTS strong.
        assert_eq!(
            media_seen.len(),
            parties.len(),
            "{} must hear every party ({shards} shards)",
            party.name
        );
        for (source, (count, _)) in &media_seen {
            let publisher = publisher_ids
                .get(source)
                .expect("media only from conference parties");
            assert_eq!(
                *count, MEDIA_EVENTS,
                "{} heard {} events from {} ({shards} shards)",
                party.name, count, publisher
            );
        }
    }
    // Nothing extra is buffered anywhere.
    for party in &parties {
        assert!(party.media.recv_timeout(Duration::from_millis(50)).is_none());
    }
}
