//! Seed-determinism of the capacity-frontier harness: the whole
//! report — every sweep point, every scenario, the rendered
//! `BENCH_capacity.json` — must be byte-identical across two runs at
//! the same seed. This is what lets CI diff the artifact against a
//! committed baseline at all.

use mmcs_bench::frontier::{self, FrontierConfig, run_point};
use mmcs_bench::capacity::Media;
use mmcs_bench::json::Json;

#[test]
fn mini_report_renders_byte_identical_json_twice() {
    let first = frontier::mini_report().render_json();
    let second = frontier::mini_report().render_json();
    assert_eq!(first, second, "frontier JSON must be seed-deterministic");
    // And it is well-formed JSON with the pinned schema tag.
    let parsed = Json::parse(&first).expect("frontier JSON parses");
    assert_eq!(
        parsed.member("schema").and_then(Json::as_str),
        Some("mmcs.capacity.v1")
    );
    assert_eq!(parsed.member("mode").and_then(Json::as_str), Some("mini"));
}

#[test]
fn point_measurements_are_bitwise_reproducible() {
    let mut config = FrontierConfig::reduced(Media::Audio, 2, 30, 5);
    config.packets = 25;
    let a = run_point(&config);
    let b = run_point(&config);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.mean_delay_ms.to_bits(), b.mean_delay_ms.to_bits());
    assert_eq!(a.p99_delay_ms.to_bits(), b.p99_delay_ms.to_bits());
    assert_eq!(a.loss.to_bits(), b.loss.to_bits());
    assert_eq!(a.shard_delay, b.shard_delay);
}

#[test]
fn different_seed_changes_the_timeline_not_the_accounting() {
    let mut config = FrontierConfig::reduced(Media::Audio, 2, 30, 5);
    config.packets = 25;
    let a = run_point(&config);
    config.seed = 78;
    let b = run_point(&config);
    // Both healthy runs deliver everything regardless of seed.
    assert_eq!(a.delivered, a.expected);
    assert_eq!(b.delivered, b.expected);
}
