//! The frontier's headline scenarios at full scale: the simulated
//! million-subscriber broadcast and the 100k-client interactive
//! conference. Bundled receivers make the scale tractable; unbundled
//! spot-check receivers prove the bundles aren't hiding lost or
//! duplicated deliveries — every spot client must see exactly every
//! packet.

use mmcs_bench::frontier::{self, GOOD_P99_DELAY_MS};
use mmcs_bench::capacity::GOOD_LOSS;

#[test]
fn million_subscriber_broadcast_delivers_exactly() {
    let scenario = frontier::million_broadcast();
    let p = &scenario.point;
    assert_eq!(scenario.name, "broadcast_1m");
    assert_eq!(p.clients, 1_000_000);
    assert_eq!(p.expected, 1_000_000 * scenario.config.packets);
    // Exact delivery: one publisher, 8 shards, a million subscribers —
    // nothing lost, nothing duplicated.
    assert_eq!(p.delivered, p.expected, "delivered/expected mismatch");
    assert!(p.spot_expected > 0);
    assert!(p.spot_exact(), "spot {}/{}", p.spot_delivered, p.spot_expected);
    assert!(p.good, "p99 {} ms, loss {}", p.p99_delay_ms, p.loss);
    assert!(p.p99_delay_ms < GOOD_P99_DELAY_MS);
    // The delay pool really covers all million clients.
    let pooled: u64 = p.shard_delay.iter().map(|s| s.count()).sum();
    assert_eq!(pooled, p.expected);
}

#[test]
fn conference_100k_stays_inside_the_quality_bound() {
    let scenario = frontier::conference_100k();
    let p = &scenario.point;
    assert_eq!(scenario.name, "conference_100k");
    assert!(p.clients >= 100_000);
    assert!(p.loss < GOOD_LOSS, "loss {}", p.loss);
    assert!(p.spot_exact(), "spot {}/{}", p.spot_delivered, p.spot_expected);
    assert!(p.good, "p99 {} ms, loss {}", p.p99_delay_ms, p.loss);
    // 2000 sessions of 50: deliveries spread across all 16 home shards.
    assert_eq!(p.shard_delay.len(), 16);
    assert!(
        p.shard_delay.iter().all(|s| s.count() > 0),
        "every shard pools samples: {:?}",
        p.shard_delay.iter().map(|s| s.count()).collect::<Vec<_>>()
    );
}
